"""Tests for detailed-placement swap refinement."""

import numpy as np
import pytest

from repro.netlist.generator import generate_netlist
from repro.placement.detailed import _NetGeometry, refine_placement
from repro.placement.placer import PlacerParams, place

from conftest import tiny_profile


@pytest.fixture()
def placed():
    profile = tiny_profile("TDP", sim_gate_count=220)
    netlist = generate_netlist(profile, seed=71)
    place(netlist, PlacerParams(perturbation=2.0), seed=71)
    return netlist


def _total_hpwl(netlist):
    cells = [
        c for c in netlist.cells.values()
        if not c.is_clock_cell and c.position is not None
    ]
    index_of = {c.name: i for i, c in enumerate(cells)}
    positions = np.array([c.position for c in cells])
    return _NetGeometry(netlist, index_of, positions).total_hpwl()


class TestRefinement:
    def test_hpwl_never_increases(self, placed):
        before = _total_hpwl(placed)
        improvement, accepted = refine_placement(placed, moves=1500, seed=1)
        after = _total_hpwl(placed)
        assert after <= before + 1e-6
        assert improvement == pytest.approx(before - after, abs=1e-6)

    def test_finds_improvements_on_noisy_placement(self, placed):
        improvement, accepted = refine_placement(placed, moves=3000, seed=2)
        assert accepted > 0
        assert improvement > 0.0

    def test_zero_moves_is_noop(self, placed):
        before = {n: c.position for n, c in placed.cells.items()}
        improvement, accepted = refine_placement(placed, moves=0, seed=3)
        assert improvement == 0.0 and accepted == 0
        for name, cell in placed.cells.items():
            assert cell.position == before[name]

    def test_positions_are_permutation(self, placed):
        """Swaps only permute existing locations (legality preserved)."""
        before = sorted(
            c.position for c in placed.cells.values()
            if not c.is_clock_cell and c.position is not None
        )
        refine_placement(placed, moves=1500, seed=4)
        after = sorted(
            c.position for c in placed.cells.values()
            if not c.is_clock_cell and c.position is not None
        )
        np.testing.assert_allclose(np.array(before), np.array(after))

    def test_area_tolerance_respected(self, placed):
        """With zero tolerance, only identical-area cells may swap."""
        sizes_before = {
            n: (c.cell_type.name, c.position)
            for n, c in placed.cells.items() if c.position is not None
        }
        refine_placement(placed, moves=1000, seed=5, area_tolerance=0.0)
        # Any cell that moved must have traded places with an equal-area one.
        moved = {
            n for n, (t, p) in sizes_before.items()
            if placed.cells[n].position != p
        }
        areas = {n: placed.cells[n].area_um2 for n in moved}
        for name in moved:
            partners = [
                other for other in moved
                if other != name
                and placed.cells[other].position == sizes_before[name][1]
            ]
            assert partners, name
            assert any(
                abs(areas[p] - areas[name]) < 1e-9 for p in partners
            )

    def test_deterministic(self):
        profile = tiny_profile("TDP2", sim_gate_count=180)
        results = []
        for _ in range(2):
            netlist = generate_netlist(profile, seed=9)
            place(netlist, PlacerParams(), seed=9)
            results.append(refine_placement(netlist, moves=800, seed=9))
        assert results[0] == results[1]
