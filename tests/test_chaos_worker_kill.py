"""Chaos rehearsal: seeded WORKER_KILL batches at several worker counts.

The three batch guarantees under real process death (workers SIGKILL'd by
the fault injector mid-batch):

1. **Completion** — every job in the batch comes back, as a result or a
   typed error report; the pool never hangs on a lost job.
2. **Bit-identity** — survivors (including jobs that were re-dispatched
   after killing a worker) match the workers=1 run byte for byte, and
   quarantined jobs carry the same typed error with the same message.
3. **Strict ordering** — ``evaluate_strict`` raises the *first* failure in
   submission order, not completion order.

The fault schedules are seeded and therefore fixed; the expected kill
pattern for each plan is spelled out next to it.
"""

import pickle

import pytest

from conftest import tiny_profile

from repro.errors import WorkerCrash
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.result import FlowResult
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowJob,
    FlowSession,
    ParallelFlowExecutor,
    RuntimeConfig,
)

# Deterministic schedule for 8 jobs (probed once, fixed forever by the
# seed): consecutive worker kills per job index are
#   [0, 1, 1, 0, 2, 1, 0, 0]
# so with poison_retries=1 jobs 1/2/5 each kill one worker and survive
# their re-dispatch, job 4 kills two workers and is quarantined as
# poison, and the rest run clean.  Total kills: 5, re-dispatches: 4.
CHAOS_PLAN = FaultPlan(rate=0.45, kinds=(FaultKind.WORKER_KILL,), seed=13)
EXPECTED_KILLS = 5
EXPECTED_REDISPATCHES = 4
POISON_INDEX = 4

WORKER_COUNTS = (1, 2, 4)


def chaos_flow(design, params, seed=0):
    """Cheap deterministic flow stand-in (module-level: picklable)."""
    base = 1.0 + round(params.opt.vt_swap_bias, 6)
    return FlowResult(
        design=str(design),
        qor={key: base * (index + 1) * 0.125
             for index, key in enumerate(REQUIRED_QOR_KEYS)},
    )


def _jobs(profile, count=8):
    return [
        FlowJob(profile, FlowParameters(
            opt=OptParams(vt_swap_bias=1.0 + 0.05 * index)
        ), seed=3)
        for index in range(count)
    ]


def _run(workers):
    profile = tiny_profile()
    with ParallelFlowExecutor(
        workers=workers, flow_fn=chaos_flow, fault_plan=CHAOS_PLAN,
        max_respawns=32, poison_retries=1,
    ) as executor:
        reports = executor.run_batch(_jobs(profile))
        stats = executor.stats()
    return reports, stats


@pytest.fixture(scope="module")
def serial_reference():
    """The workers=1 run every pool run must reproduce."""
    return _run(1)


class TestChaosEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_every_job_completes_bit_identical_to_serial(
        self, workers, serial_reference
    ):
        reference, _ = serial_reference
        reports, _ = _run(workers)
        assert len(reports) == len(reference)
        for index, (got, want) in enumerate(zip(reports, reference)):
            assert got is not None, f"job {index} never completed"
            assert got.ok == want.ok, f"job {index} outcome diverged"
            if want.ok:
                assert pickle.dumps(got.result) == pickle.dumps(want.result)
            else:
                assert type(got.error) is type(want.error)
                assert str(got.error) == str(want.error)

    def test_serial_schedule_matches_the_probed_pattern(
        self, serial_reference
    ):
        reports, stats = serial_reference
        failed = [i for i, r in enumerate(reports) if not r.ok]
        assert failed == [POISON_INDEX]
        assert isinstance(reports[POISON_INDEX].error, WorkerCrash)
        assert stats["jobs_redispatched"] == EXPECTED_REDISPATCHES
        assert stats["poison_jobs"] == 1

    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_counters_reflect_the_schedule(self, workers):
        _, stats = _run(workers)
        assert stats["worker_restarts"] == EXPECTED_KILLS
        assert stats["jobs_redispatched"] == EXPECTED_REDISPATCHES
        assert stats["poison_jobs"] == 1
        assert stats["degraded"] is False


class TestStrictOrdering:
    # Plan seed 2 over 8 jobs draws consecutive kills
    #   [0, 0, 1, 1, 0, 1, 3, 2]
    # so with poison_retries=1 both jobs 6 and 7 quarantine; the first
    # failure in submission order is job 6.
    TWO_POISON_PLAN = FaultPlan(
        rate=0.45, kinds=(FaultKind.WORKER_KILL,), seed=2
    )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_evaluate_strict_raises_first_failure_in_submission_order(
        self, workers
    ):
        profiles = [tiny_profile(name=f"C{index}") for index in range(8)]
        jobs = [
            FlowJob(profile, FlowParameters(), seed=3)
            for profile in profiles
        ]
        config = RuntimeConfig(
            workers=workers, fault_plan=self.TWO_POISON_PLAN,
            max_respawns=32, poison_retries=1,
        )
        with FlowSession(config) as session:
            with pytest.raises(WorkerCrash) as excinfo:
                session.evaluate_strict(jobs)
        # Job 7 also failed (and at workers>1 may well have finished
        # first), but strictness is defined by submission order.
        assert "C6" in str(excinfo.value)
