"""Tests for beam search: optimality on small n, ordering, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.beam import beam_search, greedy_decode, sample_decode
from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob_value
from repro.insights.schema import INSIGHT_DIMS
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def small_model():
    return InsightAlignModel(n_recipes=7, dim=16, seed=12)


@pytest.fixture(scope="module")
def insight():
    return np.random.default_rng(3).normal(size=(INSIGHT_DIMS,))


def exhaustive_top_k(model, insight, k):
    scored = []
    n = model.n_recipes
    for code in range(2 ** n):
        bits = tuple((code >> i) & 1 for i in range(n))
        scored.append((sequence_log_prob_value(model, insight, bits), bits))
    scored.sort(reverse=True)
    return scored[:k]


class TestBeamSearch:
    def test_full_width_is_exact(self, small_model, insight):
        """With width >= 2^n the beam recovers the exact top-k."""
        k = 5
        exact = exhaustive_top_k(small_model, insight, k)
        beams = beam_search(small_model, insight, beam_width=2 ** 7)
        for (exact_score, exact_bits), candidate in zip(exact, beams[:k]):
            assert candidate.log_prob == pytest.approx(exact_score, abs=1e-9)
            assert candidate.recipe_set == exact_bits

    def test_width5_finds_global_best(self, small_model, insight):
        """Beam width 5 should find the argmax on this small model."""
        exact_best = exhaustive_top_k(small_model, insight, 1)[0]
        beam_best = beam_search(small_model, insight, beam_width=5)[0]
        assert beam_best.log_prob == pytest.approx(exact_best[0], abs=1e-9)

    def test_scores_match_policy(self, small_model, insight):
        for candidate in beam_search(small_model, insight, beam_width=4):
            recomputed = sequence_log_prob_value(
                small_model, insight, candidate.recipe_set
            )
            assert candidate.log_prob == pytest.approx(recomputed, abs=1e-9)

    def test_sorted_descending(self, small_model, insight):
        beams = beam_search(small_model, insight, beam_width=6)
        scores = [c.log_prob for c in beams]
        assert scores == sorted(scores, reverse=True)

    def test_distinct_candidates(self, small_model, insight):
        beams = beam_search(small_model, insight, beam_width=6)
        sets = [c.recipe_set for c in beams]
        assert len(set(sets)) == len(sets)

    def test_bad_width_raises(self, small_model, insight):
        with pytest.raises(ValueError):
            beam_search(small_model, insight, beam_width=0)

    def test_greedy_equals_width_one(self, small_model, insight):
        greedy = greedy_decode(small_model, insight)
        width1 = beam_search(small_model, insight, beam_width=1)[0]
        assert greedy.recipe_set == width1.recipe_set

    def test_wider_beam_never_worse(self, small_model, insight):
        narrow = beam_search(small_model, insight, beam_width=1)[0]
        wide = beam_search(small_model, insight, beam_width=8)[0]
        assert wide.log_prob >= narrow.log_prob - 1e-12

    def test_full_size_model_runs(self, insight):
        model = InsightAlignModel(seed=0)
        beams = beam_search(model, insight, beam_width=5)
        assert len(beams) == 5
        assert all(len(c.recipe_set) == 40 for c in beams)


class TestSampling:
    def test_sample_is_reproducible(self, small_model, insight):
        a = sample_decode(small_model, insight, derive_rng(5, "s"))
        b = sample_decode(small_model, insight, derive_rng(5, "s"))
        assert a.recipe_set == b.recipe_set

    def test_sample_logprob_consistent(self, small_model, insight):
        candidate = sample_decode(small_model, insight, derive_rng(6, "s"))
        recomputed = sequence_log_prob_value(
            small_model, insight, candidate.recipe_set
        )
        assert candidate.log_prob == pytest.approx(recomputed, abs=1e-9)

    def test_bad_temperature_raises(self, small_model, insight):
        with pytest.raises(ValueError):
            sample_decode(small_model, insight, derive_rng(0, "s"), temperature=0.0)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_samples_are_valid_sets(self, small_model, insight, seed):
        candidate = sample_decode(small_model, insight, derive_rng(seed, "h"))
        assert len(candidate.recipe_set) == small_model.n_recipes
        assert set(candidate.recipe_set) <= {0, 1}
