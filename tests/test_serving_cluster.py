"""The multi-replica serving cluster: routing, shedding, caching, rollout.

Covers the ISSUE 9 acceptance criteria:

- cluster responses bit-identical to single-replica serving at replica
  counts 1/2/4 for every routing policy, on both backends;
- typed ``OverloadedError`` shedding at the watermark, *before* deadlines
  burn, and a shed rate of exactly zero below it;
- the tiered cache (per-replica L1 + cluster-shared L2) and versioned L2
  invalidation on hot-swap;
- canary/shadow rollout through the registry's version-pinning hook;
- seeded replica-kill chaos completing with no lost accepted requests,
  and degrade-to-gateway once the restart budget is spent;
- ``serve.route`` / ``serve.shed`` spans and the ``serving_cluster_*`` /
  ``serving_replicas_live`` metric families.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core.model import InsightAlignModel
from repro.core.recommender import InsightAlign
from repro.errors import OverloadedError, ServingError
from repro.insights.schema import INSIGHT_DIMS
from repro.observability import (
    InMemoryExporter,
    MetricsRegistry,
    Tracer,
    get_registry,
    set_registry,
    set_tracer,
)
from repro.serving import (
    AdmissionController,
    ClusterConfig,
    ConsistentHashRouter,
    LeastLoadedRouter,
    RecommendationService,
    RoundRobinRouter,
    ServingCluster,
    ServingConfig,
    router_for,
)

ROUTINGS = ("least-loaded", "consistent-hash", "round-robin")


def make_model(seed=33):
    return InsightAlign(InsightAlignModel(n_recipes=8, dim=16, seed=seed))


def insight_vectors(count, seed=0):
    return np.random.default_rng(seed).normal(size=(count, INSIGHT_DIMS))


def recipe_sets(results):
    """The bit-level payload of a per-request result list-of-lists."""
    return [[r.recipe_set for r in request] for request in results]


def single_replica_reference(model, insights, k=3):
    service = RecommendationService(
        model, ServingConfig(max_batch_size=8, max_wait_s=0.0,
                             cache_capacity=0)
    )
    out = []
    for vector in insights:
        ticket = service.submit(vector, k=k)
        service.flush()
        out.append(ticket.result())
    return out


@pytest.fixture()
def fresh_observability():
    """Isolated metrics registry + capturing tracer for one test."""
    exporter = InMemoryExporter()
    previous_tracer = set_tracer(Tracer(exporter=exporter))
    previous_registry = set_registry(MetricsRegistry())
    try:
        yield exporter
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)


class TestClusterConfig:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.replicas == 2
        assert config.routing == "least-loaded"

    @pytest.mark.parametrize("kwargs", [
        dict(replicas=0),
        dict(routing="random"),
        dict(backend="thread"),
        dict(shed_watermark=0),
        dict(l2_capacity=-1),
        dict(canary_fraction=1.5, canary_version="v2"),
        dict(canary_fraction=0.5),            # fraction without a version
        dict(shadow=True),                    # shadow without a version
        dict(kill_rate=1.0),
        dict(kill_rate=0.1, backend="inline"),  # chaos needs processes
        dict(max_replica_restarts=-1),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ServingError):
            ClusterConfig(**kwargs)


class TestRouters:
    def test_factory_builds_each_policy(self):
        assert isinstance(router_for("least-loaded", 2), LeastLoadedRouter)
        assert isinstance(
            router_for("consistent-hash", 2), ConsistentHashRouter
        )
        assert isinstance(router_for("round-robin", 2), RoundRobinRouter)
        with pytest.raises(ServingError):
            router_for("nope", 2)

    def test_least_loaded_picks_min_with_low_index_ties(self):
        router = LeastLoadedRouter(4)
        assert router.route(b"x", [3, 1, 1, 2]) == 1
        assert router.route(b"x", [0, 0, 0, 0]) == 0
        assert router.route(b"x", [5, 4, 3, 2], alive=[True] * 4) == 3

    def test_least_loaded_skips_dead(self):
        router = LeastLoadedRouter(3)
        assert router.route(b"x", [9, 0, 1],
                            alive=[True, False, True]) == 2

    def test_round_robin_rotates_over_live(self):
        router = RoundRobinRouter(3)
        picks = [router.route(b"x", [0, 0, 0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        router = RoundRobinRouter(3)
        alive = [True, False, True]
        picks = [router.route(b"x", [0, 0, 0], alive) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_consistent_hash_is_sticky(self):
        router = ConsistentHashRouter(4)
        keys = [f"insight-{i}".encode() for i in range(64)]
        owners = [router.route(key, [0] * 4) for key in keys]
        # Stable across repeated calls and load changes.
        assert owners == [router.route(key, [9, 1, 4, 0]) for key in keys]
        # All replicas own some share of the key space.
        assert set(owners) == {0, 1, 2, 3}

    def test_consistent_hash_death_moves_only_owned_keys(self):
        router = ConsistentHashRouter(4)
        keys = [f"insight-{i}".encode() for i in range(64)]
        before = {key: router.route(key, [0] * 4) for key in keys}
        dead = 2
        alive = [replica != dead for replica in range(4)]
        for key in keys:
            after = router.route(key, [0] * 4, alive)
            if before[key] != dead:
                assert after == before[key]       # unaffected arc stays
            else:
                assert after != dead

    def test_no_live_replica_raises(self):
        for router in (LeastLoadedRouter(2), ConsistentHashRouter(2),
                       RoundRobinRouter(2)):
            with pytest.raises(ServingError):
                router.route(b"x", [0, 0], alive=[False, False])


class TestAdmission:
    def test_admits_below_watermark_and_sheds_at_it(self):
        controller = AdmissionController(shed_watermark=3)
        for outstanding in (0, 1, 2):
            controller.admit(outstanding)
        with pytest.raises(OverloadedError):
            controller.admit(3)
        with pytest.raises(OverloadedError):
            controller.admit(7)
        stats = controller.stats()
        assert stats["admitted"] == 3
        assert stats["shed"] == 2
        assert stats["shed_rate"] == pytest.approx(0.4)

    def test_watermark_validated(self):
        with pytest.raises(ServingError):
            AdmissionController(0)


class TestClusterEquivalence:
    """Cluster == single replica, bit for bit, whatever the topology."""

    @pytest.mark.parametrize("routing", ROUTINGS)
    @pytest.mark.parametrize("replicas", [1, 2, 4])
    def test_inline_backend_matches_reference(self, routing, replicas):
        insights = insight_vectors(12, seed=3)
        reference = single_replica_reference(make_model(), insights)
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=replicas, routing=routing,
                          backend="inline", shed_watermark=64,
                          l2_capacity=0),
            ServingConfig(max_batch_size=8, max_wait_s=0.0,
                          cache_capacity=0),
        )
        try:
            results = cluster.serve_all(insights, k=3, concurrency=8)
        finally:
            cluster.close()
        assert recipe_sets(results) == recipe_sets(reference)

    @pytest.mark.parametrize("routing", ("least-loaded", "consistent-hash"))
    def test_process_backend_matches_reference(self, routing):
        insights = insight_vectors(12, seed=3)
        reference = single_replica_reference(make_model(), insights)
        with ServingCluster(
            make_model(),
            ClusterConfig(replicas=2, routing=routing, backend="process",
                          shed_watermark=64, l2_capacity=0),
            ServingConfig(max_batch_size=8, max_wait_s=0.0,
                          cache_capacity=0),
        ) as cluster:
            results = cluster.serve_all(insights, k=3, concurrency=8)
        assert recipe_sets(results) == recipe_sets(reference)


class TestLoadShedding:
    def test_zero_sheds_below_watermark(self):
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=2, backend="inline", shed_watermark=16),
        )
        try:
            cluster.serve_all(insight_vectors(20), k=2, concurrency=8)
            stats = cluster.stats()
        finally:
            cluster.close()
        assert stats["admission"]["shed"] == 0
        assert stats["admission"]["shed_rate"] == 0.0

    def test_overload_sheds_typed_error_before_deadline(self):
        """Past the watermark the caller gets OverloadedError in
        microseconds — not a DeadlineExceededError after the deadline has
        silently burned in a queue."""
        deadline_s = 30.0
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=1, backend="process", shed_watermark=4,
                          l2_capacity=0),
            # A slow modeled accelerator keeps accepted requests in
            # flight long enough for later arrivals to find the cluster
            # at the watermark.
            ServingConfig(max_batch_size=4, max_wait_s=0.0,
                          cache_capacity=0, decode_latency_s=0.2),
        )
        outcomes = {"served": 0, "shed": 0}
        shed_seconds = []

        async def driver():
            async def one(vector):
                started = time.perf_counter()
                try:
                    await cluster.submit(vector, k=2,
                                         deadline_s=deadline_s)
                    outcomes["served"] += 1
                except OverloadedError:
                    shed_seconds.append(time.perf_counter() - started)
                    outcomes["shed"] += 1
            await asyncio.gather(
                *(one(v) for v in insight_vectors(16, seed=5))
            )

        try:
            asyncio.run(driver())
            stats = cluster.stats()
        finally:
            cluster.close()
        assert outcomes["shed"] > 0, "overload never shed"
        assert outcomes["served"] + outcomes["shed"] == 16
        # Typed rejection is immediate: far below the deadline.
        assert max(shed_seconds) < deadline_s / 10
        assert stats["admission"]["shed"] == outcomes["shed"]


class TestTieredCache:
    def test_l2_serves_repeats_whatever_the_routing(self):
        insights = insight_vectors(10, seed=7)
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=2, backend="inline",
                          routing="round-robin", shed_watermark=64,
                          l2_capacity=128),
        )
        try:
            first = cluster.serve_all(insights, k=3)
            second = cluster.serve_all(insights, k=3)
            stats = cluster.stats()
        finally:
            cluster.close()
        assert recipe_sets(first) == recipe_sets(second)
        # Round 2 never reaches a replica: the shared L2 answers.
        assert stats["l2"]["hits"] == len(insights)
        assert sum(stats["routed"].values()) == len(insights)

    def test_consistent_hash_keeps_replica_l1_warm(self):
        # With the shared L2 disabled, repeats only hit a cache if the
        # router sends the same insight back to the same replica's L1.
        insights = insight_vectors(10, seed=7)
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=2, backend="inline",
                          routing="consistent-hash", shed_watermark=64,
                          l2_capacity=0),
            ServingConfig(max_batch_size=8, max_wait_s=0.0,
                          cache_capacity=128),
        )
        try:
            cluster.serve_all(insights, k=3)
            cluster.serve_all(insights, k=3)
            stats = cluster.stats()
        finally:
            cluster.close()
        assert stats["l1_hits"] == len(insights)


class TestCanaryShadow:
    def test_canary_fraction_pins_to_canary_model(self):
        insights = insight_vectors(16, seed=9)
        canary_model = make_model(seed=77)
        cluster = ServingCluster(
            make_model(seed=33),
            ClusterConfig(replicas=2, backend="inline", shed_watermark=64,
                          l2_capacity=0),
            ServingConfig(max_batch_size=8, max_wait_s=0.0,
                          cache_capacity=0),
        )
        try:
            cluster.register_model("v2", canary_model)
            cluster.set_canary("v2", fraction=0.5)
            results = cluster.serve_all(insights, k=3)
            stats = cluster.stats()
        finally:
            cluster.close()
        canaried = int(stats["canary"]["requests"])
        assert 0 < canaried < len(insights)
        # Every response is either the stable model's or the canary's
        # exact output — and the split matches the counter.
        stable_direct = single_replica_reference(
            make_model(seed=33), insights
        )
        canary_direct = single_replica_reference(
            make_model(seed=77), insights
        )
        from_canary = 0
        for got, stable, canary in zip(
            recipe_sets(results), recipe_sets(stable_direct),
            recipe_sets(canary_direct),
        ):
            assert got in (stable, canary)
            if got == canary and got != stable:
                from_canary += 1
        assert from_canary > 0

    def test_canary_assignment_is_deterministic(self):
        insights = insight_vectors(12, seed=9)

        def run():
            cluster = ServingCluster(
                make_model(33),
                ClusterConfig(replicas=2, backend="inline",
                              shed_watermark=64, l2_capacity=0),
            )
            try:
                cluster.register_model("v2", make_model(77))
                cluster.set_canary("v2", fraction=0.4)
                out = cluster.serve_all(insights, k=3)
                count = cluster.stats()["canary"]["requests"]
            finally:
                cluster.close()
            return recipe_sets(out), count

        first, count_a = run()
        second, count_b = run()
        assert first == second
        assert count_a == count_b

    def test_shadow_mirrors_without_affecting_responses(self):
        insights = insight_vectors(14, seed=11)
        reference = single_replica_reference(make_model(33), insights)
        cluster = ServingCluster(
            make_model(33),
            ClusterConfig(replicas=2, backend="inline", shed_watermark=64,
                          l2_capacity=0),
            ServingConfig(max_batch_size=8, max_wait_s=0.0,
                          cache_capacity=0),
        )
        try:
            cluster.register_model("v2", make_model(77))
            cluster.set_canary("v2", fraction=0.5, shadow=True)
            results = cluster.serve_all(insights, k=3)
            stats = cluster.stats()
        finally:
            cluster.close()
        # Responses are bit-identical to serving without any rollout.
        assert recipe_sets(results) == recipe_sets(reference)
        canary = stats["canary"]
        assert canary["requests"] == 0          # nothing *served* by it
        assert canary["mirrors"] > 0
        # Different seeds disagree, and the comparator noticed.
        assert 0 < canary["mismatches"] <= canary["mirrors"]

    def test_set_canary_requires_registered_version(self):
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=1, backend="inline", shed_watermark=8),
        )
        try:
            with pytest.raises(ServingError):
                cluster.set_canary("ghost", fraction=0.5)
        finally:
            cluster.close()


class TestHotSwap:
    def test_swap_changes_results_and_purges_l2_by_version(self):
        insights = insight_vectors(6, seed=13)
        cluster = ServingCluster(
            make_model(33),
            ClusterConfig(replicas=2, backend="inline", shed_watermark=64,
                          l2_capacity=128),
        )
        try:
            cluster.register_model("v2", make_model(77))
            before = cluster.serve_all(insights, k=3)
            assert len(cluster.l2) == len(insights)
            cluster.hot_swap("v2")
            # The retired version's entries are gone from the shared L2.
            assert len(cluster.l2) == 0
            after = cluster.serve_all(insights, k=3)
            stats = cluster.stats()
        finally:
            cluster.close()
        assert stats["model_version"] == "v2"
        reference = single_replica_reference(make_model(77), insights)
        assert recipe_sets(after) == recipe_sets(reference)
        assert recipe_sets(after) != recipe_sets(before)

    def test_swap_purge_spares_other_versions_entries(self):
        insights = insight_vectors(5, seed=13)
        cluster = ServingCluster(
            make_model(33),
            ClusterConfig(replicas=1, backend="inline", shed_watermark=64,
                          l2_capacity=128),
        )
        try:
            cluster.register_model("v2", make_model(77))
            cluster.set_canary("v2", fraction=1.0)   # fill L2 under v2
            cluster.serve_all(insights, k=3)
            cluster.set_canary(None)
            cluster.serve_all(insights, k=3)         # fill L2 under v1
            assert len(cluster.l2) == 2 * len(insights)
            cluster.hot_swap("v2")                   # retire v1 entries
            assert len(cluster.l2) == len(insights)  # canary's survive
        finally:
            cluster.close()


class TestChaos:
    def test_seeded_kills_lose_no_accepted_requests(self):
        insights = insight_vectors(40, seed=17)
        reference = single_replica_reference(make_model(), insights, k=2)
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=3, backend="process", shed_watermark=64,
                          kill_rate=0.08, kill_seed=7,
                          max_replica_restarts=60, l2_capacity=0),
            ServingConfig(max_batch_size=8, max_wait_s=0.0,
                          cache_capacity=0),
        )
        try:
            results = cluster.serve_all(insights, k=2, concurrency=12)
            stats = cluster.stats()
        finally:
            cluster.close()
        assert stats["restarts"] > 0, "chaos never killed a replica"
        assert stats["completed"] == len(insights)
        assert all(request is not None for request in results)
        # Survived *and* stayed bit-identical.
        assert recipe_sets(results) == recipe_sets(reference)

    def test_restart_budget_exhaustion_degrades_to_gateway(self):
        insights = insight_vectors(12, seed=19)
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=1, backend="process", shed_watermark=64,
                          kill_rate=0.9, kill_seed=3,
                          max_replica_restarts=1, l2_capacity=0),
            ServingConfig(max_batch_size=4, max_wait_s=0.0,
                          cache_capacity=0),
        )
        try:
            results = cluster.serve_all(insights, k=2, concurrency=4)
            stats = cluster.stats()
        finally:
            cluster.close()
        assert stats["degraded"] is True
        assert stats["restarts"] == 1            # the whole budget
        assert stats["completed"] == len(insights)
        reference = single_replica_reference(make_model(), insights, k=2)
        assert recipe_sets(results) == recipe_sets(reference)


class TestClusterObservability:
    def test_route_spans_and_metric_families(self, fresh_observability):
        exporter = fresh_observability
        insights = insight_vectors(8, seed=21)
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=2, backend="inline", shed_watermark=64),
        )
        try:
            cluster.serve_all(insights, k=2)
            registry = get_registry()
            routed = registry.get("serving_cluster_requests_total")
            live = registry.get("serving_replicas_live")
            assert routed is not None
            assert routed.aggregate() == len(insights)
            # Per-replica label children, not one anonymous blob.
            labelled = {
                dict(key).get("replica") for key in routed.values()
            }
            assert labelled <= {"r0", "r1"}
            assert live.value == 2
        finally:
            cluster.close()
        assert get_registry().get("serving_replicas_live").value == 0
        names = [span.name for span in exporter.records()]
        assert names.count("serve.route") == len(insights)

    def test_shed_span_emitted(self, fresh_observability):
        exporter = fresh_observability
        cluster = ServingCluster(
            make_model(),
            ClusterConfig(replicas=1, backend="inline", shed_watermark=1),
        )

        async def driver():
            cluster._ensure_loop()
            cluster._outstanding = 1     # hold the cluster at watermark
            with pytest.raises(OverloadedError):
                await cluster.submit(insight_vectors(1)[0], k=2)

        try:
            asyncio.run(driver())
        finally:
            cluster.close()
        shed_spans = [s for s in exporter.records()
                      if s.name == "serve.shed"]
        assert len(shed_spans) == 1
        registry = get_registry()
        assert registry.get("serving_cluster_shed_total").value == 1
