"""Tests for Pareto utilities, terminal viz, and netlist statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pareto import (
    coverage_ratio,
    dominates,
    hypervolume_2d,
    pareto_front,
    pareto_front_mask,
    qor_points,
)
from repro.errors import TrainingError
from repro.netlist.stats import compute_stats
from repro.viz import ascii_heatmap, sparkline, trajectory_panel


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert dominates([1.0, 2.0], [2.0, 2.0])

    def test_no_self_dominance(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_incomparable(self):
        assert not dominates([1.0, 3.0], [3.0, 1.0])
        assert not dominates([3.0, 1.0], [1.0, 3.0])


class TestParetoFront:
    def test_simple_front(self):
        points = np.array([[1, 5], [2, 3], [4, 2], [5, 5], [3, 4]])
        mask = pareto_front_mask(points)
        np.testing.assert_array_equal(mask, [True, True, True, False, False])

    def test_front_points_mutually_incomparable(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 10, size=(40, 2))
        front = pareto_front(points)
        for i in range(len(front)):
            for j in range(len(front)):
                if i != j:
                    assert not dominates(front[i], front[j])

    def test_1d_rejected(self):
        with pytest.raises(TrainingError):
            pareto_front_mask(np.array([1.0, 2.0]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_front_dominates_everything_else(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(25, 2))
        mask = pareto_front_mask(points)
        front = points[mask]
        for dominated in points[~mask]:
            assert any(dominates(f, dominated) for f in front)


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d(np.array([[1.0, 1.0]]), reference=(3.0, 3.0))
        assert hv == pytest.approx(4.0)

    def test_staircase(self):
        points = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = hypervolume_2d(points, reference=(3.0, 3.0))
        # Two 2x1 rectangles overlapping in a 1x1 square: 2 + 2 - 1 = 3.
        assert hv == pytest.approx(3.0)

    def test_points_beyond_reference_ignored(self):
        hv = hypervolume_2d(np.array([[5.0, 5.0]]), reference=(3.0, 3.0))
        assert hv == 0.0

    def test_monotone_in_points(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 2.5, size=(10, 2))
        subset_hv = hypervolume_2d(points[:5], (3.0, 3.0))
        full_hv = hypervolume_2d(points, (3.0, 3.0))
        assert full_hv >= subset_hv - 1e-12

    def test_coverage_ratio(self):
        archive = np.array([[1.0, 2.0], [2.0, 1.0]])
        candidates = np.array([[0.5, 0.5]])
        ratio = coverage_ratio(candidates, archive, (3.0, 3.0))
        assert ratio > 1.0  # the candidate extends past the archive front

    def test_zero_archive_raises(self):
        with pytest.raises(TrainingError):
            coverage_ratio(
                np.array([[1.0, 1.0]]), np.array([[9.0, 9.0]]), (3.0, 3.0)
            )

    def test_qor_points_extraction(self):
        points = qor_points([
            {"power_mw": 1.0, "tns_ns": 2.0, "other": 9.0},
            {"power_mw": 3.0, "tns_ns": 4.0},
        ])
        np.testing.assert_array_equal(points, [[1.0, 2.0], [3.0, 4.0]])


class TestViz:
    def test_heatmap_shape_and_legend(self):
        grid = np.arange(12.0).reshape(3, 4)
        text = ascii_heatmap(grid, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 3 + 1  # title + rows + legend
        assert all(line.startswith("|") for line in lines[1:4])

    def test_heatmap_extremes(self):
        grid = np.array([[0.0, 1.0]])
        text = ascii_heatmap(grid, legend=False)
        assert text.splitlines()[-1] == "| @|".replace(" ", " ")

    def test_heatmap_nan(self):
        grid = np.array([[np.nan, 1.0]])
        assert "?" in ascii_heatmap(grid, legend=False)

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.arange(4.0))

    def test_sparkline_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_trajectory_panel(self):
        text = trajectory_panel(["a", "bb"], [[1, 2], [3, 1]])
        lines = text.splitlines()
        assert len(lines) == 2
        assert "1 -> 2" in lines[0]

    def test_trajectory_panel_mismatch(self):
        with pytest.raises(ValueError):
            trajectory_panel(["a"], [[1], [2]])


class TestNetlistStats:
    def test_stats_consistency(self, small_netlist):
        stats = compute_stats(small_netlist)
        assert stats.cell_count == small_netlist.cell_count
        assert stats.register_count == len(small_netlist.sequential_cells())
        assert stats.register_count + stats.combinational_count <= stats.cell_count
        assert sum(stats.function_mix.values()) == stats.cell_count
        assert sum(stats.drive_mix.values()) == stats.cell_count
        assert stats.max_fanout >= 1
        assert 0.0 <= stats.rent_exponent <= 1.0

    def test_render_contains_key_sections(self, small_netlist):
        text = compute_stats(small_netlist).render()
        for token in ("Netlist statistics", "fanout", "logic depth",
                      "function mix", "rent exponent"):
            assert token in text

    def test_fanout_histogram_covers_all_nets(self, small_netlist):
        stats = compute_stats(small_netlist)
        nets_with_fanout = sum(
            1 for n in small_netlist.nets.values()
            if not n.is_clock and n.fanout > 0
        )
        assert sum(stats.fanout_histogram.values()) == nets_with_fanout
