"""Tests for flow parameters, the optimizer, and the end-to-end runner."""

import dataclasses

import pytest

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError
from repro.flow.opt import optimize
from repro.flow.parameters import FlowParameters, OptParams, TradeoffWeights
from repro.flow.runner import run_flow
from repro.flow.stages import FlowStage
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.timing.constraints import default_constraints

from conftest import tiny_profile


class TestParameters:
    def test_flat_roundtrip_keys(self):
        flat = FlowParameters().flat()
        assert "placer.effort" in flat
        assert "opt.vt_swap_bias" in flat
        assert "tradeoff.timing" in flat
        assert len(flat) >= 20

    def test_negative_tradeoff_raises(self):
        with pytest.raises(FlowError):
            TradeoffWeights(timing=-1.0)

    def test_replaced_sections(self):
        params = FlowParameters().replaced(placer=PlacerParams(effort=2.0))
        assert params.placer.effort == 2.0
        assert params.opt == OptParams()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FlowParameters().placer.effort = 9


@pytest.fixture()
def opt_setup():
    profile = tiny_profile("TO", sim_gate_count=280, logic_depth=8,
                           clock_tightness=1.03)
    netlist = generate_netlist(profile, seed=17)
    place(netlist, PlacerParams(), seed=17)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=17)
    constraints = default_constraints(netlist)
    return netlist, tree, constraints


class TestOptimizer:
    def test_improves_tns(self, opt_setup):
        netlist, tree, constraints = opt_setup
        result = optimize(netlist, constraints, tree, OptParams(), TradeoffWeights())
        assert result.report.tns_ps <= result.pre_tns_ps
        assert result.upsized > 0

    def test_zero_passes_no_upsizing(self, opt_setup):
        netlist, tree, constraints = opt_setup
        result = optimize(
            netlist, constraints, tree,
            OptParams(setup_passes=0, leakage_recovery=0.0, hold_effort=0.0),
            TradeoffWeights(),
        )
        assert result.upsized == 0
        assert result.downsized == 0

    def test_useful_skew_applied(self, opt_setup):
        netlist, tree, constraints = opt_setup
        result = optimize(
            netlist, constraints, tree,
            OptParams(useful_skew_gain=0.6), TradeoffWeights(),
        )
        assert result.useful_skew_endpoints > 0
        assert tree.useful_skew_ps

    def test_hold_fix_inserts_real_cells(self, opt_setup):
        netlist, tree, constraints = opt_setup
        before = netlist.cell_count
        result = optimize(
            netlist, constraints, tree,
            OptParams(useful_skew_gain=0.9, hold_effort=2.0),
            TradeoffWeights(),
        )
        added = netlist.cell_count - before
        assert added == result.hold_fix_count
        if result.hold_fix_count:
            netlist.validate()  # splice must leave a structurally valid design

    def test_power_recovery_downsizes(self, opt_setup):
        netlist, tree, constraints = opt_setup
        result = optimize(
            netlist, constraints, tree,
            OptParams(leakage_recovery=2.0, downsize_slack_margin=0.1),
            TradeoffWeights(power=3.0, timing=0.5),
        )
        assert result.downsized >= 0  # may be 0 on tight designs
        # Downsized cells must not break timing catastrophically.
        assert result.report.tns_ps <= result.pre_tns_ps * 1.5 + 100.0


class TestRunner:
    def test_snapshots_in_stage_order(self, flow_result):
        stages = [snap.stage for snap in flow_result.snapshots]
        assert stages == list(FlowStage.ordered())

    def test_qor_keys(self, flow_result):
        expected = {
            "tns_ns", "wns_ns", "hold_tns_ns", "power_mw", "leakage_mw",
            "area_um2", "wirelength_um", "drc_count", "hold_fix_count",
            "runtime_proxy",
        }
        assert expected <= set(flow_result.qor)

    def test_deterministic(self, small_profile):
        r1 = run_flow(small_profile, FlowParameters(), seed=7)
        r2 = run_flow(small_profile, FlowParameters(), seed=7)
        assert r1.qor == r2.qor

    def test_seed_changes_outcome(self, small_profile):
        r1 = run_flow(small_profile, FlowParameters(), seed=7)
        r2 = run_flow(small_profile, FlowParameters(), seed=8)
        assert r1.qor != r2.qor

    def test_design_by_name(self):
        result = run_flow("D11")
        assert result.design == "D11"
        assert result.qor["power_mw"] > 0

    def test_snapshot_accessor_raises_on_missing(self, flow_result):
        with pytest.raises(KeyError):
            flow_result.snapshot("not-a-stage")

    def test_reported_scale_applied(self):
        base = run_flow("D11")  # reported_scale = 0.012
        snap = base.snapshot(FlowStage.SIGNOFF)
        assert base.qor["power_mw"] == pytest.approx(
            snap.metrics["power_mw_raw"] * 0.012
        )

    def test_timing_weight_tradeoff_moves_power(self, small_profile):
        timing_first = run_flow(
            small_profile,
            FlowParameters(tradeoff=TradeoffWeights(timing=3.0, power=0.3)),
            seed=7,
        )
        power_first = run_flow(
            small_profile,
            FlowParameters(tradeoff=TradeoffWeights(timing=0.3, power=3.0)),
            seed=7,
        )
        assert power_first.qor["power_mw"] < timing_first.qor["power_mw"]

    def test_runtime_proxy_tracks_effort(self, small_profile):
        fast = run_flow(
            small_profile,
            FlowParameters(placer=PlacerParams(effort=0.5)),
            seed=7,
        )
        slow = run_flow(
            small_profile,
            FlowParameters(placer=PlacerParams(effort=2.0)),
            seed=7,
        )
        assert slow.qor["runtime_proxy"] > fast.qor["runtime_proxy"]
