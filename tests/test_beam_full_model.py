"""Beam-search behaviour on the full-size (40-recipe) model."""

import numpy as np
import pytest

from repro.core.beam import beam_search
from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob_value
from repro.insights.schema import INSIGHT_DIMS


@pytest.fixture(scope="module")
def model():
    return InsightAlignModel(seed=21)


@pytest.fixture(scope="module")
def insight():
    return np.random.default_rng(7).normal(size=(INSIGHT_DIMS,))


class TestFullModelBeam:
    def test_candidates_distinct_and_sorted(self, model, insight):
        candidates = beam_search(model, insight, beam_width=8)
        sets = [c.recipe_set for c in candidates]
        assert len(set(sets)) == 8
        scores = [c.log_prob for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_log_probs_recompute_exactly(self, model, insight):
        for candidate in beam_search(model, insight, beam_width=5):
            recomputed = sequence_log_prob_value(
                model, insight, candidate.recipe_set
            )
            assert candidate.log_prob == pytest.approx(recomputed, abs=1e-8)

    def test_monotone_in_width(self, model, insight):
        best = [
            beam_search(model, insight, beam_width=w)[0].log_prob
            for w in (1, 2, 5, 10)
        ]
        for narrow, wide in zip(best, best[1:]):
            assert wide >= narrow - 1e-12

    def test_insight_sensitivity(self, model, insight):
        other = insight + np.random.default_rng(8).normal(
            0, 1.0, size=insight.shape
        )
        a = beam_search(model, insight, beam_width=1)[0]
        b = beam_search(model, other, beam_width=1)[0]
        # Untrained models may coincide; at minimum scores must differ.
        assert a.log_prob != pytest.approx(b.log_prob, abs=1e-12) or \
            a.recipe_set != b.recipe_set
