"""Tests for the technology library: nodes, cells, characterization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LibraryError
from repro.techlib import (
    TECH_NODES,
    CellFunction,
    build_library,
    get_node,
)
from repro.techlib.cells import DRIVE_STRENGTHS, characterize


class TestNodes:
    def test_five_nodes(self):
        assert set(TECH_NODES) == {"45nm", "28nm", "16nm", "10nm", "7nm"}

    def test_unknown_node_raises(self):
        with pytest.raises(LibraryError, match="unknown technology node"):
            get_node("3nm")

    def test_delay_shrinks_with_node(self):
        delays = [get_node(n).gate_delay_ps for n in ("45nm", "28nm", "16nm", "10nm", "7nm")]
        assert delays == sorted(delays, reverse=True)

    def test_wire_resistance_grows_with_scaling(self):
        assert get_node("7nm").wire_res_ohm_per_um > get_node("45nm").wire_res_ohm_per_um

    def test_vdd_shrinks(self):
        assert get_node("7nm").vdd < get_node("45nm").vdd

    def test_finfet_flag(self):
        assert get_node("7nm").is_finfet
        assert not get_node("45nm").is_finfet


class TestCharacterize:
    def test_bad_drive_raises(self):
        with pytest.raises(ValueError, match="drive strength"):
            characterize(CellFunction.INV, 3, get_node("28nm"))

    def test_upsizing_lowers_resistance(self):
        node = get_node("28nm")
        x1 = characterize(CellFunction.NAND2, 1, node)
        x4 = characterize(CellFunction.NAND2, 4, node)
        assert x4.drive_res_kohm < x1.drive_res_kohm
        assert x4.area_um2 > x1.area_um2
        assert x4.leakage_nw > x1.leakage_nw
        assert x4.input_cap_ff > x1.input_cap_ff

    def test_weak_flag_is_x1(self):
        node = get_node("16nm")
        assert characterize(CellFunction.INV, 1, node).is_weak
        assert not characterize(CellFunction.INV, 2, node).is_weak

    def test_delay_model_monotone_in_load(self):
        cell = characterize(CellFunction.AOI21, 2, get_node("45nm"))
        assert cell.delay_ps(10.0) > cell.delay_ps(1.0)

    def test_negative_load_raises(self):
        cell = characterize(CellFunction.INV, 2, get_node("45nm"))
        with pytest.raises(ValueError, match="negative load"):
            cell.delay_ps(-1.0)

    def test_dff_slower_than_inv(self):
        node = get_node("28nm")
        dff = characterize(CellFunction.DFF, 2, node)
        inv = characterize(CellFunction.INV, 2, node)
        assert dff.intrinsic_delay_ps > inv.intrinsic_delay_ps

    @given(st.sampled_from(list(CellFunction)), st.sampled_from(DRIVE_STRENGTHS))
    def test_all_characterizations_positive(self, function, drive):
        cell = characterize(function, drive, get_node("7nm"))
        assert cell.intrinsic_delay_ps > 0
        assert cell.drive_res_kohm > 0
        assert cell.input_cap_ff > 0
        assert cell.area_um2 > 0
        assert cell.leakage_nw > 0


class TestLibrary:
    def test_full_catalog(self):
        lib = build_library("28nm")
        assert len(lib.cells) == len(CellFunction) * len(DRIVE_STRENGTHS)

    def test_cell_lookup(self):
        lib = build_library("16nm")
        cell = lib.cell("NAND2_X2")
        assert cell.function is CellFunction.NAND2
        assert cell.drive == 2

    def test_unknown_cell_raises(self):
        lib = build_library("16nm")
        with pytest.raises(LibraryError, match="not in"):
            lib.cell("NAND9_X1")

    def test_variants_sorted_by_drive(self):
        lib = build_library("45nm")
        drives = [c.drive for c in lib.variants(CellFunction.INV)]
        assert drives == sorted(drives)

    def test_upsize_chain_terminates(self):
        lib = build_library("45nm")
        cell = lib.variants(CellFunction.BUF)[0]
        steps = 0
        while cell is not None:
            cell = lib.upsize(cell)
            steps += 1
            assert steps < 10
        assert steps == len(DRIVE_STRENGTHS)

    def test_downsize_of_weakest_is_none(self):
        lib = build_library("45nm")
        weakest = lib.variants(CellFunction.INV)[0]
        assert lib.downsize(weakest) is None

    def test_default_variant_is_x2(self):
        lib = build_library("10nm")
        assert lib.default_variant(CellFunction.DFF).drive == 2

    def test_upsize_downsize_roundtrip(self):
        lib = build_library("7nm")
        x2 = lib.cell("XOR2_X2")
        assert lib.downsize(lib.upsize(x2)) == x2
