"""Tests for the sweep utility, interaction summary and fold balance."""

import pytest

from repro.errors import FlowError
from repro.flow.parameters import FlowParameters
from repro.flow.sweep import set_knob, sweep

from conftest import tiny_profile


class TestSetKnob:
    def test_float_knob(self):
        params = set_knob(FlowParameters(), "placer.effort", 2.0)
        assert params.placer.effort == 2.0
        # Original untouched (frozen dataclasses).
        assert FlowParameters().placer.effort == 1.0

    def test_integer_knob_rounds(self):
        params = set_knob(FlowParameters(), "opt.setup_passes", 4.6)
        assert params.opt.setup_passes == 5
        assert isinstance(params.opt.setup_passes, int)

    def test_unknown_section(self):
        with pytest.raises(FlowError, match="unknown knob"):
            set_knob(FlowParameters(), "warp.factor", 9.0)

    def test_unknown_field(self):
        with pytest.raises(FlowError, match="no field"):
            set_knob(FlowParameters(), "placer.caffeine", 9.0)


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        profile = tiny_profile("TSw", sim_gate_count=150)
        return sweep(
            profile,
            axes={
                "opt.vt_swap_bias": [0.8, 1.2],
                "opt.clock_gating_efficiency": [0.0, 0.6],
            },
            seed=3,
        )

    def test_full_factorial(self, result):
        assert len(result.grid) == 4
        assert len(result.qors) == 4
        assert result.knobs == [
            "opt.vt_swap_bias", "opt.clock_gating_efficiency",
        ]

    def test_knob_effect_visible(self, result):
        """Higher Vt bias must raise leakage at both gating levels."""
        by_point = dict(zip(result.grid, result.qors))
        for gating in (0.0, 0.6):
            low = by_point[(0.8, gating)]["leakage_mw"]
            high = by_point[(1.2, gating)]["leakage_mw"]
            assert high > low

    def test_best_lookup(self, result):
        point, qor = result.best("power_mw", minimize=True)
        assert qor["power_mw"] == min(result.column("power_mw"))
        assert point in result.grid

    def test_render_table(self, result):
        text = result.render()
        assert "opt.vt_swap_bias" in text
        assert text.count("\n") >= 5

    def test_empty_axes_rejected(self):
        with pytest.raises(FlowError):
            sweep("D11", axes={})


class TestInteractionSummary:
    def test_summary_covers_all_designs(self, mini_dataset):
        from repro.recipes.interactions import interaction_summary

        summary = interaction_summary(mini_dataset)
        assert set(summary) == set(mini_dataset.designs())
        for report in summary.values():
            assert report.main_effects.shape == (40,)


class TestFoldBalance:
    def test_fold_loads_roughly_equal(self, mini_dataset):
        from repro.core.crossval import make_folds

        folds = make_folds(mini_dataset, k=3, seed=2)
        loads = [
            sum(len(mini_dataset.by_design(d)) for d in fold)
            for fold in folds
        ]
        assert max(loads) - min(loads) <= max(
            len(mini_dataset.by_design(d)) for d in mini_dataset.designs()
        )
