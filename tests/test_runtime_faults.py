"""FaultInjector: seeded determinism and per-kind misbehaviour."""

import math

import numpy as np
import pytest

from repro.flow.result import FlowResult, StageSnapshot
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.flow.stages import FlowStage
from repro.runtime import FaultInjector, FaultKind, SimulatedToolCrash, VirtualClock


def fake_flow(design, params, seed=0):
    snapshots = [StageSnapshot(stage, {"m": 1.0}) for stage in FlowStage]
    return FlowResult(
        design=str(design),
        qor={key: 1.0 for key in REQUIRED_QOR_KEYS},
        snapshots=snapshots,
    )


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self):
        schedules = []
        for _ in range(2):
            injector = FaultInjector(rate=0.4, seed=21)
            for _ in range(60):
                injector.draw()
            schedules.append(injector.history)
        assert schedules[0] == schedules[1]

    def test_different_seeds_diverge(self):
        a = FaultInjector(rate=0.5, seed=1)
        b = FaultInjector(rate=0.5, seed=2)
        for _ in range(60):
            a.draw()
            b.draw()
        assert a.history != b.history

    def test_rate_extremes(self):
        never = FaultInjector(rate=0.0, seed=0)
        always = FaultInjector(rate=1.0, seed=0)
        for _ in range(50):
            assert never.draw() is None
            assert always.draw() is not None
        assert never.fault_count == 0
        assert always.fault_count == 50

    def test_rate_is_roughly_respected(self):
        injector = FaultInjector(rate=0.3, seed=11)
        draws = [injector.draw() for _ in range(500)]
        observed = sum(1 for kind in draws if kind is not None) / len(draws)
        assert 0.2 < observed < 0.4


class TestFaultKinds:
    def test_crash_raises_opaque_tool_error(self):
        injector = FaultInjector(rate=1.0, kinds=[FaultKind.CRASH], seed=0)
        wrapped = injector.wrap(fake_flow)
        with pytest.raises(SimulatedToolCrash):
            wrapped("D6", None)

    def test_hang_advances_shared_clock(self):
        clock = VirtualClock()
        injector = FaultInjector(
            rate=1.0, kinds=[FaultKind.HANG], seed=0,
            hang_s=123.0, clock=clock,
        )
        result = injector.wrap(fake_flow)("D6", None)
        assert clock.now() == 123.0
        # The run itself still "finished" — only late.
        assert result.qor["power_mw"] == 1.0

    def test_corrupt_qor_poisons_one_metric(self):
        injector = FaultInjector(
            rate=1.0, kinds=[FaultKind.CORRUPT_QOR], seed=3
        )
        result = injector.wrap(fake_flow)("D6", None)
        poisoned = [k for k, v in result.qor.items() if math.isnan(v)]
        assert len(poisoned) == 1

    def test_partial_snapshot_truncates_trajectory(self):
        injector = FaultInjector(
            rate=1.0, kinds=[FaultKind.PARTIAL_SNAPSHOT], seed=0
        )
        result = injector.wrap(fake_flow)("D6", None)
        assert 1 <= len(result.snapshots) < len(FlowStage)

    def test_clean_call_passes_through_untouched(self):
        injector = FaultInjector(rate=0.0, seed=0)
        result = injector.wrap(fake_flow)("D6", None)
        assert len(result.snapshots) == len(FlowStage)
        assert all(np.isfinite(list(result.qor.values())))


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)

    def test_rejects_empty_kinds(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=0.5, kinds=[])
