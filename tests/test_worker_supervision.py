"""The self-healing worker pool: supervision, watchdog, poison, degrade.

What the supervisor promises (and these tests hold it to): a batch always
completes — every job yields a result or a *typed* error report — no matter
how many workers die, stall, or take the whole pool down with them.  Serial
(workers=1) runs the same machinery in-process, so the two paths are also
checked for identical typed outcomes and counter accounting.
"""

import pytest

from conftest import tiny_profile

from repro.errors import (
    FlowTimeout,
    RuntimeConfigError,
    WorkerCrash,
    WorkerPoolError,
)
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.result import FlowResult
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.observability import get_registry, render_supervision
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowExecutor,
    FlowJob,
    FlowSession,
    ParallelFlowExecutor,
    RuntimeConfig,
)

KILL_PLAN = FaultPlan(rate=1.0, kinds=(FaultKind.WORKER_KILL,), seed=11)


def quick_flow(design, params, seed=0):
    """Cheap deterministic flow stand-in (module-level: picklable)."""
    base = 1.0 + round(params.opt.vt_swap_bias, 6)
    return FlowResult(
        design=str(design),
        qor={key: base * (index + 1) * 0.125
             for index, key in enumerate(REQUIRED_QOR_KEYS)},
    )


def slow_flow(design, params, seed=0):
    """A flow that wedges long enough to trip a sub-second watchdog."""
    import time

    time.sleep(1.5)
    return quick_flow(design, params, seed)


def _jobs(profile, count=4):
    return [
        FlowJob(profile, FlowParameters(
            opt=OptParams(vt_swap_bias=1.0 + 0.05 * index)
        ), seed=3)
        for index in range(count)
    ]


class TestKnobValidation:
    def test_executor_rejects_negative_budgets(self):
        with pytest.raises(ValueError, match="max_respawns"):
            ParallelFlowExecutor(max_respawns=-1)
        with pytest.raises(ValueError, match="poison_retries"):
            ParallelFlowExecutor(poison_retries=-2)
        with pytest.raises(ValueError, match="watchdog_s"):
            ParallelFlowExecutor(watchdog_s=0.0)

    @pytest.mark.parametrize("kwargs", [
        {"max_respawns": -1},
        {"max_respawns": 1.5},
        {"max_respawns": True},
        {"poison_retries": -1},
        {"watchdog_s": 0.0},
        {"watchdog_s": -2.0},
        {"degrade_to_serial": 1},
    ])
    def test_runtime_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(**kwargs)

    def test_runtime_config_accepts_defaults_and_explicit(self):
        config = RuntimeConfig(
            max_respawns=0, poison_retries=0, watchdog_s=2.5,
            degrade_to_serial=False,
        )
        assert config.watchdog_s == 2.5
        assert RuntimeConfig().max_respawns == 8

    def test_session_rejects_watchdog_with_injected_executor(self):
        config = RuntimeConfig(watchdog_s=1.0)
        with pytest.raises(RuntimeConfigError, match="watchdog"):
            FlowSession(config, executor=FlowExecutor(flow_fn=quick_flow))


class TestPoisonQuarantine:
    """A job that kills its worker every time it runs is poison: it must
    surface as a typed WorkerCrash report, not hang or sink the batch."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_poison_job_quarantined_with_typed_error(self, workers):
        profile = tiny_profile()
        with ParallelFlowExecutor(
            workers=workers, flow_fn=quick_flow, fault_plan=KILL_PLAN,
            max_respawns=32, poison_retries=0,
        ) as executor:
            reports = executor.run_batch(_jobs(profile, count=3))
            assert len(reports) == 3
            for report in reports:
                assert not report.ok
                assert isinstance(report.error, WorkerCrash)
                assert "quarantined as poison" in str(report.error)
            stats = executor.stats()
            assert stats["poison_jobs"] == 3
            assert stats["jobs_redispatched"] == 0

    def test_serial_and_pool_quarantine_reports_identical(self):
        profile = tiny_profile()
        outcomes = {}
        for workers in (1, 2):
            with ParallelFlowExecutor(
                workers=workers, flow_fn=quick_flow, fault_plan=KILL_PLAN,
                max_respawns=32, poison_retries=1,
            ) as executor:
                outcomes[workers] = [
                    (report.ok, type(report.error).__name__,
                     str(report.error))
                    for report in executor.run_batch(_jobs(profile))
                ]
        assert outcomes[1] == outcomes[2]


class TestWatchdog:
    def test_pool_watchdog_kills_stalled_worker(self):
        profile = tiny_profile()
        with ParallelFlowExecutor(
            workers=2, flow_fn=slow_flow, watchdog_s=0.2, max_respawns=8,
        ) as executor:
            reports = executor.run_batch(_jobs(profile, count=2))
            for report in reports:
                assert not report.ok
                assert isinstance(report.error, FlowTimeout)
                assert "supervision watchdog" in str(report.error)
            assert executor.stats()["worker_restarts"] >= 1

    def test_inprocess_watchdog_same_typed_outcome(self):
        profile = tiny_profile()
        with ParallelFlowExecutor(
            workers=1, flow_fn=slow_flow, watchdog_s=0.2,
        ) as executor:
            report = executor.run_batch(_jobs(profile, count=1))[0]
        assert isinstance(report.error, FlowTimeout)
        assert "supervision watchdog" in str(report.error)


class TestDegradation:
    def test_budget_exhaustion_degrades_to_serial(self):
        profile = tiny_profile()
        with ParallelFlowExecutor(
            workers=2, flow_fn=quick_flow, fault_plan=KILL_PLAN,
            max_respawns=1, poison_retries=0,
        ) as executor:
            reports = executor.run_batch(_jobs(profile, count=6))
            # Every job still answered, all as typed quarantine reports
            # (rate=1.0 kills on every dispatch, serial or pooled).
            assert len(reports) == 6
            assert all(isinstance(r.error, WorkerCrash) for r in reports)
            stats = executor.stats()
            assert stats["degraded"] is True
            assert stats["workers_live"] == 0
            # A later batch goes straight to the serial path.
            more = executor.run_batch(_jobs(profile, count=2))
            assert all(isinstance(r.error, WorkerCrash) for r in more)

    def test_degrade_disabled_raises_worker_pool_error(self):
        profile = tiny_profile()
        with ParallelFlowExecutor(
            workers=2, flow_fn=quick_flow, fault_plan=KILL_PLAN,
            max_respawns=0, poison_retries=0, degrade_to_serial=False,
        ) as executor:
            with pytest.raises(WorkerPoolError, match="respawn budget"):
                executor.run_batch(_jobs(profile, count=4))


class TestGracefulClose:
    def test_close_joins_workers_and_is_idempotent(self):
        profile = tiny_profile()
        executor = ParallelFlowExecutor(workers=2, flow_fn=quick_flow)
        reports = executor.run_batch(_jobs(profile, count=2))
        assert all(report.ok for report in reports)
        supervisor = executor._pool
        assert supervisor is not None and supervisor.live_count() == 2
        executor.close(timeout_s=5.0)
        assert executor._pool is None
        assert supervisor.live_count() == 0
        executor.close()  # second close is a no-op

    def test_close_kills_wedged_worker_within_bound(self):
        import time

        profile = tiny_profile()
        executor = ParallelFlowExecutor(
            workers=2, flow_fn=slow_flow, watchdog_s=0.2,
        )
        executor.run_batch(_jobs(profile, count=1))
        started = time.monotonic()
        executor.close(timeout_s=1.0)
        assert time.monotonic() - started < 5.0
        assert executor._pool is None


class TestQueueDepthGauge:
    def _depth(self):
        return get_registry().gauge("flow_pool_queue_depth").value

    def test_gauge_zero_after_batch(self):
        profile = tiny_profile()
        with ParallelFlowExecutor(workers=2, flow_fn=quick_flow) as ex:
            ex.run_batch(_jobs(profile))
            assert self._depth() == 0

    def test_gauge_zero_after_fully_cached_batch(self, tmp_path):
        profile = tiny_profile()
        jobs = _jobs(profile, count=2)
        with ParallelFlowExecutor(
            flow_fn=quick_flow, cache=tmp_path / "qor"
        ) as ex:
            ex.run_batch(jobs)
            # Leave a stale-looking value behind, then run an all-hit
            # batch: the gauge must still read 0 at batch end.
            get_registry().gauge("flow_pool_queue_depth").set(7)
            reports = ex.run_batch(jobs)
            assert all(report.cached for report in reports)
            assert self._depth() == 0

    def test_gauge_zero_after_degraded_batch(self):
        profile = tiny_profile()
        with ParallelFlowExecutor(
            workers=2, flow_fn=quick_flow, fault_plan=KILL_PLAN,
            max_respawns=0, poison_retries=0,
        ) as ex:
            ex.run_batch(_jobs(profile))
            assert self._depth() == 0


class TestSupervisionObservability:
    def test_session_stats_carry_supervision_counters(self):
        profile = tiny_profile()
        config = RuntimeConfig(
            workers=2,
            fault_plan=FaultPlan(
                rate=0.4, kinds=(FaultKind.WORKER_KILL,), seed=2
            ),
            max_respawns=32, poison_retries=4,
        )
        with FlowSession(config) as session:
            outcomes = session.evaluate(_jobs(profile, count=6))
            assert all(outcome.ok for outcome in outcomes)
            stats = session.stats()
        for key in ("workers_live", "worker_restarts",
                    "jobs_redispatched", "poison_jobs", "degraded"):
            assert key in stats
        assert stats["worker_restarts"] >= 1
        assert stats["jobs_redispatched"] >= 1
        assert stats["degraded"] is False

    def test_restart_metric_split_by_mode(self):
        profile = tiny_profile()
        counter = get_registry().counter("flow_worker_restarts_total")
        before = counter.value_of(mode="inprocess")
        with ParallelFlowExecutor(
            workers=1, flow_fn=quick_flow,
            fault_plan=FaultPlan(
                rate=0.4, kinds=(FaultKind.WORKER_KILL,), seed=2
            ),
            poison_retries=4,
        ) as ex:
            ex.run_batch(_jobs(profile, count=6))
        assert counter.value_of(mode="inprocess") > before

    def test_render_supervision_section(self):
        metrics = {
            "flow_workers_live": {
                "kind": "gauge", "values": {"{}": 2.0},
            },
            "flow_worker_restarts_total": {
                "kind": "counter", "values": {'{mode="pool"}': 3.0},
            },
        }
        text = render_supervision(metrics)
        assert "live workers" in text
        assert 'worker restarts{mode="pool"}' in text
        assert render_supervision({"flow_runs_total": {
            "kind": "counter", "values": {"{}": 1.0},
        }}) == ""
