"""Tests for incremental STA and recipe-interaction analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError, TrainingError
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.recipes.interactions import analyze_interactions
from repro.timing.constraints import default_constraints
from repro.timing.incremental import IncrementalTimer
from repro.timing.sta import run_sta
from repro.utils.rng import derive_rng

from conftest import tiny_profile


@pytest.fixture(scope="module")
def timed_design():
    profile = tiny_profile("TInc", sim_gate_count=240, clock_tightness=1.05)
    netlist = generate_netlist(profile, seed=51)
    place(netlist, PlacerParams(), seed=51)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=51)
    constraints = default_constraints(netlist)
    return netlist, tree, constraints


def _sizable_cells(netlist, rng, count):
    names = [
        name for name, cell in netlist.cells.items()
        if not cell.is_sequential and not cell.is_clock_cell
    ]
    picks = rng.choice(len(names), size=min(count, len(names)), replace=False)
    return [names[int(i)] for i in picks]


class TestIncrementalTimer:
    def test_initial_matches_full_sta(self, timed_design):
        netlist, tree, constraints = timed_design
        timer = IncrementalTimer(netlist, constraints, tree)
        full = run_sta(netlist, constraints, tree)
        for endpoint, slack in timer.setup_slack.items():
            assert slack == pytest.approx(
                full.endpoint_slack_ps[endpoint], abs=1e-9
            )
        assert timer.wns_ps == pytest.approx(
            min(s for e, s in full.endpoint_slack_ps.items()
                if not e.startswith("PO:")),
            abs=1e-9,
        )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100), moves=st.integers(1, 6))
    def test_incremental_equals_full_after_sizing(self, timed_design, seed, moves):
        netlist, tree, constraints = timed_design
        rng = derive_rng(seed, "inc")
        library = netlist.library
        # Record original sizes to restore (module-scoped fixture).
        originals = {}
        timer = IncrementalTimer(netlist, constraints, tree)
        try:
            for _ in range(moves):
                (name,) = _sizable_cells(netlist, rng, 1)
                cell = netlist.cells[name]
                originals.setdefault(name, cell.cell_type)
                swap = (library.upsize(cell.cell_type)
                        or library.downsize(cell.cell_type))
                cell.cell_type = swap
                timer.update([name])
            full = run_sta(netlist, constraints, tree)
            for endpoint, slack in timer.setup_slack.items():
                assert slack == pytest.approx(
                    full.endpoint_slack_ps[endpoint], abs=1e-8
                ), endpoint
            for endpoint, slack in timer.hold_slack.items():
                assert slack == pytest.approx(
                    full.endpoint_hold_slack_ps[endpoint], abs=1e-8
                ), endpoint
        finally:
            for name, cell_type in originals.items():
                netlist.cells[name].cell_type = cell_type

    def test_update_touches_fewer_cells_than_full(self, timed_design):
        netlist, tree, constraints = timed_design
        timer = IncrementalTimer(netlist, constraints, tree)
        rng = derive_rng(7, "inc-count")
        (name,) = _sizable_cells(netlist, rng, 1)
        cell = netlist.cells[name]
        original = cell.cell_type
        try:
            cell.cell_type = netlist.library.upsize(original) or \
                netlist.library.downsize(original)
            recomputed = timer.update([name])
            comb_total = len(timer.graph.order)
            assert 0 < recomputed <= comb_total
        finally:
            cell.cell_type = original
            timer.update([name])

    def test_empty_update_is_noop(self, timed_design):
        netlist, tree, constraints = timed_design
        timer = IncrementalTimer(netlist, constraints, tree)
        assert timer.update([]) == 0

    def test_unknown_cell_rejected(self, timed_design):
        netlist, tree, constraints = timed_design
        timer = IncrementalTimer(netlist, constraints, tree)
        with pytest.raises(FlowError):
            timer.update(["not_a_cell"])


class TestInteractions:
    def test_report_shapes(self, mini_dataset):
        report = analyze_interactions(mini_dataset, "D6")
        assert report.main_effects.shape == (40,)
        assert report.synergy.shape == (40, 40)
        assert -1.0 <= report.additive_r2 <= 1.0
        assert report.residual_std >= 0.0

    def test_synergy_symmetric(self, mini_dataset):
        report = analyze_interactions(mini_dataset, "D10")
        synergy = report.synergy
        finite = np.isfinite(synergy)
        np.testing.assert_array_equal(finite, finite.T)
        assert np.allclose(
            synergy[finite], synergy.T[finite], equal_nan=True
        )

    def test_top_synergies_sorted(self, mini_dataset):
        report = analyze_interactions(mini_dataset, "D11")
        top = report.top_synergies(k=5)
        magnitudes = [abs(v) for _, _, v in top]
        assert magnitudes == sorted(magnitudes, reverse=True)
        for i, j, _ in top:
            assert i < j

    def test_too_small_archive_rejected(self):
        from repro.core.dataset import DataPoint, OfflineDataset
        from repro.insights.extractor import InsightVector
        from repro.insights.schema import INSIGHT_DIMS

        dataset = OfflineDataset(
            points=[DataPoint("X", tuple([0] * 40),
                              {"power_mw": 1.0, "tns_ns": 0.0})] * 3,
            insights={"X": InsightVector("X", np.zeros(INSIGHT_DIMS), {})},
        )
        with pytest.raises(TrainingError):
            analyze_interactions(dataset, "X")

    def test_planted_interaction_detected(self):
        """A pair that only pays off together must get positive synergy."""
        from repro.core.dataset import DataPoint, OfflineDataset
        from repro.insights.extractor import InsightVector
        from repro.insights.schema import INSIGHT_DIMS

        rng = derive_rng(3, "planted")
        points = []
        for _ in range(300):
            bits = [0] * 40
            for index in np.flatnonzero(rng.random(40) < 0.3):
                bits[int(index)] = 1
            bonus = 5.0 if (bits[4] and bits[9]) else 0.0
            points.append(DataPoint(
                "X", tuple(bits),
                {"power_mw": 10.0 - bonus + rng.normal(0, 0.1), "tns_ns": 1.0},
            ))
        dataset = OfflineDataset(
            points=points,
            insights={"X": InsightVector("X", np.zeros(INSIGHT_DIMS), {})},
        )
        report = analyze_interactions(dataset, "X")
        top = report.top_synergies(k=1)[0]
        assert (top[0], top[1]) == (4, 9)
        assert top[2] > 0
