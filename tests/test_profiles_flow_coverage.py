"""Smoke coverage: every one of the 17 designs runs the full flow cleanly.

Table IV depends on all 17 profiles producing sane QoR; this guards each
profile individually (fast seeds, default parameters) so a profile-level
regression is pinpointed rather than discovered deep inside a bench.
"""

import numpy as np
import pytest

from repro.flow.parameters import FlowParameters
from repro.flow.runner import run_flow
from repro.flow.stages import FlowStage
from repro.netlist.profiles import design_profiles


@pytest.mark.parametrize(
    "profile", design_profiles(), ids=lambda p: p.name
)
class TestEveryDesignRuns:
    def test_flow_produces_sane_qor(self, profile):
        result = run_flow(profile.name, FlowParameters(), seed=0)
        qor = result.qor
        assert qor["power_mw"] > 0
        assert qor["tns_ns"] >= 0
        assert qor["area_um2"] > 0
        assert np.isfinite(list(qor.values())).all()
        # Trajectory is complete.
        assert len(result.snapshots) == 5
        signoff = result.snapshot(FlowStage.SIGNOFF)
        assert 0.0 <= signoff.get("leakage_fraction") <= 1.0
        # Tight-clock profiles retain timing pressure; easy ones close.
        if profile.clock_tightness <= 1.06:
            assert qor["wns_ns"] < 0.05
