"""Tests for the insight schema, analyzers and extraction."""

import numpy as np
import pytest

from repro.errors import InsightError
from repro.flow.parameters import FlowParameters
from repro.flow.runner import run_flow
from repro.insights.analyzers import (
    analyze_clock,
    analyze_design,
    analyze_placement,
    analyze_power,
    analyze_routing,
    analyze_timing,
)
from repro.insights.extractor import InsightExtractor, InsightVector
from repro.insights.schema import INSIGHT_DIMS, InsightKind, insight_schema

from conftest import tiny_profile


class TestSchema:
    def test_published_width(self):
        assert INSIGHT_DIMS == 72

    def test_categories_match_table1(self):
        categories = {f.category for f in insight_schema()}
        assert {"Placement", "Timing", "Power", "Clock"} <= categories

    def test_level_fields_are_three_dims(self):
        for field in insight_schema():
            if field.kind is InsightKind.LEVEL:
                assert field.dims == 3
            else:
                assert field.dims == 1

    def test_unique_keys(self):
        keys = [f.key for f in insight_schema()]
        assert len(set(keys)) == len(keys)

    def test_table1_examples_present(self):
        keys = {f.key for f in insight_schema()}
        # The eight Table I example insights all have a counterpart.
        assert "congestion_early" in keys          # congestion during step X
        assert "timing_easy" in keys               # easy to meet timing
        assert "power_saving_opportunity" in keys
        assert "sequential_power_dominant" in keys
        assert "leakage_dominant" in keys
        assert "harmful_clock_skew" in keys
        assert "hold_fix_count" in keys
        assert "weak_cell_pct" in keys


class TestAnalyzers:
    def test_each_analyzer_contributes(self, flow_result, small_profile):
        outputs = {}
        outputs.update(analyze_placement(flow_result))
        outputs.update(analyze_timing(flow_result))
        outputs.update(analyze_power(flow_result))
        outputs.update(analyze_clock(flow_result))
        outputs.update(analyze_routing(flow_result))
        outputs.update(analyze_design(flow_result, small_profile))
        schema_keys = {f.key for f in insight_schema()}
        assert schema_keys <= set(outputs)

    def test_levels_are_valid(self, flow_result):
        placement = analyze_placement(flow_result)
        for key in ("congestion_early", "congestion_mid", "congestion_late"):
            assert placement[key] in ("low", "medium", "high")

    def test_percent_fields_in_range(self, flow_result, small_profile):
        extractor = InsightExtractor()
        vector = extractor.extract(flow_result, small_profile)
        for field in insight_schema():
            if field.kind is InsightKind.PERCENT:
                assert 0.0 <= float(vector.raw[field.key]) <= 100.0 + 1e-9, field.key

    def test_node_one_hot(self, flow_result, small_profile):
        design = analyze_design(flow_result, small_profile)
        flags = [design[f"node_{n}"] for n in ("45nm", "28nm", "16nm", "10nm", "7nm")]
        assert sum(bool(f) for f in flags) == 1
        assert design["node_28nm"] is True


class TestExtractor:
    def test_shape_is_72(self, flow_result, small_profile):
        vector = InsightExtractor().extract(flow_result, small_profile)
        assert vector.values.shape == (INSIGHT_DIMS,)
        assert np.all(np.isfinite(vector.values))

    def test_values_bounded(self, flow_result, small_profile):
        vector = InsightExtractor().extract(flow_result, small_profile)
        assert vector.values.max() <= 2.5
        assert vector.values.min() >= -2.5

    def test_describe_lines(self, flow_result, small_profile):
        vector = InsightExtractor().extract(flow_result, small_profile)
        lines = vector.describe()
        assert len(lines) == len(insight_schema())
        assert any("Congestion" in line for line in lines)

    def test_missing_key_raises(self):
        with pytest.raises(InsightError, match="no value"):
            InsightExtractor().encode({"congestion_early": "low"})

    def test_bad_level_raises(self, flow_result, small_profile):
        extractor = InsightExtractor()
        vector = extractor.extract(flow_result, small_profile)
        raw = dict(vector.raw)
        raw["congestion_early"] = "extreme"
        with pytest.raises(InsightError, match="expected one of"):
            extractor.encode(raw)

    def test_wrong_shape_vector_rejected(self):
        with pytest.raises(InsightError, match="shape"):
            InsightVector(design="x", values=np.zeros(10), raw={})

    def test_congested_design_reads_congested(self):
        profile = tiny_profile(
            "TCg", sim_gate_count=500, utilization=0.9,
            high_fanout_fraction=0.2, node="7nm", cluster_count=8,
        )
        result = run_flow(profile, FlowParameters(), seed=3)
        vector = InsightExtractor().extract(result, profile)
        sparse_profile = tiny_profile("TSp", sim_gate_count=200, utilization=0.4)
        sparse_result = run_flow(sparse_profile, FlowParameters(), seed=3)
        sparse_vector = InsightExtractor().extract(sparse_result, sparse_profile)
        order = {"low": 0, "medium": 1, "high": 2}
        assert (
            order[vector.raw["congestion_final"]]
            >= order[sparse_vector.raw["congestion_final"]]
        )

    def test_leaky_design_flags_leakage(self):
        profile = tiny_profile("TLk", leakage_bias=3.0, activity=0.02,
                               node="45nm", clock_tightness=1.5)
        result = run_flow(profile, FlowParameters(), seed=3)
        vector = InsightExtractor().extract(result, profile)
        assert float(vector.raw["leakage_fraction"]) > 20.0
