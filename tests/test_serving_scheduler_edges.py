"""MicroBatcher edge cases (ISSUE 9 satellite).

Three boundaries the mainline scheduler tests skip over:

1. deadline expiry *racing* batch formation — a request whose deadline
   lands exactly on the instant the batch becomes due must expire, never
   decode, and must not poison the rest of the batch;
2. admission at exactly ``max_queue_depth`` — the boundary submission is
   the one that sheds, and one drain re-opens exactly one slot;
3. ``max_wait_s=0`` — the zero-latency-budget configuration: whatever is
   queued dispatches on the very next poll, batching only what arrived
   together.

Everything runs on a :class:`~repro.runtime.clock.VirtualClock`; no test
sleeps on real wall time.
"""

import numpy as np
import pytest

from repro.core.model import InsightAlignModel
from repro.core.recommender import InsightAlign
from repro.errors import DeadlineExceededError, QueueFullError
from repro.insights.schema import INSIGHT_DIMS
from repro.runtime.clock import VirtualClock
from repro.serving import RecommendationService, ServingConfig
from repro.serving.scheduler import MicroBatcher, RequestStatus, Ticket


def make_ticket(request_id, now, deadline_s=None, rng=None):
    rng = rng or np.random.default_rng(request_id)
    return Ticket(
        request_id=request_id,
        insight=rng.normal(size=INSIGHT_DIMS),
        k=3,
        submitted_at=now,
        deadline_at=None if deadline_s is None else now + deadline_s,
    )


def make_service(clock, **config):
    config.setdefault("cache_capacity", 0)
    recommender = InsightAlign(InsightAlignModel(seed=5, n_recipes=8, dim=16))
    return RecommendationService(
        recommender,
        ServingConfig(**config),
        clock=clock,
        sleep=clock.sleep,
    )


class TestDeadlineRacesBatchFormation:
    def test_deadline_exactly_at_dispatch_expires(self):
        """deadline_at == now at take_batch time: expiry wins the race."""
        batcher = MicroBatcher(
            ServingConfig(max_batch_size=4, max_wait_s=0.01)
        )
        doomed = make_ticket(0, now=0.0, deadline_s=0.01)
        survivor = make_ticket(1, now=0.0)
        batcher.submit(doomed)
        batcher.submit(survivor)
        # At t=0.01 the oldest request has waited max_wait_s (batch due)
        # AND its deadline has arrived.  The >= comparison must resolve
        # the tie toward expiry: a request at its deadline is never decoded.
        batch = batcher.take_batch(now=0.01)
        assert doomed.status is RequestStatus.EXPIRED
        assert batch == [survivor]

    def test_expiry_does_not_block_batch_of_survivors(self):
        batcher = MicroBatcher(ServingConfig(max_batch_size=2, max_wait_s=1.0))
        doomed = make_ticket(0, now=0.0, deadline_s=0.5)
        late_a = make_ticket(1, now=0.6)
        late_b = make_ticket(2, now=0.6)
        for ticket in (doomed, late_a, late_b):
            batcher.submit(ticket)
        # The expired head must not count toward batch formation, but the
        # two live requests fill max_batch_size and dispatch immediately.
        batch = batcher.take_batch(now=0.7)
        assert doomed.status is RequestStatus.EXPIRED
        assert batch == [late_a, late_b]

    def test_next_due_in_is_capped_by_the_deadline(self):
        """The driver must wake for an expiry, not sleep past it to the
        batch-formation due time."""
        batcher = MicroBatcher(
            ServingConfig(max_batch_size=8, max_wait_s=10.0)
        )
        batcher.submit(make_ticket(0, now=0.0, deadline_s=0.25))
        assert batcher.next_due_in(now=0.0) == pytest.approx(0.25)

    def test_service_settles_expiry_and_batch_in_one_poll(self):
        clock = VirtualClock()
        service = make_service(
            clock, max_batch_size=4, max_wait_s=0.05, default_deadline_s=None
        )
        rng = np.random.default_rng(0)
        doomed = service.submit(rng.normal(size=INSIGHT_DIMS), deadline_s=0.05)
        served = service.submit(rng.normal(size=INSIGHT_DIMS))
        clock.advance(0.05)  # batch due and deadline hit on the same tick
        settled = service.poll()
        assert settled == 2
        assert doomed.status is RequestStatus.EXPIRED
        with pytest.raises(DeadlineExceededError):
            doomed.result()
        assert served.status is RequestStatus.COMPLETED
        assert served.result()
        stats = service.stats()
        assert stats["requests"]["expired"] == 1
        assert stats["requests"]["completed"] == 1


class TestAdmissionBoundary:
    def test_rejects_exactly_at_max_depth(self):
        batcher = MicroBatcher(
            ServingConfig(max_queue_depth=4, max_batch_size=2)
        )
        for i in range(4):
            batcher.submit(make_ticket(i, now=0.0))  # fills to the brim
        assert batcher.depth == 4
        with pytest.raises(QueueFullError):
            batcher.submit(make_ticket(99, now=0.0))
        # The rejected request must not have been half-admitted.
        assert batcher.depth == 4

    def test_one_drain_reopens_exactly_batch_size_slots(self):
        batcher = MicroBatcher(
            ServingConfig(max_queue_depth=4, max_batch_size=2, max_wait_s=0.0)
        )
        for i in range(4):
            batcher.submit(make_ticket(i, now=0.0))
        assert len(batcher.take_batch(now=0.0)) == 2
        batcher.submit(make_ticket(5, now=0.0))
        batcher.submit(make_ticket(6, now=0.0))
        with pytest.raises(QueueFullError):  # full again at exactly 4
            batcher.submit(make_ticket(7, now=0.0))

    def test_service_counts_boundary_rejection(self):
        clock = VirtualClock()
        service = make_service(
            clock, max_queue_depth=2, max_batch_size=8, max_wait_s=1.0
        )
        rng = np.random.default_rng(1)
        for _ in range(2):
            service.submit(rng.normal(size=INSIGHT_DIMS))
        with pytest.raises(QueueFullError):
            service.submit(rng.normal(size=INSIGHT_DIMS))
        stats = service.stats()
        assert stats["requests"]["rejected"] == 1
        assert stats["requests"]["submitted"] == 2
        # Backpressure is transient: one flush re-opens admission.
        service.flush()
        ticket = service.submit(rng.normal(size=INSIGHT_DIMS))
        service.flush()
        assert ticket.result()


class TestZeroWaitBatching:
    def test_single_request_dispatches_immediately(self):
        batcher = MicroBatcher(ServingConfig(max_batch_size=8, max_wait_s=0.0))
        ticket = make_ticket(0, now=3.0)
        batcher.submit(ticket)
        # Due the instant it arrives — no waiting for co-batchers.
        assert batcher.ready(now=3.0)
        assert batcher.next_due_in(now=3.0) == 0.0
        assert batcher.take_batch(now=3.0) == [ticket]

    def test_batches_only_what_arrived_together(self):
        """max_wait_s=0 still batches: everything queued at poll time goes
        out together, capped at max_batch_size."""
        batcher = MicroBatcher(ServingConfig(max_batch_size=3, max_wait_s=0.0))
        tickets = [make_ticket(i, now=0.0) for i in range(5)]
        for ticket in tickets:
            batcher.submit(ticket)
        assert batcher.take_batch(now=0.0) == tickets[:3]
        assert batcher.take_batch(now=0.0) == tickets[3:]
        assert batcher.take_batch(now=0.0) == []

    def test_service_zero_wait_never_sleeps(self):
        clock = VirtualClock()
        service = make_service(clock, max_batch_size=4, max_wait_s=0.0)
        rng = np.random.default_rng(2)
        tickets = [service.submit(rng.normal(size=INSIGHT_DIMS))
                   for _ in range(6)]
        settled = service.run_until_idle()
        assert settled == 6
        assert all(t.result() for t in tickets)
        # Virtual time never advanced: zero-wait dispatch required no
        # sleeping between polls.
        assert clock.now() == 0.0
