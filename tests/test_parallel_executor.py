"""Parallel flow evaluation: sequential equivalence, faults, batching.

The hard guarantee under test: a :class:`ParallelFlowExecutor` batch
returns bit-identical results to the sequential loop for the same seeds at
any worker count — QoR dicts, stage snapshots, derived insight vectors —
and seeded fault injection surfaces the same typed errors through the
process-pool boundary as it does in-process.
"""

import pickle

import numpy as np
import pytest

from conftest import tiny_profile

from repro.baselines.aco import AntColonyTuner
from repro.baselines.common import CachingObjective, TuningBudget
from repro.baselines.random_search import RandomSearchTuner
from repro.errors import (
    CorruptQoR,
    FlowCrash,
    FlowError,
    FlowTimeout,
    NetlistError,
)
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.result import FlowResult, StageSnapshot
from repro.flow.runner import REQUIRED_QOR_KEYS, run_flow
from repro.flow.stages import FlowStage
from repro.insights.extractor import InsightExtractor
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowExecutor,
    FlowJob,
    ParallelFlowExecutor,
    RetryPolicy,
    RuntimeConfig,
)

WORKER_COUNTS = (1, 2, 8)


def _jobs(profile, count=3):
    """A few distinct parameterizations of one tiny design."""
    jobs = []
    for index in range(count):
        params = FlowParameters(
            opt=OptParams(vt_swap_bias=1.0 + 0.05 * index)
        )
        jobs.append(FlowJob(profile, params, seed=3))
    return jobs


def toy_flow(design, params, seed=0):
    """Cheap deterministic stand-in (module-level: picklable for pools)."""
    base = 1.0 + round(params.opt.vt_swap_bias, 6)
    return FlowResult(
        design=str(design),
        qor={key: base * (index + 1) * 0.125
             for index, key in enumerate(REQUIRED_QOR_KEYS)},
        snapshots=[
            StageSnapshot(stage, {"metric": base * step})
            for step, stage in enumerate(FlowStage)
        ],
    )


class TestSequentialEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        """The plain sequential loop the parallel path must reproduce."""
        profile = tiny_profile()
        executor = FlowExecutor()
        return profile, [
            executor.execute(job.design, job.params, seed=job.seed)
            for job in _jobs(profile)
        ]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_at_any_worker_count(self, reference, workers):
        profile, expected = reference
        with ParallelFlowExecutor(workers=workers) as executor:
            results = executor.execute_batch(_jobs(profile))
        extractor = InsightExtractor()
        for got, want in zip(results, expected):
            # QoR dicts: exact float equality, not approx.
            assert got.qor == want.qor
            # Full stage trajectories.
            assert len(got.snapshots) == len(want.snapshots)
            for s_got, s_want in zip(got.snapshots, want.snapshots):
                assert s_got.stage is s_want.stage
                assert s_got.metrics == s_want.metrics
            # Derived insight vectors.
            np.testing.assert_array_equal(
                extractor.extract(got, profile).values,
                extractor.extract(want, profile).values,
            )

    def test_reports_come_back_in_submission_order(self):
        profile = tiny_profile()
        jobs = _jobs(profile, count=4)
        with ParallelFlowExecutor(workers=2) as executor:
            reports = executor.run_batch(jobs)
        for job, report in zip(jobs, reports):
            direct = run_flow(job.design, job.params, seed=job.seed)
            assert report.ok
            assert report.result.qor == direct.qor

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelFlowExecutor(workers=0)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_config_errors_propagate_untyped(self, workers):
        # An unknown design is a configuration bug, not tool flakiness:
        # it must raise (NetlistError), not be absorbed into a report.
        with ParallelFlowExecutor(workers=workers) as executor:
            with pytest.raises(NetlistError):
                executor.run_batch([FlowJob("NOPE")])


class TestTypedErrorsThroughThePool:
    def test_flow_errors_survive_pickling(self):
        for error in (
            FlowTimeout("run took 99.0s, past the 10.0s deadline"),
            FlowCrash("flow tool crashed: SimulatedToolCrash('boom')"),
            CorruptQoR("flow run on D6 produced non-finite QoR metrics"),
        ):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fault_schedule_invariant_to_worker_count(self, workers):
        """Seeded faults at rate 1.0: every job fails with the same typed
        error at 1, 2 and 8 workers (job-index-keyed schedules)."""
        plan = FaultPlan(
            rate=1.0,
            kinds=(FaultKind.CRASH, FaultKind.CORRUPT_QOR, FaultKind.HANG),
            seed=17,
            hang_s=1000.0,
        )
        jobs = [FlowJob("D6", FlowParameters(), seed=i) for i in range(6)]
        kwargs = dict(
            flow_fn=toy_flow,
            fault_plan=plan,
            deadline_s=10.0,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
        )
        with ParallelFlowExecutor(workers=1, **kwargs) as sequential:
            expected = sequential.run_batch(jobs)
        with ParallelFlowExecutor(workers=workers, **kwargs) as parallel:
            got = parallel.run_batch(jobs)
        assert all(not report.ok for report in expected)
        for a, b in zip(expected, got):
            assert b.ok is False
            assert type(b.error) is type(a.error)
            assert str(b.error) == str(a.error)
            assert isinstance(b.error, FlowError)
            assert len(b.attempts) == len(a.attempts)

    def test_hang_surfaces_as_timeout_through_pool(self):
        plan = FaultPlan(rate=1.0, kinds=(FaultKind.HANG,), seed=3,
                         hang_s=500.0)
        with ParallelFlowExecutor(
            workers=2, flow_fn=toy_flow, fault_plan=plan, deadline_s=10.0,
            policy=RetryPolicy(max_attempts=1),
        ) as executor:
            reports = executor.run_batch(
                [FlowJob("D6", FlowParameters(), seed=i) for i in range(3)]
            )
        for report in reports:
            assert isinstance(report.error, FlowTimeout)

    def test_execute_batch_raises_first_failure_by_submission_order(self):
        plan = FaultPlan(rate=1.0, kinds=(FaultKind.CRASH,), seed=5)
        with ParallelFlowExecutor(
            workers=2, flow_fn=toy_flow, fault_plan=plan,
            policy=RetryPolicy(max_attempts=1),
        ) as executor:
            with pytest.raises(FlowCrash):
                executor.execute_batch([FlowJob("D6"), FlowJob("D10")])


class TestBatchObjectives:
    def test_random_search_trajectory_unchanged_by_batching(self):
        def objective(bits):
            return float(sum(bits)) - 0.01 * bits[0]

        class Batched:
            def __call__(self, bits):
                return objective(bits)

            def evaluate_batch(self, sets):
                return [objective(bits) for bits in sets]

        budget = TuningBudget(evaluations=17)
        plain = RandomSearchTuner(seed=4, population=1).tune(objective, budget)
        pop = RandomSearchTuner(seed=4, population=6).tune(Batched(), budget)
        assert plain.recipe_sets == pop.recipe_sets
        assert plain.scores == pop.scores

    def test_aco_trajectory_unchanged_by_batching(self):
        def objective(bits):
            return float(sum(bits[:10])) - 0.25 * sum(bits[10:])

        class Batched:
            def __call__(self, bits):
                return objective(bits)

            def evaluate_batch(self, sets):
                return [objective(bits) for bits in sets]

        budget = TuningBudget(evaluations=15)
        plain = AntColonyTuner(seed=9).tune(objective, budget)
        batched = AntColonyTuner(seed=9).tune(Batched(), budget)
        assert plain.recipe_sets == batched.recipe_sets
        assert plain.scores == batched.scores

    def test_caching_objective_batch_dedups(self):
        calls = []

        def objective(bits):
            calls.append(bits)
            return float(sum(bits))

        caching = CachingObjective(objective)
        a, b = (1, 0, 1), (0, 1, 1)
        scores = caching.evaluate_batch([a, b, a, a])
        assert scores == [2.0, 2.0, 2.0, 2.0]
        assert len(calls) == 2  # duplicates never reach the objective
        assert caching.evaluate_batch([b]) == [2.0]
        assert len(calls) == 2  # second batch fully served from cache


class TestOnlineLoopParallel:
    @pytest.fixture(scope="class")
    def archive(self):
        """Synthetic archive over real profile names (no flow runs)."""
        from repro.core.dataset import DataPoint, OfflineDataset
        from repro.insights.extractor import InsightVector
        from repro.insights.schema import INSIGHT_DIMS

        rng = np.random.default_rng(0)
        points = []
        insights = {}
        for design in ("D6", "D10"):
            insights[design] = InsightVector(
                design, rng.normal(size=(INSIGHT_DIMS,)), {}
            )
            for _ in range(24):
                bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
                qor = {key: float(rng.uniform(0.5, 2.0))
                       for key in REQUIRED_QOR_KEYS}
                points.append(DataPoint(design, bits, qor))
        return OfflineDataset(points=points, insights=insights, seed=0)

    def test_parallel_iterations_match_sequential(self, archive):
        """A two-worker runtime reproduces the sequential fine-tuning run
        exactly: same survivors, same QoR, same scores, same weights."""
        from repro.core.model import InsightAlignModel
        from repro.core.online import OnlineConfig, OnlineFineTuner

        base = dict(iterations=2, k=2, seed=13, explore_samples=1)

        def run(config):
            model = InsightAlignModel(seed=13)
            tuner = OnlineFineTuner(config)
            try:
                return tuner.run(model, archive, "D6"), model
            finally:
                tuner.close()

        seq_result, seq_model = run(OnlineConfig(**base))
        par_result, par_model = run(
            OnlineConfig(runtime=RuntimeConfig(workers=2, seed=13), **base)
        )

        assert len(seq_result.records) == len(par_result.records)
        for a, b in zip(seq_result.records, par_result.records):
            assert a.recipe_sets == b.recipe_sets
            assert a.qors == b.qors
            assert a.scores == b.scores
            assert a.updated == b.updated
        for key, value in seq_model.state_dict().items():
            np.testing.assert_array_equal(
                value, par_model.state_dict()[key], err_msg=key
            )
