"""White-box routing tests: detour charging, supply model, geometry."""

import pytest

from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.routing.groute import (
    RouteParams,
    _demand_map,
    _net_geometry,
    _supply_per_bin,
    global_route,
)

from conftest import tiny_profile


@pytest.fixture()
def routed_setup():
    profile = tiny_profile("TRI", sim_gate_count=260, utilization=0.85,
                           node="7nm", high_fanout_fraction=0.12)
    netlist = generate_netlist(profile, seed=81)
    placement = place(netlist, PlacerParams(), seed=81)
    return netlist, placement


class TestGeometry:
    def test_net_geometry_covers_routable_nets(self, routed_setup):
        netlist, placement = routed_setup
        boxes, lengths, names = _net_geometry(netlist)
        assert len(boxes) == len(lengths) == len(names)
        # Routable = at least two placed cell pins (driver + cell sink).
        routable = [
            n for n in netlist.nets.values()
            if not n.is_clock and n.wire_length_um > 0
            and n.driver is not None
            and sum(1 for s, p in n.sinks if p >= 0) >= 1
        ]
        assert len(names) == len(routable)

    def test_demand_map_conserves_length(self, routed_setup):
        netlist, placement = routed_setup
        boxes, lengths, _ = _net_geometry(netlist)
        demand = _demand_map(placement.grid, boxes, lengths)
        assert demand.sum() == pytest.approx(lengths.sum(), rel=1e-9)

    def test_supply_proportional_to_track_density(self, routed_setup):
        """At a fixed grid, a finer-pitch node offers more supply per bin."""
        netlist, placement = routed_setup
        fine = _supply_per_bin(netlist, placement.grid)
        coarse_netlist = generate_netlist(
            tiny_profile("TRI45", sim_gate_count=260, node="45nm"), seed=81
        )
        coarse = _supply_per_bin(coarse_netlist, placement.grid)
        pitch_ratio = (coarse_netlist.library.node.track_pitch_um
                       / netlist.library.node.track_pitch_um)
        assert fine == pytest.approx(coarse * pitch_ratio, rel=1e-9)
        assert fine > coarse


class TestDetourCharging:
    def test_detours_lengthen_nets_in_overflow_regions(self, routed_setup):
        netlist, placement = routed_setup
        before = {n.name: n.wire_length_um for n in netlist.nets.values()}
        result = global_route(
            netlist, placement.grid,
            RouteParams(detour_cost=0.5, effort=2.0), seed=81,
        )
        if result.detour_wirelength_um <= 0:
            pytest.skip("design routed without detours")
        grew = [
            n.name for n in netlist.nets.values()
            if not n.is_clock and n.wire_length_um > before[n.name] + 1e-12
        ]
        assert grew

    def test_rc_reannotated_after_detours(self, routed_setup):
        netlist, placement = routed_setup
        global_route(netlist, placement.grid, RouteParams(detour_cost=0.5),
                     seed=81)
        node = netlist.library.node
        for net in netlist.nets.values():
            if net.is_clock:
                continue
            assert net.wire_cap_ff == pytest.approx(
                net.wire_length_um * node.wire_cap_ff_per_um, rel=1e-9
            )

    def test_effort_reduces_residual_overflow(self, routed_setup):
        netlist, placement = routed_setup
        low_nl = generate_netlist(
            tiny_profile("TRI", sim_gate_count=260, utilization=0.85,
                         node="7nm", high_fanout_fraction=0.12), seed=81)
        place(low_nl, PlacerParams(), seed=81)
        low = global_route(low_nl, placement.grid, RouteParams(effort=0.25),
                           seed=81)
        high = global_route(netlist, placement.grid, RouteParams(effort=3.0),
                            seed=81)
        assert high.overflow_total <= low.overflow_total + 1e-9
        assert high.iterations_run > low.iterations_run
