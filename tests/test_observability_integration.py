"""Integration tests: the observability wiring across flow execution,
training, serving — and the determinism guarantee (tracing on/off must be
bit-identical)."""

import numpy as np
import pytest

from repro.core.alignment import AlignmentConfig, AlignmentTrainer
from repro.core.dataset import DataPoint, OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.online import OnlineConfig, OnlineFineTuner
from repro.core.recommender import InsightAlign
from repro.flow.result import FlowResult
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS
from repro.observability import (
    InMemoryExporter,
    MetricsRegistry,
    Tracer,
    get_registry,
    set_registry,
    set_tracer,
)
from repro.runtime.clock import VirtualClock
from repro.runtime.executor import FlowExecutor, RetryPolicy
from repro.runtime.faults import FaultInjector, FaultKind
from repro.serving import RecommendationService, ServingConfig


@pytest.fixture()
def observing():
    """A fresh registry + enabled in-memory tracer, restored afterwards."""
    exporter = InMemoryExporter()
    previous_tracer = set_tracer(Tracer(exporter=exporter))
    previous_registry = set_registry(MetricsRegistry())
    try:
        yield exporter, get_registry()
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)


@pytest.fixture(scope="module")
def archive():
    """A tiny synthetic archive (no real flow runs)."""
    rng = np.random.default_rng(3)
    points = []
    insights = {}
    for design in ("D6", "D10"):
        insights[design] = InsightVector(
            design, rng.normal(size=(INSIGHT_DIMS,)), {}
        )
        for _ in range(24):
            bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
            qor = {key: float(rng.uniform(0.5, 2.0))
                   for key in REQUIRED_QOR_KEYS}
            points.append(DataPoint(design, bits, qor))
    return OfflineDataset(points=points, insights=insights, seed=3)


def fake_flow(design, params, seed=0):
    """Deterministic per-parameter QoR, no simulation."""
    fingerprint = hash((
        round(params.placer.effort, 6),
        round(params.opt.vt_swap_bias, 6),
        round(params.route.effort, 6),
    ))
    base = 1.0 + (abs(fingerprint) % 1000) / 1000.0
    return FlowResult(
        design=str(design),
        qor={key: base * (index + 1) * 0.1
             for index, key in enumerate(REQUIRED_QOR_KEYS)},
    )


def _by_name(exporter):
    grouped = {}
    for record in exporter.records():
        grouped.setdefault(record.name, []).append(record)
    return grouped


class TestFlowExecutorWiring:
    def test_successful_run_emits_span_tree_and_counters(self, observing):
        exporter, registry = observing
        executor = FlowExecutor(flow_fn=fake_flow)
        report = executor.try_execute("D6", seed=4)
        assert report.ok
        spans = _by_name(exporter)
        (attempt,) = spans["flow.attempt"]
        (run,) = spans["flow.run"]
        assert attempt.parent_id == run.span_id
        assert run.attributes["design"] == "D6"
        assert run.status == "ok"
        assert registry.counter("flow_attempts_total").value == 1
        assert registry.counter("flow_runs_total").value_of(status="ok") == 1

    def test_faulty_run_counts_retries_and_failure_types(self, observing):
        exporter, registry = observing
        clock = VirtualClock()
        injector = FaultInjector(
            rate=1.0, seed=5, hang_s=100.0, clock=clock,
            kinds=[FaultKind.CRASH],
        )
        executor = FlowExecutor(
            flow_fn=injector.wrap(fake_flow),
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.5),
            deadline_s=10.0, clock=clock, sleep=clock.sleep, seed=5,
        )
        report = executor.try_execute("D6", seed=4)
        assert not report.ok
        spans = _by_name(exporter)
        assert len(spans["flow.attempt"]) == 3
        (run,) = spans["flow.run"]
        assert run.status == "error"
        assert registry.counter("flow_retries_total").value == 2
        # One failure per failed attempt, labelled by error type.
        failures = registry.counter("flow_failures_total")
        assert failures.value_of(type="FlowCrash") == 3
        assert (
            registry.counter("flow_runs_total").value_of(status="failed") == 1
        )


class TestServingWiring:
    def _service(self, clock=None):
        recommender = InsightAlign(InsightAlignModel(seed=0))
        config = ServingConfig(max_batch_size=4, max_wait_s=0.0,
                               cache_capacity=8)
        if clock is None:
            return RecommendationService(recommender, config)
        return RecommendationService(
            recommender, config, clock=clock, sleep=clock.sleep
        )

    def test_request_spans_cover_admission_to_response(self, observing):
        exporter, _ = observing
        service = self._service()
        rng = np.random.default_rng(0)
        insight = rng.normal(size=(INSIGHT_DIMS,))
        tickets = [service.submit(insight, k=2)]
        service.flush()  # first batch decodes and populates the cache
        tickets += [service.submit(insight, k=2) for _ in range(2)]
        service.flush()  # second batch is served from the cache
        assert all(t.done for t in tickets)
        spans = _by_name(exporter)
        requests = spans["serve.request"]
        assert len(requests) == 3
        assert all(r.attributes["outcome"] == "completed" for r in requests)
        # Identical insights: one decode miss, then two cache hits.
        assert sum(r.attributes["cache_hit"] for r in requests) == 2
        batches = spans["serve.batch"]
        assert len(batches) == 2
        (decode,) = spans["serve.decode"]
        assert decode.parent_id == batches[0].span_id
        assert decode.attributes["rows"] == 1

    def test_expired_request_span_is_marked_error(self, observing):
        exporter, _ = observing
        clock = VirtualClock()
        service = self._service(clock=clock)
        ticket = service.submit(
            np.zeros(INSIGHT_DIMS), k=2, deadline_s=0.5
        )
        clock.advance(1.0)
        service.poll(force=True)
        assert ticket.done
        spans = _by_name(exporter)
        (request,) = spans["serve.request"]
        assert request.attributes["outcome"] == "expired"
        assert request.status == "error"

    def test_stats_shape_is_backward_compatible(self, observing):
        service = self._service()
        service.submit(np.zeros(INSIGHT_DIMS), k=2)
        service.flush()
        stats = service.stats()
        assert stats["requests"]["completed"] == 1
        assert set(stats["cache"]) >= {"hits", "misses", "hit_rate"}
        assert "p99" in stats["latency_s"]


class TestTrainingWiring:
    def test_alignment_emits_epoch_spans_and_metrics(self, observing, archive):
        exporter, registry = observing
        config = AlignmentConfig(epochs=2, pairs_per_design=16,
                                 batch_size=32, seed=3)
        AlignmentTrainer(config).train(archive)
        spans = _by_name(exporter)
        (train,) = spans["align.train"]
        epochs = spans["align.epoch"]
        assert len(epochs) == 2
        assert all(e.parent_id == train.span_id for e in epochs)
        assert registry.counter("alignment_epochs_total").value == 2
        assert registry.gauge("alignment_probe_loss").value != 0
        throughput = registry.histogram("alignment_pairs_per_second")
        assert throughput.count == 2

    def test_online_loop_emits_connected_tree(self, observing, archive):
        exporter, registry = observing
        tuner = OnlineFineTuner(
            # fake_flow carries no stage snapshots, so insight refresh
            # (which re-extracts from the best run) must stay off.
            OnlineConfig(iterations=2, k=3, seed=3, insight_refresh=0.0),
            executor=FlowExecutor(flow_fn=fake_flow),
        )
        model = InsightAlignModel(seed=3)
        result = tuner.run(model, archive, "D6")
        assert len(result.records) == 2
        spans = _by_name(exporter)
        (run,) = spans["online.run"]
        iterations = spans["online.iteration"]
        assert [s.parent_id for s in iterations] == [run.span_id] * 2
        evaluates = spans["online.evaluate"]
        assert len(evaluates) == 2
        # Every flow.run nests under an online.evaluate span.
        evaluate_ids = {s.span_id for s in evaluates}
        assert spans["flow.run"]
        assert all(
            s.parent_id in evaluate_ids for s in spans["flow.run"]
        )
        assert len(spans["online.update"]) == 2
        assert registry.counter("online_iterations_total").value == 2
        assert registry.gauge("online_best_score").value != 0


class TestDeterminism:
    """Tracing must never change a result: spans consume no RNG."""

    def test_alignment_weights_bit_identical(self, observing, archive):
        config = AlignmentConfig(epochs=2, pairs_per_design=16,
                                 batch_size=32, seed=7)
        traced, _ = AlignmentTrainer(config).train(archive)
        # Second run with the default (disabled) tracer and a quiet
        # registry.
        set_tracer(None)
        untraced, _ = AlignmentTrainer(config).train(archive)
        for key, value in traced.state_dict().items():
            np.testing.assert_array_equal(value, untraced.state_dict()[key])

    def test_serving_results_identical(self, observing):
        def decode_once():
            recommender = InsightAlign(InsightAlignModel(seed=1))
            service = RecommendationService(
                recommender,
                ServingConfig(max_batch_size=4, cache_capacity=0),
            )
            rng = np.random.default_rng(2)
            tickets = [
                service.submit(rng.normal(size=(INSIGHT_DIMS,)), k=3)
                for _ in range(4)
            ]
            service.flush()
            return [
                [(r.recipe_set, r.log_prob) for r in t.result()]
                for t in tickets
            ]

        traced = decode_once()
        set_tracer(None)
        untraced = decode_once()
        assert traced == untraced
