"""Tests for STA: graph construction, arrivals, setup/hold checks, slacks."""

import numpy as np
import pytest

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.timing.constraints import TimingConstraints, default_constraints
from repro.timing.graph import build_timing_graph
from repro.timing.sta import run_sta

from conftest import tiny_profile


@pytest.fixture(scope="module")
def design():
    profile = tiny_profile("TT", sim_gate_count=260, logic_depth=7,
                           clock_tightness=1.05)
    netlist = generate_netlist(profile, seed=13)
    place(netlist, PlacerParams(), seed=13)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=13)
    return netlist, tree


class TestConstraints:
    def test_derived_from_clock(self, design):
        netlist, _ = design
        constraints = default_constraints(netlist)
        assert constraints.period_ps == pytest.approx(netlist.clock.period_ps)
        assert constraints.setup_ps > 0
        assert constraints.hold_ps > 0

    def test_no_clock_raises(self, design):
        netlist, _ = design
        saved = netlist.clock
        netlist.clock = None
        try:
            with pytest.raises(FlowError):
                default_constraints(netlist)
        finally:
            netlist.clock = saved

    def test_non_positive_period_raises(self):
        with pytest.raises(FlowError):
            TimingConstraints(
                period_ps=0.0, input_delay_ps=1.0, output_delay_ps=1.0,
                setup_ps=1.0, hold_ps=1.0, clock_uncertainty_ps=0.0,
            )


class TestGraph:
    def test_loads_include_wire_and_pins(self, design):
        netlist, _ = design
        graph = build_timing_graph(netlist)
        for name, load in graph.output_load_ff.items():
            net = netlist.net_of_output(name)
            if net is not None and net.sinks:
                assert load >= net.wire_cap_ff

    def test_delay_scale_uniform(self, design):
        netlist, _ = design
        g1 = build_timing_graph(netlist, delay_scale=1.0)
        g2 = build_timing_graph(netlist, delay_scale=2.0)
        for name in g1.cell_delay_ps:
            assert g2.cell_delay_ps[name] == pytest.approx(
                2.0 * g1.cell_delay_ps[name]
            )

    def test_every_register_has_endpoint_fanin(self, design):
        netlist, _ = design
        graph = build_timing_graph(netlist)
        for reg in netlist.sequential_cells():
            assert graph.endpoint_fanin[reg.name], reg.name

    def test_output_load_of_sinkless_cell(self, design):
        netlist, _ = design
        # A cell whose output goes nowhere reports just the wire cap.
        graph = build_timing_graph(netlist)
        assert all(v >= 0 for v in graph.output_load_ff.values())


class TestSta:
    def test_report_consistency(self, design):
        netlist, tree = design
        report = run_sta(netlist, default_constraints(netlist), tree)
        slacks = np.array(list(report.endpoint_slack_ps.values()))
        assert report.wns_ps == pytest.approx(slacks.min())
        assert report.tns_ps == pytest.approx(np.maximum(0, -slacks).sum())
        assert report.violating_endpoints == int((slacks < 0).sum())
        assert report.endpoint_count == len(slacks)

    def test_tns_nonnegative(self, design):
        netlist, tree = design
        report = run_sta(netlist, default_constraints(netlist), tree)
        assert report.tns_ps >= 0.0
        assert report.hold_tns_ps >= 0.0

    def test_longer_period_monotone_better(self, design):
        netlist, tree = design
        base = default_constraints(netlist)
        relaxed = TimingConstraints(
            period_ps=base.period_ps * 1.5,
            input_delay_ps=base.input_delay_ps,
            output_delay_ps=base.output_delay_ps,
            setup_ps=base.setup_ps,
            hold_ps=base.hold_ps,
            clock_uncertainty_ps=base.clock_uncertainty_ps,
        )
        r_base = run_sta(netlist, base, tree)
        r_relaxed = run_sta(netlist, relaxed, tree)
        assert r_relaxed.wns_ps > r_base.wns_ps
        assert r_relaxed.tns_ps <= r_base.tns_ps

    def test_delay_scale_monotone(self, design):
        netlist, tree = design
        constraints = default_constraints(netlist)
        fast = run_sta(netlist, constraints, tree, delay_scale=0.8)
        slow = run_sta(netlist, constraints, tree, delay_scale=1.2)
        assert fast.wns_ps > slow.wns_ps
        assert fast.tns_ps <= slow.tns_ps

    def test_ideal_clock_no_skew_effects(self, design):
        netlist, _ = design
        report = run_sta(netlist, default_constraints(netlist), None)
        assert report.harmful_skew_paths == 0

    def test_useful_skew_improves_setup_hurts_hold(self, design):
        netlist, tree = design
        constraints = default_constraints(netlist)
        base = run_sta(netlist, constraints, tree)
        violating = [
            e for e, s in base.endpoint_slack_ps.items()
            if s < 0 and not e.startswith("PO:")
        ]
        if not violating:
            pytest.skip("design happens to meet timing")
        target = violating[0]
        tree.useful_skew_ps[target] = 30.0
        try:
            skewed = run_sta(netlist, constraints, tree)
            assert skewed.endpoint_slack_ps[target] == pytest.approx(
                base.endpoint_slack_ps[target] + 30.0
            )
            assert skewed.endpoint_hold_slack_ps[target] == pytest.approx(
                base.endpoint_hold_slack_ps[target] - 30.0
            )
        finally:
            tree.useful_skew_ps.clear()

    def test_critical_path_traced(self, design):
        netlist, tree = design
        report = run_sta(netlist, default_constraints(netlist), tree)
        assert report.critical_path
        # Path starts at a launch register and ends at the capture register.
        assert netlist.cells[report.critical_path[0]].is_sequential
        assert netlist.cells[report.critical_path[-1]].is_sequential

    def test_cell_slacks_lower_bound_endpoints(self, design):
        netlist, tree = design
        report = run_sta(netlist, default_constraints(netlist), tree)
        worst_cell = min(report.cell_slack_ps.values())
        assert worst_cell == pytest.approx(report.wns_ps, abs=1.0) or worst_cell <= report.wns_ps + 1.0

    def test_slack_histogram_shape(self, design):
        netlist, tree = design
        report = run_sta(netlist, default_constraints(netlist), tree)
        counts, edges = report.slack_histogram(bins=8)
        assert counts.sum() == report.endpoint_count
        assert len(edges) == 9

    def test_weak_cell_pct_in_range(self, design):
        netlist, tree = design
        report = run_sta(netlist, default_constraints(netlist), tree)
        assert 0.0 <= report.weak_cell_pct <= 100.0
