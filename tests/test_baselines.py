"""Tests for the baseline tuners (BO, ACO, MF, RL, random)."""

import numpy as np
import pytest

from repro.baselines import (
    AntColonyTuner,
    BayesOptTuner,
    MatrixFactorRecommender,
    PolicyGradientTuner,
    RandomSearchTuner,
)
from repro.baselines.common import CachingObjective, EvalRecord, TuningBudget
from repro.errors import TrainingError


def planted_objective(good=(3, 7, 21, 30), penalty=0.3):
    """Reward overlap with a planted optimum; deterministic."""

    def objective(bits):
        selected = {i for i, b in enumerate(bits) if b}
        return float(
            len(selected & set(good)) - penalty * len(selected - set(good))
        )

    return objective


class TestCommon:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            TuningBudget(evaluations=0)

    def test_record_best(self):
        record = EvalRecord()
        record.add((0, 1), 1.0)
        record.add((1, 0), 3.0)
        assert record.best_score == 3.0
        assert record.best_recipe_set == (1, 0)
        assert np.array_equal(record.best_so_far(), [1.0, 3.0])

    def test_empty_record_raises(self):
        with pytest.raises(ValueError):
            EvalRecord().best_recipe_set

    def test_caching_objective(self):
        calls = CachingObjective(planted_objective())
        bits = tuple([0] * 40)
        calls(bits)
        calls(bits)
        assert calls.calls == 1


class TestTunersOnPlanted:
    @pytest.mark.parametrize("tuner_cls", [
        RandomSearchTuner, BayesOptTuner, AntColonyTuner, PolicyGradientTuner,
    ])
    def test_respects_budget(self, tuner_cls):
        record = tuner_cls(seed=2).tune(
            planted_objective(), TuningBudget(evaluations=15)
        )
        assert len(record) == 15

    @pytest.mark.parametrize("tuner_cls", [
        RandomSearchTuner, BayesOptTuner, AntColonyTuner, PolicyGradientTuner,
    ])
    def test_deterministic(self, tuner_cls):
        r1 = tuner_cls(seed=3).tune(planted_objective(), TuningBudget(20))
        r2 = tuner_cls(seed=3).tune(planted_objective(), TuningBudget(20))
        assert r1.recipe_sets == r2.recipe_sets

    @pytest.mark.parametrize("tuner_cls", [
        RandomSearchTuner, BayesOptTuner, AntColonyTuner, PolicyGradientTuner,
    ])
    def test_no_duplicate_evaluations(self, tuner_cls):
        record = tuner_cls(seed=4).tune(planted_objective(), TuningBudget(30))
        assert len(set(record.recipe_sets)) == len(record.recipe_sets)

    def test_bo_beats_random(self):
        objective = planted_objective()
        budget = TuningBudget(evaluations=40)
        bo = BayesOptTuner(seed=5).tune(objective, budget)
        rand = RandomSearchTuner(seed=5).tune(objective, budget)
        assert bo.best_score >= rand.best_score

    def test_rl_learns_direction(self):
        objective = planted_objective(good=(0, 1), penalty=0.5)
        record = PolicyGradientTuner(seed=6).tune(objective, TuningBudget(60))
        # Later proposals should concentrate on the planted bits.
        late = record.recipe_sets[-10:]
        hits = sum(bits[0] + bits[1] for bits in late)
        early = record.recipe_sets[:10]
        early_hits = sum(bits[0] + bits[1] for bits in early)
        assert hits >= early_hits

    def test_aco_validation(self):
        with pytest.raises(ValueError):
            AntColonyTuner(evaporation=1.5)


class TestMatrixFactor:
    def test_fit_predict_recommend(self, mini_dataset):
        mf = MatrixFactorRecommender(iterations=8, seed=1).fit(mini_dataset)
        score = mf.predict("D6", tuple([0] * 40))
        assert np.isfinite(score)
        recs = mf.recommend("D6", k=4, candidate_pool=100)
        assert len(recs) == 4
        assert all(len(r) == 40 for r in recs)

    def test_unseen_design_falls_back(self, mini_dataset):
        mf = MatrixFactorRecommender(iterations=5, seed=1).fit(mini_dataset)
        score = mf.predict("D999", tuple([0] * 40))
        assert np.isfinite(score)

    def test_predict_before_fit_raises(self):
        with pytest.raises(TrainingError):
            MatrixFactorRecommender().predict("D6", tuple([0] * 40))

    def test_empty_dataset_raises(self):
        from repro.core.dataset import OfflineDataset

        with pytest.raises(TrainingError):
            MatrixFactorRecommender().fit(OfflineDataset(points=[], insights={}))

    def test_correlation_with_truth(self, mini_dataset):
        """Predicted scores correlate positively with actual on seen designs."""
        mf = MatrixFactorRecommender(iterations=20, seed=1).fit(mini_dataset)
        truths = []
        preds = []
        for design in mini_dataset.designs():
            scores = mini_dataset.scores_for(design)
            for point, score in zip(mini_dataset.by_design(design), scores):
                truths.append(score)
                preds.append(mf.predict(design, point.recipe_set))
        corr = np.corrcoef(truths, preds)[0, 1]
        assert corr > 0.2
