"""Tests for power analysis, global routing, and DRC estimation."""

import pytest

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.power.analysis import analyze_power
from repro.routing.drc import estimate_drcs
from repro.routing.groute import RouteParams, RoutingResult, global_route

from conftest import tiny_profile


@pytest.fixture(scope="module")
def routed_design():
    profile = tiny_profile("TR", sim_gate_count=300, utilization=0.8,
                           high_fanout_fraction=0.1)
    netlist = generate_netlist(profile, seed=21)
    placement = place(netlist, PlacerParams(), seed=21)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=21)
    return netlist, placement, tree


class TestPower:
    def test_breakdown_positive(self, routed_design):
        netlist, _, tree = routed_design
        report = analyze_power(netlist, tree)
        assert report.leakage_mw > 0
        assert report.combinational_mw > 0
        assert report.sequential_mw > 0
        assert report.clock_mw > 0
        assert report.total_mw == pytest.approx(
            report.leakage_mw + report.dynamic_mw
        )

    def test_leakage_bias_scales_leakage_only(self, routed_design):
        netlist, _, tree = routed_design
        base = analyze_power(netlist, tree, leakage_bias=1.0)
        biased = analyze_power(netlist, tree, leakage_bias=2.0)
        assert biased.leakage_mw == pytest.approx(2.0 * base.leakage_mw)
        assert biased.combinational_mw == pytest.approx(base.combinational_mw)

    def test_clock_gating_reduces_sequential_and_clock(self, routed_design):
        netlist, _, tree = routed_design
        off = analyze_power(netlist, tree, clock_gating_efficiency=0.0)
        on = analyze_power(netlist, tree, clock_gating_efficiency=0.8)
        assert on.sequential_mw < off.sequential_mw
        assert on.clock_mw < off.clock_mw
        assert on.combinational_mw == pytest.approx(off.combinational_mw)

    def test_fractions_in_unit_range(self, routed_design):
        netlist, _, tree = routed_design
        report = analyze_power(netlist, tree)
        assert 0.0 < report.leakage_fraction < 1.0
        assert 0.0 < report.sequential_fraction < 1.0

    def test_no_clock_raises(self, routed_design):
        netlist, _, tree = routed_design
        saved = netlist.clock
        netlist.clock = None
        try:
            with pytest.raises(FlowError):
                analyze_power(netlist, tree)
        finally:
            netlist.clock = saved


class TestRouting:
    def test_route_annotates_parasitics(self, routed_design):
        netlist, placement, _ = routed_design
        before = {n.name: n.wire_length_um for n in netlist.nets.values()}
        result = global_route(netlist, placement.grid, RouteParams(), seed=1)
        assert result.routed_wirelength_um > 0
        after = {n.name: n.wire_length_um for n in netlist.nets.values()}
        # Routing may lengthen nets (detours) but never shortens them.
        for name in before:
            assert after[name] >= before[name] - 1e-9

    def test_diffusion_reduces_overflow(self, routed_design):
        netlist, placement, _ = routed_design
        result = global_route(netlist, placement.grid, RouteParams(effort=2.0), seed=1)
        assert result.overflow_total <= result.overflow_initial + 1e-9

    def test_cheap_detours_cut_overflow(self):
        profile = tiny_profile("TD", sim_gate_count=400, utilization=0.9,
                               high_fanout_fraction=0.15, node="7nm")
        res = {}
        for label, cost in (("cheap", 0.4), ("costly", 2.5)):
            netlist = generate_netlist(profile, seed=3)
            placement = place(netlist, PlacerParams(), seed=3)
            res[label] = global_route(
                netlist, placement.grid, RouteParams(detour_cost=cost), seed=3
            )
        assert res["cheap"].overflow_total <= res["costly"].overflow_total + 1e-9

    def test_layer_promotion_speeds_critical_nets(self, routed_design):
        profile = tiny_profile("TP2", sim_gate_count=300)
        netlist = generate_netlist(profile, seed=5)
        placement = place(netlist, PlacerParams(), seed=5)
        target = next(
            n.name for n in netlist.nets.values()
            if not n.is_clock and n.wire_length_um > 0
        )
        before = netlist.nets[target].wire_delay_ps
        global_route(
            netlist, placement.grid,
            RouteParams(layer_promotion=0.3),
            critical_nets=[target], seed=5,
        )
        assert netlist.nets[target].wire_delay_ps < before or before == 0.0

    def test_congestion_summary_present(self, routed_design):
        netlist, placement, _ = routed_design
        result = global_route(netlist, placement.grid, RouteParams(), seed=1)
        assert {"peak", "mean", "p95"} <= set(result.congestion)

    def test_detour_ratio_bounds(self, routed_design):
        netlist, placement, _ = routed_design
        result = global_route(netlist, placement.grid, RouteParams(), seed=1)
        assert 0.0 <= result.detour_ratio < 1.0


class TestDrc:
    def test_zero_overflow_low_density_is_clean(self):
        routing = RoutingResult(
            overflow_total=0.0, overflow_initial=0.0,
            detour_wirelength_um=0.0, routed_wirelength_um=100.0,
        )
        assert estimate_drcs(routing, peak_density=0.7, cell_count=1000) == 0

    def test_overflow_drives_drcs(self):
        routing = RoutingResult(
            overflow_total=200.0, overflow_initial=300.0,
            detour_wirelength_um=0.0, routed_wirelength_um=100.0,
        )
        assert estimate_drcs(routing, peak_density=0.7, cell_count=1000) > 0

    def test_superlinear_in_overflow(self):
        def drcs(overflow):
            routing = RoutingResult(
                overflow_total=overflow, overflow_initial=overflow,
                detour_wirelength_um=0.0, routed_wirelength_um=100.0,
            )
            return estimate_drcs(routing, 0.5, 1000)
        assert drcs(400.0) > 2 * drcs(200.0)

    def test_bad_cell_count_raises(self):
        routing = RoutingResult(0.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            estimate_drcs(routing, 0.5, 0)

    def test_density_term(self):
        routing = RoutingResult(0.0, 0.0, 0.0, 1.0)
        dense = estimate_drcs(routing, peak_density=1.6, cell_count=5000)
        sparse = estimate_drcs(routing, peak_density=0.8, cell_count=5000)
        assert dense > sparse
