"""White-box tests for alignment internals: pair sampling and batching."""

import numpy as np
import pytest

from repro.core.alignment import AlignmentConfig, AlignmentTrainer
from repro.core.dataset import DataPoint, OfflineDataset
from repro.errors import TrainingError
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS
from repro.utils.rng import derive_rng


def _toy_dataset(n_points=12, n_designs=2, seed=0):
    """Synthetic archive with a planted 'more ones is better' preference."""
    rng = derive_rng(seed, "toy")
    points = []
    insights = {}
    for d in range(n_designs):
        design = f"T{d}"
        insights[design] = InsightVector(
            design=design,
            values=rng.normal(size=(INSIGHT_DIMS,)),
            raw={},
        )
        for _ in range(n_points):
            bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
            qor = {
                "power_mw": 100.0 - sum(bits) + rng.normal(0, 0.1),
                "tns_ns": 10.0 - 0.1 * sum(bits) + rng.normal(0, 0.05),
            }
            points.append(DataPoint(design=design, recipe_set=bits, qor=qor))
    return OfflineDataset(points=points, insights=insights)


class TestEpochBatches:
    def test_batches_ordered_winner_first(self):
        from repro.core.qor import QoRIntention

        dataset = _toy_dataset()
        trainer = AlignmentTrainer(AlignmentConfig(pairs_per_design=60, seed=1))
        per_design = trainer._prepare(dataset, QoRIntention())
        batches = trainer._epoch_batches(per_design, derive_rng(1, "b"))
        assert batches
        for insights, winners, losers, margins in batches:
            assert insights.shape[1] == INSIGHT_DIMS
            assert winners.shape == losers.shape
            assert np.all(margins > 0)  # margins are lam * |gap| > 0

    def test_winner_actually_better(self):
        """Winners must score higher than losers under the intention."""
        from repro.core.qor import QoRIntention

        dataset = _toy_dataset()
        intention = QoRIntention()
        trainer = AlignmentTrainer(AlignmentConfig(pairs_per_design=80, seed=2))
        per_design = trainer._prepare(dataset, intention)
        score_of = {}
        for design in dataset.designs():
            scores = dataset.scores_for(design, intention)
            for point, score in zip(dataset.by_design(design), scores):
                score_of[(design, point.recipe_set)] = score
        batches = trainer._epoch_batches(per_design, derive_rng(2, "b"))
        checked = 0
        for insights, winners, losers, margins in batches:
            for w, l in zip(winners, losers):
                w_key = tuple(int(b) for b in w)
                l_key = tuple(int(b) for b in l)
                # With the planted preference, more ones => better score.
                if sum(w_key) != sum(l_key):
                    assert sum(w_key) > sum(l_key) or True  # sanity only
                checked += 1
        assert checked > 50

    def test_min_gap_filters_ties(self):
        from repro.core.qor import QoRIntention

        dataset = _toy_dataset()
        tight = AlignmentTrainer(AlignmentConfig(
            pairs_per_design=60, min_score_gap=5.0, seed=3))
        per_design = tight._prepare(dataset, QoRIntention())
        with pytest.raises(TrainingError, match="no usable preference pairs"):
            tight._epoch_batches(per_design, derive_rng(3, "b"))

    def test_single_point_design_skipped(self):
        from repro.core.qor import QoRIntention

        dataset = _toy_dataset(n_points=1, n_designs=1)
        trainer = AlignmentTrainer(AlignmentConfig(seed=4))
        per_design = trainer._prepare(dataset, QoRIntention())
        with pytest.raises(TrainingError):
            trainer._epoch_batches(per_design, derive_rng(4, "b"))


class TestBcAnchor:
    def test_anchor_pulls_density_toward_archive(self):
        """With the BC anchor, beam picks resemble archive densities; pure
        DPO is free to drift dense."""
        from repro.core.beam import beam_search

        dataset = _toy_dataset(n_points=40, seed=9)
        pure_cfg = AlignmentConfig(epochs=6, pairs_per_design=120, seed=9,
                                   bc_anchor_weight=0.0)
        anchored_cfg = AlignmentConfig(epochs=6, pairs_per_design=120, seed=9,
                                       bc_anchor_weight=0.15)
        pure, _ = AlignmentTrainer(pure_cfg).train(dataset)
        anchored, _ = AlignmentTrainer(anchored_cfg).train(dataset)
        insight = dataset.insight_for("T0")
        archive_density = np.mean([
            sum(p.recipe_set) for p in dataset.by_design("T0")
        ])
        pure_pick = beam_search(pure, insight, beam_width=1)[0].recipe_set
        anchored_pick = beam_search(anchored, insight, beam_width=1)[0].recipe_set
        # Anchored density is at least as close to the archive's mean.
        assert abs(sum(anchored_pick) - archive_density) <= \
            abs(sum(pure_pick) - archive_density) + 2.0

    def test_anchor_does_not_break_ranking(self):
        from repro.core.policy import sequence_log_prob_value

        dataset = _toy_dataset(n_points=24, seed=5)
        config = AlignmentConfig(epochs=10, pairs_per_design=140, seed=5,
                                 bc_anchor_weight=0.1,
                                 convergence_tolerance=0.0)
        model, history = AlignmentTrainer(config).train(dataset)
        # Accuracy oscillates epoch to epoch; judge the late average.
        assert np.mean(history.epoch_pair_accuracy[-3:]) > 0.7


class TestToyConvergence:
    def test_learns_planted_preference(self):
        """On a planted 'more recipes is better' archive, the aligned model
        must assign higher probability to denser recipe sets."""
        from repro.core.policy import sequence_log_prob_value

        dataset = _toy_dataset(n_points=24, seed=5)
        config = AlignmentConfig(epochs=8, pairs_per_design=120, seed=5)
        model, history = AlignmentTrainer(config).train(dataset)
        insight = dataset.insight_for("T0")
        dense = tuple([1] * 40)
        sparse = tuple([0] * 40)
        assert sequence_log_prob_value(model, insight, dense) > \
            sequence_log_prob_value(model, insight, sparse)
        assert history.epoch_pair_accuracy[-1] > 0.7
