"""FlowSession / RuntimeConfig: validation, shims, and the one-door rule.

Three concerns live here:

1. ``RuntimeConfig`` rejects every malformed field with a typed
   ``RuntimeConfigError`` before any flow runs, and ``FlowSession``
   rejects contradictory compositions (injected executor + pool/cache).
2. The deprecation shims on the old per-call-site keywords still work,
   still produce identical results, and warn with a message naming
   ``RuntimeConfig`` (the test suite elsewhere turns exactly those
   warnings into errors — see ``pyproject.toml``).
3. The refactor's structural invariant: nothing outside
   ``repro/runtime/`` constructs ``FlowExecutor`` / ``ParallelFlowExecutor``
   directly any more — every consumer goes through a session.
"""

import pathlib
import re

import pytest

from conftest import tiny_profile
from repro.errors import FlowCrash, FlowError, RuntimeConfigError
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.runner import (
    netlist_cache_info,
    netlist_cache_limit,
    run_flow,
)
from repro.observability import (
    InMemoryExporter,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowExecutor,
    FlowJob,
    FlowSession,
    RetryPolicy,
    RuntimeConfig,
)
from test_parallel_executor import toy_flow

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRuntimeConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(workers=0),
        dict(workers=-2),
        dict(workers=1.5),
        dict(workers=True),
        dict(workers="4"),
        dict(qor_cache_path=123),
        dict(policy="retry-three-times"),
        dict(deadline_s=0.0),
        dict(deadline_s=-5.0),
        dict(min_snapshots=-1),
        dict(min_snapshots=2.5),
        dict(seed="zero"),
        dict(seed=False),
        dict(fault_plan="crash-everything"),
        dict(trace="yes"),
        dict(start_method="quantum"),
    ])
    def test_rejects_bad_fields(self, bad):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(**bad)

    def test_defaults_are_valid_and_frozen(self):
        config = RuntimeConfig()
        assert config.workers == 1
        assert config.trace is True
        with pytest.raises(AttributeError):
            config.workers = 2

    def test_replace_revalidates(self):
        config = RuntimeConfig(workers=2)
        assert config.replace(workers=4).workers == 4
        with pytest.raises(RuntimeConfigError):
            config.replace(workers=0)

    def test_accepts_full_composition(self):
        config = RuntimeConfig(
            workers=2,
            qor_cache_path="/tmp/qor",
            policy=RetryPolicy(max_attempts=2),
            deadline_s=60.0,
            min_snapshots=3,
            seed=7,
            fault_plan=FaultPlan(rate=0.5),
            trace=False,
        )
        assert config.policy.max_attempts == 2


class TestFlowSessionComposition:
    def test_rejects_non_config(self):
        with pytest.raises(RuntimeConfigError):
            FlowSession({"workers": 2})

    def test_injected_executor_conflicts(self):
        executor = FlowExecutor(flow_fn=toy_flow)
        with pytest.raises(RuntimeConfigError):
            FlowSession(
                RuntimeConfig(workers=2), executor=executor
            )
        with pytest.raises(RuntimeConfigError):
            FlowSession(
                RuntimeConfig(qor_cache_path="/tmp/qor"), executor=executor
            )
        with pytest.raises(RuntimeConfigError):
            FlowSession(
                RuntimeConfig(fault_plan=FaultPlan(rate=1.0)),
                executor=executor,
            )
        with pytest.raises(RuntimeConfigError):
            FlowSession(
                RuntimeConfig(), flow_fn=toy_flow, executor=executor
            )

    def test_single_job_conveniences(self):
        profile = tiny_profile()
        with FlowSession(RuntimeConfig()) as session:
            outcome = session.run(profile, FlowParameters(), seed=3)
            assert outcome.ok and not outcome.cached
            result = session.execute(profile, FlowParameters(), seed=3)
        direct = run_flow(profile, FlowParameters(), seed=3)
        assert outcome.result.qor == direct.qor
        assert result.qor == direct.qor

    def test_evaluate_accepts_tuples_and_preserves_order(self):
        profile = tiny_profile()
        jobs = [
            (profile, FlowParameters(opt=OptParams(vt_swap_bias=b)), 3)
            for b in (1.1, 0.9, 1.0)
        ]
        with FlowSession(RuntimeConfig()) as session:
            outcomes = session.evaluate(jobs)
        for (design, params, seed), outcome in zip(jobs, outcomes):
            assert outcome.result.qor == run_flow(design, params, seed=seed).qor

    def test_evaluate_strict_raises_first_failure_in_submission_order(self):
        # rate=1.0 crashes every job; the raised error must belong to job 0.
        plan = FaultPlan(rate=1.0, kinds=(FaultKind.CRASH,), seed=5)
        config = RuntimeConfig(
            workers=1, fault_plan=plan, policy=RetryPolicy(max_attempts=1)
        )
        with FlowSession(config, flow_fn=toy_flow) as session:
            jobs = [
                FlowJob("T", FlowParameters(opt=OptParams(vt_swap_bias=b)), 0)
                for b in (1.0, 1.1)
            ]
            outcomes = session.evaluate(jobs)
            assert all(not o.ok for o in outcomes)
            with pytest.raises(FlowCrash):
                session.evaluate_strict(jobs)

    def test_stats_shape(self):
        profile = tiny_profile()
        with FlowSession(RuntimeConfig()) as session:
            session.run(profile, FlowParameters(), seed=1)
            stats = session.stats()
        assert stats["workers"] == 1
        assert stats["jobs_run"] == 1
        assert stats["trace"] is True
        injected = FlowSession(RuntimeConfig(), executor=FlowExecutor())
        assert injected.stats()["injected"] is True
        injected.close()  # no-op: nothing to release


class TestTraceToggle:
    def _spans_during(self, config):
        profile = tiny_profile()
        exporter = InMemoryExporter()
        previous = set_tracer(Tracer(exporter=exporter))
        try:
            with FlowSession(config) as session:
                session.run(profile, FlowParameters(), seed=2)
        finally:
            set_tracer(previous)
        return exporter.records()

    def test_trace_on_emits_flow_spans(self):
        spans = self._spans_during(RuntimeConfig(trace=True))
        assert {s.name for s in spans} >= {"flow.run", "flow.batch"}

    def test_trace_off_is_silent_and_restores_tracer(self):
        before = get_tracer()
        assert self._spans_during(RuntimeConfig(trace=False)) == []
        assert get_tracer() is before

    def test_results_identical_either_way(self):
        profile = tiny_profile()
        outcomes = []
        for trace in (True, False):
            with FlowSession(RuntimeConfig(trace=trace)) as session:
                outcomes.append(session.execute(profile, FlowParameters(), 4))
        assert outcomes[0].qor == outcomes[1].qor


class TestDeprecationShims:
    """Old keyword spellings warn (naming RuntimeConfig) but still work."""

    def test_online_config_flow_workers(self):
        from repro.core.online import OnlineConfig

        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            config = OnlineConfig(flow_workers=2)
        assert config.resolved_runtime().workers == 2

    def test_online_config_qor_cache_path(self, tmp_path):
        from repro.core.online import OnlineConfig

        path = str(tmp_path / "qor")
        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            config = OnlineConfig(qor_cache_path=path)
        assert config.resolved_runtime().qor_cache_path == path

    def test_online_config_rejects_both_spellings(self):
        from repro.core.online import OnlineConfig
        from repro.errors import TrainingError

        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            with pytest.raises(TrainingError):
                OnlineConfig(flow_workers=2, runtime=RuntimeConfig())

    def test_build_offline_dataset_processes(self):
        from repro.core.dataset import build_offline_dataset

        kwargs = dict(designs=["D6"], sets_per_design=2, seed=5)
        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            legacy = build_offline_dataset(processes=1, **kwargs)
        current = build_offline_dataset(
            runtime=RuntimeConfig(workers=1), **kwargs
        )
        assert [(p.design, p.recipe_set, p.qor) for p in legacy.points] == \
            [(p.design, p.recipe_set, p.qor) for p in current.points]

    def test_build_offline_dataset_rejects_both_spellings(self):
        from repro.core.dataset import build_offline_dataset
        from repro.errors import TrainingError

        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            with pytest.raises(TrainingError):
                build_offline_dataset(
                    designs=["D6"], sets_per_design=2, processes=1,
                    runtime=RuntimeConfig(),
                )

    def test_sweep_workers_and_cache(self, tmp_path):
        from repro.flow.sweep import sweep

        profile = tiny_profile()
        axes = {"opt.vt_swap_bias": [0.9, 1.1]}
        current = sweep(profile, axes, seed=4)
        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            legacy = sweep(
                profile, axes, seed=4, workers=1,
                qor_cache_path=str(tmp_path / "qor"),
            )
        assert legacy.qors == current.qors
        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            with pytest.raises(FlowError):
                sweep(profile, axes, seed=4, workers=2,
                      runtime=RuntimeConfig())

    def test_parallel_flow_objective_workers(self):
        from repro.baselines.common import ParallelFlowObjective

        profile = tiny_profile()
        with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
            objective = ParallelFlowObjective(
                profile, lambda qor: -qor["power_mw"], workers=1
            )
        try:
            score = objective((0,) * 40)
        finally:
            objective.close()
        direct = run_flow(profile, FlowParameters(), seed=0)
        assert score == -direct.qor["power_mw"]


class TestNetlistCacheLimit:
    def test_restores_previous_limit(self):
        before = netlist_cache_info()["limit"]
        with netlist_cache_limit(before + 7):
            assert netlist_cache_info()["limit"] == before + 7
        assert netlist_cache_info()["limit"] == before

    def test_restores_on_exception(self):
        before = netlist_cache_info()["limit"]
        with pytest.raises(RuntimeError):
            with netlist_cache_limit(before + 3):
                raise RuntimeError("boom")
        assert netlist_cache_info()["limit"] == before

    def test_rejects_bad_limit(self):
        before = netlist_cache_info()["limit"]
        with pytest.raises(ValueError):
            with netlist_cache_limit(0):
                pass
        assert netlist_cache_info()["limit"] == before


class TestOneDoorRule:
    """No module outside repro/runtime builds the executors directly."""

    # Matches constructor calls like ``FlowExecutor(`` but not the name
    # alone (imports, type hints, isinstance checks are fine).
    CONSTRUCT = re.compile(r"\b(?:Parallel)?FlowExecutor\s*\(")

    def test_executors_only_constructed_inside_runtime(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if "runtime" in path.relative_to(SRC_ROOT).parts:
                continue
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if self.CONSTRUCT.search(line):
                    offenders.append(f"{path}:{number}: {line.strip()}")
        assert not offenders, (
            "flow executors must be composed via repro.runtime.FlowSession; "
            "direct construction found in:\n" + "\n".join(offenders)
        )
