"""Tests for Monte-Carlo statistical timing."""

import numpy as np
import pytest

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.timing.constraints import default_constraints
from repro.timing.sta import run_sta
from repro.timing.statistical import run_statistical_sta

from conftest import tiny_profile


@pytest.fixture(scope="module")
def mc_design():
    profile = tiny_profile("TMC", sim_gate_count=220, clock_tightness=1.15)
    netlist = generate_netlist(profile, seed=61)
    place(netlist, PlacerParams(), seed=61)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=61)
    constraints = default_constraints(netlist)
    return netlist, tree, constraints


class TestStatisticalSta:
    def test_zero_sigma_matches_nominal(self, mc_design):
        netlist, tree, constraints = mc_design
        mc = run_statistical_sta(netlist, constraints, tree,
                                 samples=4, sigma=0.0)
        nominal = run_sta(netlist, constraints, tree)
        reg_wns = min(
            s for e, s in nominal.endpoint_slack_ps.items()
            if not e.startswith("PO:")
        )
        np.testing.assert_allclose(mc.wns_samples_ps, reg_wns, atol=1e-9)

    def test_mean_wns_near_nominal(self, mc_design):
        """Mean-corrected variation keeps the average close to nominal.

        (The max over paths is convex, so MC WNS is biased slightly worse
        than nominal — that bias *is* the OCV effect being modeled.)"""
        netlist, tree, constraints = mc_design
        mc = run_statistical_sta(netlist, constraints, tree,
                                 samples=400, sigma=0.05, seed=1)
        nominal = run_sta(netlist, constraints, tree)
        reg_wns = min(
            s for e, s in nominal.endpoint_slack_ps.items()
            if not e.startswith("PO:")
        )
        assert mc.mean_wns_ps <= reg_wns + 1e-9
        assert abs(mc.mean_wns_ps - reg_wns) < 0.15 * constraints.period_ps

    def test_quantiles_ordered(self, mc_design):
        netlist, tree, constraints = mc_design
        mc = run_statistical_sta(netlist, constraints, tree,
                                 samples=300, sigma=0.06, seed=2)
        assert mc.wns_quantile_ps(0.01) <= mc.wns_quantile_ps(0.5)
        assert mc.wns_quantile_ps(0.5) <= mc.wns_quantile_ps(0.99)

    def test_more_variation_more_spread(self, mc_design):
        netlist, tree, constraints = mc_design
        tight = run_statistical_sta(netlist, constraints, tree,
                                    samples=300, sigma=0.02, seed=3)
        loose = run_statistical_sta(netlist, constraints, tree,
                                    samples=300, sigma=0.10, seed=3)
        assert loose.wns_samples_ps.std() > tight.wns_samples_ps.std()

    def test_yield_and_derate(self, mc_design):
        netlist, tree, constraints = mc_design
        mc = run_statistical_sta(netlist, constraints, tree,
                                 samples=300, sigma=0.05, seed=4)
        assert 0.0 <= mc.yield_fraction <= 1.0
        nominal = run_sta(netlist, constraints, tree)
        derate = mc.implied_derate(nominal.wns_ps, constraints.period_ps)
        assert derate >= 0.0

    def test_deterministic_given_seed(self, mc_design):
        netlist, tree, constraints = mc_design
        a = run_statistical_sta(netlist, constraints, tree,
                                samples=50, sigma=0.05, seed=9)
        b = run_statistical_sta(netlist, constraints, tree,
                                samples=50, sigma=0.05, seed=9)
        np.testing.assert_array_equal(a.wns_samples_ps, b.wns_samples_ps)

    def test_bad_args_rejected(self, mc_design):
        netlist, tree, constraints = mc_design
        with pytest.raises(FlowError):
            run_statistical_sta(netlist, constraints, tree, samples=0)
        with pytest.raises(FlowError):
            run_statistical_sta(netlist, constraints, tree, sigma=-0.1)

    def test_tns_consistent_with_wns(self, mc_design):
        netlist, tree, constraints = mc_design
        mc = run_statistical_sta(netlist, constraints, tree,
                                 samples=100, sigma=0.05, seed=5)
        # Any sample with negative WNS must have positive TNS and vice versa.
        failing = mc.wns_samples_ps < 0
        assert np.all(mc.tns_samples_ps[failing] > 0)
        assert np.all(mc.tns_samples_ps[~failing] == 0.0)
