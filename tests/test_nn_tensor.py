"""Autograd engine tests: finite-difference checks on every operation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor


def numeric_gradient(fn, x0, eps=1e-6):
    """Central finite differences of a scalar-valued fn at x0."""
    grad = np.zeros_like(x0)
    flat = grad.ravel()
    for index in range(x0.size):
        plus = x0.copy().ravel()
        minus = x0.copy().ravel()
        plus[index] += eps
        minus[index] -= eps
        flat[index] = (
            fn(plus.reshape(x0.shape)) - fn(minus.reshape(x0.shape))
        ) / (2 * eps)
    return grad


def check_grad(build, x0, atol=1e-6):
    """Compare autograd and numeric gradients for scalar loss ``build``."""
    x = Tensor(x0.copy(), requires_grad=True)
    loss = build(x)
    loss.backward()
    numeric = numeric_gradient(lambda a: build(Tensor(a)).item(), x0)
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, numeric, atol=atol)


RNG = np.random.default_rng(0)
X23 = RNG.normal(size=(2, 3))
W34 = Tensor(RNG.normal(size=(3, 4)))
C23 = Tensor(RNG.normal(size=(2, 3)))


class TestElementwiseGrads:
    def test_add(self):
        check_grad(lambda x: (x + C23).sum(), X23)

    def test_mul(self):
        check_grad(lambda x: (x * C23).sum(), X23)

    def test_sub_rsub(self):
        check_grad(lambda x: (1.0 - x).sum(), X23)

    def test_div(self):
        check_grad(lambda x: (x / (C23 + 10.0)).sum(), X23)

    def test_rdiv(self):
        check_grad(lambda x: (1.0 / (x + 10.0)).sum(), X23)

    def test_pow(self):
        check_grad(lambda x: (x ** 2).sum(), X23)

    def test_neg(self):
        check_grad(lambda x: (-x).sum(), X23)

    def test_exp(self):
        check_grad(lambda x: x.exp().sum(), X23)

    def test_log(self):
        check_grad(lambda x: (x + 10.0).log().sum(), X23)

    def test_tanh(self):
        check_grad(lambda x: x.tanh().sum(), X23)

    def test_sigmoid(self):
        check_grad(lambda x: (x.sigmoid() * C23).sum(), X23)

    def test_relu(self):
        check_grad(lambda x: (x + 0.1).relu().sum(), X23)

    def test_clip_min(self):
        check_grad(lambda x: x.clip_min(0.2).sum(), X23)

    def test_log_sigmoid(self):
        check_grad(lambda x: x.log_sigmoid().sum(), X23)

    def test_softmax(self):
        check_grad(lambda x: (x.softmax(axis=-1) * C23).sum(), X23)


class TestShapeGrads:
    def test_matmul(self):
        check_grad(lambda x: ((x @ W34).tanh()).sum(), X23)

    def test_batched_matmul(self):
        a0 = RNG.normal(size=(2, 3, 4))
        b = Tensor(RNG.normal(size=(2, 4, 3)))
        check_grad(lambda x: ((x @ b) ** 2).sum(), a0)

    def test_broadcast_add(self):
        bias = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        x = Tensor(X23.copy())
        loss = (x + bias).sum()
        loss.backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 2.0))

    def test_reshape(self):
        check_grad(lambda x: (x.reshape(6) * Tensor(np.arange(6.0))).sum(), X23)

    def test_transpose(self):
        check_grad(lambda x: (x.transpose() @ C23).sum(), X23)

    def test_getitem(self):
        check_grad(lambda x: (x[0] * Tensor(np.ones(3))).sum(), X23)

    def test_take_rows(self):
        indices = np.array([0, 1, 1, 0])
        check_grad(lambda x: (x.take_rows(indices) ** 2).sum(), X23)

    def test_concat(self):
        a0 = RNG.normal(size=(2, 2))

        def build(x):
            other = Tensor(np.ones((2, 2)))
            return (Tensor.concat([x, other], axis=1) ** 2).sum()

        check_grad(build, a0)

    def test_stack(self):
        a0 = RNG.normal(size=(2, 2))

        def build(x):
            other = Tensor(np.ones((2, 2)))
            return (Tensor.stack([x, other], axis=0) ** 2).sum()

        check_grad(build, a0)

    def test_masked_fill(self):
        mask = np.array([[True, False, False], [False, True, False]])
        check_grad(lambda x: (x.masked_fill(mask, -5.0) * C23).sum(), X23)

    def test_mean_axis(self):
        check_grad(lambda x: (x.mean(axis=0) * Tensor(np.ones(3))).sum(), X23)

    def test_sum_keepdims(self):
        check_grad(lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(), X23)


class TestGraphMechanics:
    def test_backward_on_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="non-scalar"):
            (x * 2).backward()

    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array(3.0), requires_grad=True)
        loss = x * x + x  # dx = 2x + 1 = 7
        loss.backward()
        assert x.grad == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        loss = a * b  # 12 x^2 -> d = 24x = 48
        loss.backward()
        assert x.grad == pytest.approx(48.0)

    def test_zero_grad(self):
        x = Tensor(np.array(1.0), requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_breaks_graph(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        y = (x * 3.0).detach()
        loss = y * x
        loss.backward()
        assert x.grad == pytest.approx(6.0)  # y treated as constant

    def test_no_grad_tensor_untouched(self):
        x = Tensor(np.array(2.0))
        y = Tensor(np.array(3.0), requires_grad=True)
        (x * y).backward()
        assert x.grad is None
        assert y.grad == pytest.approx(2.0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-3, 3), min_size=4, max_size=4),
    )
    def test_composite_expression_grads(self, values):
        x0 = np.array(values).reshape(2, 2)

        def build(x):
            return ((x.tanh() @ Tensor(np.eye(2))).sigmoid() ** 2).sum()

        check_grad(build, x0, atol=1e-5)
