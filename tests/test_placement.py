"""Tests for the placement engine: grid, congestion maps, placer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.generator import generate_netlist
from repro.placement.congestion import (
    classify_congestion,
    congestion_overflow,
    congestion_summary,
    net_bounding_boxes,
    rudy_map,
    rudy_map_fast,
)
from repro.placement.grid import PlacementGrid
from repro.placement.placer import PlacerParams, place
from repro.utils.rng import derive_rng

from conftest import tiny_profile


@pytest.fixture()
def grid():
    return PlacementGrid.for_die(100.0, 100.0, blockages=[], target_bins=10)


class TestGrid:
    def test_bin_geometry(self, grid):
        assert grid.bins_x == 10 and grid.bins_y == 10
        assert grid.bin_width_um == pytest.approx(10.0)
        assert grid.bin_area_um2 == pytest.approx(100.0)

    def test_bin_indices_clipped(self, grid):
        rows, cols = grid.bin_indices(np.array([-5.0, 150.0]), np.array([50.0, 50.0]))
        assert cols[0] == 0 and cols[1] == grid.bins_x - 1

    def test_blockage_rasterized(self):
        grid = PlacementGrid.for_die(
            100.0, 100.0, blockages=[(0.0, 0.0, 50.0, 50.0)], target_bins=10
        )
        assert grid.blockage_fraction[0, 0] == pytest.approx(1.0)
        assert grid.blockage_fraction[9, 9] == pytest.approx(0.0)
        assert grid.blockage_fraction.max() <= 1.0

    def test_density_conserves_area(self, grid):
        rng = derive_rng(0, "dens")
        xs = rng.uniform(0, 100, 200)
        ys = rng.uniform(0, 100, 200)
        areas = np.full(200, 2.0)
        density = grid.density_map(xs, ys, areas, blockage_penalty=False)
        total_used = (density * grid.bin_area_um2).sum()
        assert total_used == pytest.approx(400.0, rel=1e-9)

    def test_blockage_penalty_flag(self):
        grid = PlacementGrid.for_die(
            100.0, 100.0, blockages=[(0.0, 0.0, 15.0, 15.0)], target_bins=10
        )
        xs = np.array([50.0])
        ys = np.array([50.0])
        areas = np.array([1.0])
        with_pen = grid.density_map(xs, ys, areas, blockage_penalty=True)
        without = grid.density_map(xs, ys, areas, blockage_penalty=False)
        assert with_pen[0, 0] > without[0, 0]


class TestRudy:
    def test_fast_matches_reference(self, grid):
        rng = derive_rng(1, "rudy")
        boxes = []
        lengths = []
        for _ in range(40):
            x0, y0 = rng.uniform(0, 80, 2)
            w, h = rng.uniform(1, 20, 2)
            boxes.append((x0, y0, x0 + w, y0 + h))
            lengths.append(w + h)
        boxes = np.array(boxes)
        lengths = np.array(lengths)
        slow = rudy_map(grid, boxes, lengths, supply_um_per_bin=50.0)
        fast = rudy_map_fast(grid, boxes, lengths, supply_um_per_bin=50.0)
        assert np.allclose(slow, fast, atol=1e-9)

    def test_empty_nets(self, grid):
        fast = rudy_map_fast(grid, np.zeros((0, 4)), np.zeros(0), 50.0)
        assert fast.shape == (10, 10)
        assert np.all(fast == 0.0)

    def test_demand_conserved(self, grid):
        boxes = np.array([[5.0, 5.0, 25.0, 25.0]])
        lengths = np.array([40.0])
        demand_map = rudy_map_fast(grid, boxes, lengths, 1.0)
        # supply=1 and no blockage => map is demand directly
        assert demand_map.sum() == pytest.approx(40.0, rel=1e-9)

    def test_bounding_boxes(self):
        pins = [np.array([[0.0, 0.0], [4.0, 2.0]])]
        boxes = net_bounding_boxes(pins)
        assert np.allclose(boxes[0], [0.0, 0.0, 4.0, 2.0])

    def test_overflow_threshold(self):
        congestion = np.array([[0.5, 1.5], [2.0, 0.1]])
        assert congestion_overflow(congestion) == pytest.approx(1.5)

    def test_summary_keys(self):
        summary = congestion_summary(np.ones((4, 4)))
        assert {"peak", "mean", "p95", "overflow", "hotspot_fraction"} <= set(summary)

    def test_classification_bands(self):
        assert classify_congestion(0.3) == "low"
        assert classify_congestion(1.0) == "medium"
        assert classify_congestion(2.0) == "high"


class TestPlacer:
    def test_all_cells_placed_inside_die(self, placed_netlist):
        netlist, _ = placed_netlist
        for cell in netlist.cells.values():
            if cell.is_clock_cell:
                continue
            x, y = cell.placed()
            assert 0.0 <= x <= netlist.die_width_um
            assert 0.0 <= y <= netlist.die_height_um

    def test_wirelengths_annotated(self, placed_netlist):
        netlist, _ = placed_netlist
        data_nets = [n for n in netlist.nets.values() if not n.is_clock]
        assert all(n.wire_length_um > 0 for n in data_nets)
        assert all(n.wire_cap_ff > 0 for n in data_nets)

    def test_checkpoints_recorded(self, placed_netlist):
        _, result = placed_netlist
        assert set(result.congestion_checkpoints) == {"early", "mid", "late"}
        assert set(result.congestion_levels) == {"early", "mid", "late", "final"}

    def test_deterministic(self, small_profile):
        n1 = generate_netlist(small_profile, seed=7)
        n2 = generate_netlist(small_profile, seed=7)
        r1 = place(n1, PlacerParams(), seed=3)
        r2 = place(n2, PlacerParams(), seed=3)
        assert r1.total_hpwl_um == pytest.approx(r2.total_hpwl_um)
        assert n1.cells["u_0"].position == n2.cells["u_0"].position

    def test_legalized_density_bounded(self, placed_netlist):
        _, result = placed_netlist
        assert result.peak_density < 3.0

    def test_effort_increases_iterations(self, small_profile):
        netlist = generate_netlist(small_profile, seed=7)
        low = place(netlist, PlacerParams(effort=0.5), seed=3)
        netlist2 = generate_netlist(small_profile, seed=7)
        high = place(netlist2, PlacerParams(effort=2.0), seed=3)
        assert high.iterations_run > low.iterations_run

    def test_timing_weight_shortens_critical_nets(self):
        profile = tiny_profile("TW", sim_gate_count=300, logic_depth=8)
        base_nl = generate_netlist(profile, seed=5)
        place(base_nl, PlacerParams(timing_net_weight=0.0), seed=5)
        weighted_nl = generate_netlist(profile, seed=5)
        place(weighted_nl, PlacerParams(timing_net_weight=2.5), seed=5)
        max_level = max(c.level for c in base_nl.cells.values())

        def deep_wire(netlist):
            total = 0.0
            for net in netlist.nets.values():
                if net.is_clock or net.driver not in netlist.cells:
                    continue
                if netlist.cells[net.driver].level >= max_level - 1:
                    total += net.wire_length_um
            return total

        assert deep_wire(weighted_nl) < deep_wire(base_nl) * 1.05

    @settings(max_examples=5, deadline=None)
    @given(spread=st.floats(0.3, 2.5), seed=st.integers(0, 3))
    def test_placement_always_legalizes(self, spread, seed):
        profile = tiny_profile("TL", sim_gate_count=200, utilization=0.7)
        netlist = generate_netlist(profile, seed=seed)
        result = place(netlist, PlacerParams(spread_strength=spread), seed=seed)
        assert result.peak_density < 4.0
        assert result.total_hpwl_um > 0
