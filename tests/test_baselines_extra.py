"""Tests for the FIST and transfer-BO baselines."""

import numpy as np
import pytest

from repro.baselines.common import CachingObjective, TuningBudget
from repro.baselines.fist import (
    FistTuner,
    RegressionTree,
    TreeEnsemble,
    recipe_importance,
)
from repro.baselines.transfer_bo import TransferBoTuner, fit_prior_mean
from repro.utils.rng import derive_rng


def planted_objective(good=(3, 7, 21, 30), penalty=0.3):
    def objective(bits):
        selected = {i for i, b in enumerate(bits) if b}
        return float(
            len(selected & set(good)) - penalty * len(selected - set(good))
        )

    return objective


class TestRegressionTree:
    def test_fits_separable_data(self):
        rng = derive_rng(0, "tree")
        features = rng.integers(0, 2, size=(200, 10)).astype(float)
        targets = 3.0 * features[:, 2] - 1.0 * features[:, 5]
        tree = RegressionTree(max_depth=4, rng=derive_rng(1, "t")).fit(
            features, targets
        )
        errors = [
            abs(tree.predict_one(f) - t) for f, t in zip(features, targets)
        ]
        assert np.mean(errors) < 1.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict_one(np.zeros(4))

    def test_ensemble_beats_constant(self):
        rng = derive_rng(2, "ens")
        features = rng.integers(0, 2, size=(300, 12)).astype(float)
        targets = 2.0 * features[:, 0] + features[:, 1] * features[:, 2]
        model = TreeEnsemble(n_trees=8, seed=0, max_depth=5).fit(
            features, targets
        )
        predictions = np.array([model.predict_one(f) for f in features])
        sse_model = ((predictions - targets) ** 2).mean()
        sse_const = ((targets.mean() - targets) ** 2).mean()
        assert sse_model < sse_const * 0.7


class TestRecipeImportance:
    def test_highlights_impactful_recipes(self, mini_dataset):
        importance = recipe_importance(mini_dataset)
        assert importance.shape == (40,)
        assert importance.max() == pytest.approx(1.0)
        assert np.all(importance >= 0.0)

    def test_planted_importance(self):
        """On a synthetic archive, the planted bit is the most important."""
        from repro.core.dataset import DataPoint, OfflineDataset
        from repro.insights.extractor import InsightVector
        from repro.insights.schema import INSIGHT_DIMS

        rng = derive_rng(3, "pi")
        points = []
        for _ in range(80):
            bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
            qor = {
                "power_mw": 10.0 - 5.0 * bits[7] + rng.normal(0, 0.2),
                "tns_ns": 1.0,
            }
            points.append(DataPoint("X", bits, qor))
        dataset = OfflineDataset(
            points=points,
            insights={"X": InsightVector(
                "X", np.zeros(INSIGHT_DIMS), {}
            )},
        )
        importance = recipe_importance(dataset)
        assert int(np.argmax(importance)) == 7


class TestFistTuner:
    def test_respects_budget_and_dedups(self):
        importance = np.zeros(40)
        importance[[3, 7, 21, 30]] = 1.0
        tuner = FistTuner(importance, seed=1)
        record = tuner.tune(
            CachingObjective(planted_objective()), TuningBudget(20)
        )
        assert len(record) == 20
        assert len(set(record.recipe_sets)) == 20

    def test_importance_bias_finds_planted_optimum_faster(self):
        objective = planted_objective()
        budget = TuningBudget(25)
        informed = FistTuner(
            np.eye(40)[[3, 7, 21, 30]].sum(axis=0), seed=2
        ).tune(CachingObjective(objective), budget)
        uninformed = FistTuner(np.zeros(40), seed=2).tune(
            CachingObjective(objective), budget
        )
        assert informed.best_score >= uninformed.best_score


class TestTransferBo:
    def test_prior_fits_archive_signal(self, mini_dataset):
        weights, intercept = fit_prior_mean(mini_dataset)
        assert weights.shape == (40,)
        assert np.isfinite(intercept)
        # Prior predictions correlate with true scores on the archive.
        truths, preds = [], []
        for design in mini_dataset.designs():
            scores = mini_dataset.scores_for(design)
            for point, score in zip(mini_dataset.by_design(design), scores):
                truths.append(score)
                preds.append(
                    np.asarray(point.recipe_set) @ weights + intercept
                )
        assert np.corrcoef(truths, preds)[0, 1] > 0.3

    def test_tune_respects_budget(self):
        rng = derive_rng(5, "tbo")
        weights = rng.normal(0, 0.2, size=40)
        tuner = TransferBoTuner(weights, 0.0, seed=3)
        record = tuner.tune(
            CachingObjective(planted_objective()), TuningBudget(15)
        )
        assert len(record) == 15
        assert len(set(record.recipe_sets)) == 15

    def test_good_prior_beats_flat_prior(self):
        objective = planted_objective()
        budget = TuningBudget(15)
        good_weights = np.full(40, -0.3)
        for index in (3, 7, 21, 30):
            good_weights[index] = 1.0
        informed = TransferBoTuner(good_weights, 0.0, seed=4).tune(
            CachingObjective(objective), budget
        )
        flat = TransferBoTuner(np.zeros(40), 0.0, seed=4).tune(
            CachingObjective(objective), budget
        )
        assert informed.best_score >= flat.best_score
