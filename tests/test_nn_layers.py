"""Tests for NN layers, attention, optimizers and serialization."""

import numpy as np
import pytest

from repro.nn.attention import (
    SingleHeadAttention,
    TransformerDecoderLayer,
    causal_mask,
)
from repro.nn.layers import (
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    positional_encoding,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self):
        layer = Linear(5, 3, seed=1)
        out = layer(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, seed=1, bias=False)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 5))))
        assert np.allclose(zero_out.numpy(), 0.0)

    def test_deterministic_init(self):
        a = Linear(5, 3, seed=1)
        b = Linear(5, 3, seed=1)
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_gradients_reach_params(self):
        layer = Linear(5, 3, seed=1)
        loss = (layer(Tensor(np.ones((2, 5)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, seed=1)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        assert np.array_equal(out.numpy()[0], out.numpy()[1])

    def test_scatter_grad_accumulates(self):
        emb = Embedding(10, 4, seed=1)
        out = emb(np.array([2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[3], 0.0)


class TestLayerNorm:
    def test_normalizes(self):
        layer = LayerNorm(8)
        out = layer(Tensor(np.random.default_rng(0).normal(2.0, 5.0, (3, 8))))
        assert np.allclose(out.numpy().mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.numpy().std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_trainable(self):
        layer = LayerNorm(4)
        (layer(Tensor(np.random.default_rng(1).normal(size=(2, 4)))) ** 2).sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None


class TestModule:
    def test_state_dict_roundtrip(self):
        mod = FeedForward(4, 8, seed=3)
        state = mod.state_dict()
        twin = FeedForward(4, 8, seed=99)
        twin.load_state_dict(state)
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(mod(x).numpy(), twin(x).numpy())

    def test_state_dict_mismatch_raises(self):
        mod = FeedForward(4, 8, seed=3)
        state = mod.state_dict()
        del state["up.weight"]
        with pytest.raises(KeyError, match="missing"):
            FeedForward(4, 8, seed=3).load_state_dict(state)

    def test_shape_mismatch_raises(self):
        mod = Linear(4, 2, seed=0)
        state = mod.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            mod.load_state_dict(state)

    def test_clone_independent(self):
        mod = Linear(4, 2, seed=0)
        twin = mod.clone()
        twin.weight.data += 1.0
        assert not np.allclose(mod.weight.data, twin.weight.data)

    def test_train_eval_propagates(self):
        mod = FeedForward(4, 8, seed=0)
        mod.eval()
        assert not mod.training
        assert not mod.up.training
        mod.train()
        assert mod.up.training


class TestPositionalEncoding:
    def test_shape_and_determinism(self):
        a = positional_encoding(40, 32)
        b = positional_encoding(40, 32)
        assert a.shape == (40, 32)
        assert np.array_equal(a, b)

    def test_positions_distinct(self):
        code = positional_encoding(40, 32)
        assert not np.allclose(code[0], code[1])


class TestAttention:
    def test_causal_mask(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask[1, 0] and not mask[3, 3]

    def test_cross_attention_shape(self):
        attn = SingleHeadAttention(8, seed=0)
        out = attn(Tensor(np.ones((5, 8))), Tensor(np.ones((2, 8))))
        assert out.shape == (5, 8)

    def test_decoder_causality(self):
        dec = TransformerDecoderLayer(8, seed=0)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 8))
        mem = Tensor(rng.normal(size=(1, 8)))
        base = dec(Tensor(x), mem).numpy()
        x_mod = x.copy()
        x_mod[4] += 5.0
        modified = dec(Tensor(x_mod), mem).numpy()
        assert np.allclose(base[:4], modified[:4])
        assert not np.allclose(base[4:], modified[4:])

    def test_memory_changes_everything(self):
        dec = TransformerDecoderLayer(8, seed=0)
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(6, 8)))
        out1 = dec(x, Tensor(rng.normal(size=(1, 8)))).numpy()
        out2 = dec(x, Tensor(rng.normal(size=(1, 8)))).numpy()
        assert not np.allclose(out1, out2)

    def test_batched_matches_loop(self):
        dec = TransformerDecoderLayer(8, seed=0)
        rng = np.random.default_rng(5)
        xs = rng.normal(size=(3, 6, 8))
        mems = rng.normal(size=(3, 1, 8))
        batched = dec(Tensor(xs), Tensor(mems)).numpy()
        for row in range(3):
            single = dec(Tensor(xs[row]), Tensor(mems[row])).numpy()
            np.testing.assert_allclose(single, batched[row], atol=1e-10)


class TestOptim:
    def test_sgd_descends(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert abs(float(x.data[0])) < 0.1

    def test_adam_descends_quadratic(self):
        x = Tensor(np.array([3.0, -4.0]), requires_grad=True)
        opt = Adam([x], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert np.all(np.abs(x.data) < 0.05)

    def test_bad_lr_raises(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], lr=0.0)
        with pytest.raises(ValueError):
            SGD([x], lr=-1.0)

    def test_clip_grad_norm(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        x.grad = np.array([30.0])
        y = Tensor(np.array([1.0]), requires_grad=True)
        y.grad = np.array([40.0])
        norm = clip_grad_norm([x, y], max_norm=5.0)
        assert norm == pytest.approx(50.0)
        new_norm = float(np.sqrt((x.grad ** 2 + y.grad ** 2)[0]))
        assert new_norm == pytest.approx(5.0)

    def test_momentum_sgd(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        opt = SGD([x], lr=0.05, momentum=0.9)
        for _ in range(60):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert abs(float(x.data[0])) < 0.5


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        mod = TransformerDecoderLayer(8, seed=4)
        path = tmp_path / "weights.npz"
        save_state(mod, path)
        twin = TransformerDecoderLayer(8, seed=99)
        load_state(twin, path)
        x = Tensor(np.ones((3, 8)))
        mem = Tensor(np.ones((1, 8)))
        assert np.allclose(mod(x, mem).numpy(), twin(x, mem).numpy())
