"""Tests for clock-tree synthesis and skew analysis."""

import numpy as np
import pytest

from repro.cts.skew import analyze_skew
from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place

from conftest import tiny_profile


@pytest.fixture(scope="module")
def placed():
    profile = tiny_profile("TC", sim_gate_count=240, register_ratio=0.3)
    netlist = generate_netlist(profile, seed=9)
    place(netlist, PlacerParams(), seed=9)
    return netlist


class TestSynthesis:
    def test_all_sinks_get_latency(self, placed):
        tree = synthesize_clock_tree(placed, CtsParams(), seed=1)
        regs = {c.name for c in placed.sequential_cells()}
        assert set(tree.latency_ps) == regs
        assert all(v > 0 for v in tree.latency_ps.values())

    def test_deterministic(self, placed):
        t1 = synthesize_clock_tree(placed, CtsParams(), seed=1)
        t2 = synthesize_clock_tree(placed, CtsParams(), seed=1)
        assert t1.latency_ps == t2.latency_ps

    def test_no_clock_raises(self, placed):
        saved = placed.clock
        placed.clock = None
        try:
            with pytest.raises(FlowError, match="no clock"):
                synthesize_clock_tree(placed, CtsParams(), seed=1)
        finally:
            placed.clock = saved

    def test_smaller_clusters_more_buffers(self, placed):
        small = synthesize_clock_tree(placed, CtsParams(max_cluster_size=4), seed=1)
        large = synthesize_clock_tree(placed, CtsParams(max_cluster_size=32), seed=1)
        assert small.buffer_count > large.buffer_count
        assert small.tree_depth >= large.tree_depth

    def test_stronger_buffers_lower_latency(self, placed):
        weak = synthesize_clock_tree(placed, CtsParams(buffer_drive=2), seed=1)
        strong = synthesize_clock_tree(placed, CtsParams(buffer_drive=8), seed=1)
        assert strong.mean_latency_ps < weak.mean_latency_ps

    def test_balance_effort_reduces_skew(self, placed):
        # The target floor must sit below what loose effort achieves:
        # once *both* efforts beat the target, each re-inflates to the
        # same floor and the ordering degenerates to a tie.
        loose = synthesize_clock_tree(
            placed, CtsParams(balance_effort=0.3, target_skew_ps=1.0), seed=1
        )
        tight = synthesize_clock_tree(
            placed, CtsParams(balance_effort=1.8, target_skew_ps=1.0), seed=1
        )
        assert tight.global_skew_ps < loose.global_skew_ps

    def test_target_skew_floor(self, placed):
        tree = synthesize_clock_tree(
            placed, CtsParams(balance_effort=2.0, target_skew_ps=20.0), seed=1
        )
        # Balancing cannot beat the floor by much.
        assert tree.global_skew_ps > 10.0

    def test_wirelength_and_caps_positive(self, placed):
        tree = synthesize_clock_tree(placed, CtsParams(), seed=1)
        assert tree.wirelength_um > 0
        assert tree.total_buffer_cap_ff > 0
        assert tree.total_wire_cap_ff > 0


class TestSkewAnalysis:
    def test_harmful_skew_detection(self, placed):
        tree = synthesize_clock_tree(placed, CtsParams(), seed=1)
        names = tree.sink_names
        # Construct an artificial pair where capture is much earlier.
        tree.latency_ps[names[0]] = 100.0
        tree.latency_ps[names[1]] = 50.0
        report = analyze_skew(tree, [(names[0], names[1])], harmful_threshold_ps=5.0)
        assert report.harmful_skew_paths == 1
        assert report.harmful_fraction == 1.0

    def test_benign_pair_not_flagged(self, placed):
        tree = synthesize_clock_tree(placed, CtsParams(), seed=1)
        names = tree.sink_names
        tree.latency_ps[names[0]] = 50.0
        tree.latency_ps[names[1]] = 50.0
        report = analyze_skew(tree, [(names[0], names[1])])
        assert report.harmful_skew_paths == 0

    def test_empty_pairs(self, placed):
        tree = synthesize_clock_tree(placed, CtsParams(), seed=1)
        report = analyze_skew(tree, [])
        assert report.checked_paths == 0
        assert report.harmful_fraction == 0.0
        assert report.global_skew_ps == pytest.approx(tree.global_skew_ps)

    def test_global_skew_matches_tree(self, placed):
        tree = synthesize_clock_tree(placed, CtsParams(), seed=1)
        report = analyze_skew(tree, [])
        values = np.array(list(tree.latency_ps.values()))
        assert report.global_skew_ps == pytest.approx(values.max() - values.min())
