"""Deeper structural tests for the netlist generator's knob fidelity."""

import numpy as np
import pytest

from repro.netlist.generator import generate_netlist
from repro.netlist.stats import compute_stats

from conftest import tiny_profile


class TestProfileKnobFidelity:
    def test_logic_depth_realized(self):
        for depth in (4, 8, 12):
            profile = tiny_profile(f"TGd{depth}", logic_depth=depth,
                                   sim_gate_count=300)
            netlist = generate_netlist(profile, seed=2)
            stats = compute_stats(netlist)
            assert stats.logic_depth == depth

    def test_register_ratio_tracks_profile(self):
        low = tiny_profile("TGr1", register_ratio=0.12, sim_gate_count=300)
        high = tiny_profile("TGr2", register_ratio=0.40, sim_gate_count=300)
        s_low = compute_stats(generate_netlist(low, seed=2))
        s_high = compute_stats(generate_netlist(high, seed=2))
        assert s_high.register_count > s_low.register_count * 2

    def test_high_fanout_fraction_adds_tail(self):
        flat = tiny_profile("TGf1", high_fanout_fraction=0.0,
                            sim_gate_count=400)
        heavy = tiny_profile("TGf2", high_fanout_fraction=0.25,
                             sim_gate_count=400)
        s_flat = compute_stats(generate_netlist(flat, seed=2))
        s_heavy = compute_stats(generate_netlist(heavy, seed=2))
        tail = lambda s: s.fanout_histogram["8-15"] + s.fanout_histogram["16+"]
        assert tail(s_heavy) > tail(s_flat)

    def test_cluster_count_respected(self):
        profile = tiny_profile("TGc", cluster_count=5, sim_gate_count=300)
        netlist = generate_netlist(profile, seed=2)
        clusters = {c.cluster for c in netlist.cells.values()}
        assert clusters <= set(range(5))
        assert len(clusters) == 5

    def test_utilization_tracks_profile(self):
        for util in (0.45, 0.75):
            profile = tiny_profile(f"TGu{int(util*100)}", utilization=util,
                                   macro_count=0, sim_gate_count=300)
            netlist = generate_netlist(profile, seed=2)
            assert netlist.utilization() == pytest.approx(util, rel=0.05)

    def test_activity_scales_power_profile(self):
        quiet = tiny_profile("TGa1", activity=0.05, sim_gate_count=250)
        busy = tiny_profile("TGa2", activity=0.40, sim_gate_count=250)
        act = lambda nl: np.mean([
            c.switching_activity for c in nl.cells.values()
        ])
        assert act(generate_netlist(busy, seed=2)) > \
            2.0 * act(generate_netlist(quiet, seed=2))

    def test_levels_monotone_along_edges(self):
        """Combinational edges always go from lower to higher level."""
        netlist = generate_netlist(tiny_profile("TGl", sim_gate_count=300),
                                   seed=2)
        for driver, net, sink in netlist.iter_timing_arcs():
            d = netlist.cells[driver]
            s = netlist.cells[sink]
            if s.is_sequential or d.is_sequential:
                continue
            # Fanout buffers inherit their driver's level; allow equality.
            assert s.level >= d.level or sink.startswith("fobuf")

    def test_rent_exponent_reasonable(self):
        netlist = generate_netlist(
            tiny_profile("TGrent", sim_gate_count=400, cluster_count=6),
            seed=2,
        )
        stats = compute_stats(netlist)
        assert 0.2 <= stats.rent_exponent <= 1.0
