"""FlowExecutor: deadlines, retry/backoff ordering, typed failure taxonomy."""

import pytest

from repro.errors import (
    CorruptQoR,
    FlowCrash,
    FlowError,
    FlowTimeout,
    RecipeError,
)
from repro.flow.result import FlowResult
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.runtime import (
    FlowExecutor,
    RecordingSleep,
    RetryPolicy,
    VirtualClock,
)


def fake_qor(**overrides):
    qor = {key: 1.0 for key in REQUIRED_QOR_KEYS}
    qor.update(overrides)
    return qor


def fake_flow(design, params, seed=0):
    return FlowResult(design=str(design), qor=fake_qor())


def make_executor(flow_fn, **kwargs):
    clock = kwargs.pop("clock", VirtualClock())
    sleep = RecordingSleep(clock)
    executor = FlowExecutor(flow_fn=flow_fn, clock=clock, sleep=sleep, **kwargs)
    return executor, sleep


class TestSuccessPath:
    def test_first_try_success(self):
        executor, sleep = make_executor(fake_flow)
        result = executor.execute("D6", None)
        assert result.qor["power_mw"] == 1.0
        assert sleep.calls == []

    def test_report_records_single_ok_attempt(self):
        executor, _ = make_executor(fake_flow)
        report = executor.try_execute("D6", None)
        assert report.ok
        assert report.error is None
        assert len(report.attempts) == 1
        assert report.attempts[0].ok


class TestRetrySchedule:
    def test_recovers_after_transient_crashes(self):
        calls = {"n": 0}

        def flaky(design, params, seed=0):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("segfault")
            return fake_flow(design, params, seed)

        executor, sleep = make_executor(
            flaky, policy=RetryPolicy(max_attempts=3, base_delay_s=1.0)
        )
        report = executor.try_execute("D6", None)
        assert report.ok
        assert [a.ok for a in report.attempts] == [False, False, True]
        assert all(isinstance(a.error, FlowCrash)
                   for a in report.attempts[:2])
        assert len(sleep.calls) == 2

    def test_backoff_is_exponential_with_bounded_jitter(self):
        def always_crash(design, params, seed=0):
            raise RuntimeError("dead")

        policy = RetryPolicy(
            max_attempts=4, base_delay_s=2.0, multiplier=3.0,
            max_delay_s=1000.0, jitter=0.25,
        )
        executor, sleep = make_executor(always_crash, policy=policy, seed=13)
        report = executor.try_execute("D6", None)
        assert not report.ok
        assert len(sleep.calls) == 3
        for retry_index, delay in enumerate(sleep.calls):
            raw = 2.0 * 3.0 ** retry_index
            assert raw <= delay < raw * 1.25
        # Strictly increasing: exponential growth dominates the jitter here.
        assert sleep.calls == sorted(sleep.calls)

    def test_backoff_respects_max_delay(self):
        def always_crash(design, params, seed=0):
            raise RuntimeError("dead")

        policy = RetryPolicy(max_attempts=4, base_delay_s=10.0,
                             multiplier=10.0, max_delay_s=15.0, jitter=0.0)
        executor, sleep = make_executor(always_crash, policy=policy)
        executor.try_execute("D6", None)
        assert sleep.calls == [10.0, 15.0, 15.0]

    def test_retry_schedule_is_seed_deterministic(self):
        def always_crash(design, params, seed=0):
            raise RuntimeError("dead")

        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter=0.5)
        executor_a, sleep_a = make_executor(always_crash, policy=policy, seed=7)
        executor_b, sleep_b = make_executor(always_crash, policy=policy, seed=7)
        executor_a.try_execute("D6", None)
        executor_b.try_execute("D6", None)
        assert sleep_a.calls == sleep_b.calls

    def test_no_sleep_after_final_attempt(self):
        def always_crash(design, params, seed=0):
            raise RuntimeError("dead")

        executor, sleep = make_executor(
            always_crash, policy=RetryPolicy(max_attempts=2, base_delay_s=1.0)
        )
        report = executor.try_execute("D6", None)
        assert len(report.attempts) == 2
        assert len(sleep.calls) == 1
        assert report.attempts[-1].backoff_s is None


class TestFailureTaxonomy:
    def test_crash_is_typed_with_cause(self):
        def dies(design, params, seed=0):
            raise ValueError("tool wrote no DEF")

        executor, _ = make_executor(
            dies, policy=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(FlowCrash) as excinfo:
            executor.execute("D6", None)
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert isinstance(excinfo.value, FlowError)

    def test_deadline_overrun_is_flow_timeout(self):
        clock = VirtualClock()

        def slow(design, params, seed=0):
            clock.advance(50.0)
            return fake_flow(design, params, seed)

        executor, _ = make_executor(
            slow, clock=clock, deadline_s=10.0,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.1),
        )
        with pytest.raises(FlowTimeout):
            executor.execute("D6", None)

    def test_within_deadline_passes(self):
        clock = VirtualClock()

        def quick(design, params, seed=0):
            clock.advance(5.0)
            return fake_flow(design, params, seed)

        executor, _ = make_executor(quick, clock=clock, deadline_s=10.0)
        assert executor.execute("D6", None).qor["tns_ns"] == 1.0

    def test_nan_qor_is_corrupt(self):
        def corrupt(design, params, seed=0):
            return FlowResult(design=str(design),
                              qor=fake_qor(power_mw=float("nan")))

        executor, _ = make_executor(
            corrupt, policy=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(CorruptQoR, match="power_mw"):
            executor.execute("D6", None)

    def test_partial_snapshots_rejected_when_floor_set(self):
        executor, _ = make_executor(
            fake_flow, min_snapshots=5, policy=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(CorruptQoR, match="partial"):
            executor.execute("D6", None)

    def test_config_bugs_are_not_retried(self):
        calls = {"n": 0}

        def misconfigured(design, params, seed=0):
            calls["n"] += 1
            raise RecipeError("unknown recipe #99")

        executor, _ = make_executor(
            misconfigured, policy=RetryPolicy(max_attempts=5, base_delay_s=0.1)
        )
        with pytest.raises(RecipeError):
            executor.try_execute("D6", None)
        assert calls["n"] == 1


class TestReport:
    def test_exhausted_report_exposes_terminal_error(self):
        def always_crash(design, params, seed=0):
            raise RuntimeError("dead")

        executor, _ = make_executor(
            always_crash, policy=RetryPolicy(max_attempts=3, base_delay_s=0.1)
        )
        report = executor.try_execute("D6", None)
        assert not report.ok
        assert isinstance(report.error, FlowCrash)
        assert len(report.attempts) == 3
        assert report.total_elapsed_s >= 0.0


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_rejects_bad_policies(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            FlowExecutor(flow_fn=fake_flow, deadline_s=0.0)
