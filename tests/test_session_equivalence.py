"""FlowSession vs the pre-refactor paths: bit-identical, not approximate.

Each test reconstructs a legacy call pattern exactly as the consumers
wired it before the session layer existed — raw ``run_flow`` loops, a
bare sequential ``FlowExecutor`` — and asserts the session-routed
replacement produces the same bits at workers 1, 2, and 4, with and
without the persistent QoR cache: QoR dicts compared with ``==`` (float
exactness), typed errors by class and message, model weights with
``assert_array_equal``, and online checkpoints byte-for-byte on disk.
"""

import numpy as np
import pytest

from conftest import tiny_profile
from repro.core.dataset import build_offline_dataset
from repro.core.online import OnlineConfig, OnlineFineTuner
from repro.errors import FlowCrash, FlowError, FlowTimeout
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.runner import run_flow
from repro.flow.sweep import set_knob, sweep
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowExecutor,
    FlowJob,
    FlowSession,
    RetryPolicy,
    RuntimeConfig,
)
from test_parallel_executor import toy_flow

WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Sweep: legacy = the serial run_flow loop sweep() used to inline.
# ----------------------------------------------------------------------
class TestSweepEquivalence:
    AXES = {"opt.vt_swap_bias": [0.9, 1.0, 1.1], "placer.effort": [0.8, 1.0]}

    @pytest.fixture(scope="class")
    def legacy(self):
        import itertools

        profile = tiny_profile()
        knobs = list(self.AXES)
        grid = list(itertools.product(*(self.AXES[k] for k in knobs)))
        qors = []
        for point in grid:
            params = FlowParameters()
            for knob, value in zip(knobs, point):
                params = set_knob(params, knob, value)
            qors.append(dict(run_flow(profile, params, seed=6).qor))
        return profile, grid, qors

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cached", (False, True))
    def test_bit_identical(self, legacy, tmp_path, workers, cached):
        profile, grid, qors = legacy
        runtime = RuntimeConfig(
            workers=workers,
            qor_cache_path=(
                str(tmp_path / f"qor-{workers}") if cached else None
            ),
        )
        result = sweep(profile, self.AXES, seed=6, runtime=runtime)
        assert result.grid == grid
        assert result.qors == qors


# ----------------------------------------------------------------------
# Dataset build: legacy reference built once at one worker, no cache.
# ----------------------------------------------------------------------
class TestDatasetEquivalence:
    KWARGS = dict(designs=["D6"], sets_per_design=3, seed=9)

    @pytest.fixture(scope="class")
    def reference(self):
        return build_offline_dataset(
            runtime=RuntimeConfig(workers=1), **self.KWARGS
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cached", (False, True))
    def test_bit_identical(self, reference, tmp_path, workers, cached):
        dataset = build_offline_dataset(
            runtime=RuntimeConfig(
                workers=workers,
                qor_cache_path=(
                    str(tmp_path / f"qor-{workers}") if cached else None
                ),
            ),
            **self.KWARGS,
        )
        assert len(dataset.points) == len(reference.points)
        for got, want in zip(dataset.points, reference.points):
            assert got.design == want.design
            assert got.recipe_set == want.recipe_set
            assert got.qor == want.qor
        np.testing.assert_array_equal(
            dataset.insights["D6"].values, reference.insights["D6"].values
        )


# ----------------------------------------------------------------------
# Baseline objective: legacy = scoring raw run_flow results directly.
# ----------------------------------------------------------------------
class TestBaselineEquivalence:
    SETS = [
        tuple(1 if i == j else 0 for i in range(40)) for j in (0, 7, 23)
    ] + [tuple(0 for _ in range(40))]

    @pytest.fixture(scope="class")
    def legacy_scores(self):
        from repro.recipes.apply import apply_recipe_set
        from repro.recipes.catalog import default_catalog

        profile = tiny_profile()
        catalog = default_catalog()
        scores = []
        for bits in self.SETS:
            params = apply_recipe_set(list(bits), catalog)
            scores.append(-run_flow(profile, params, seed=2).qor["power_mw"])
        return profile, scores

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cached", (False, True))
    def test_bit_identical(self, legacy_scores, tmp_path, workers, cached):
        from repro.baselines.common import ParallelFlowObjective, batch_evaluate

        profile, expected = legacy_scores
        objective = ParallelFlowObjective(
            profile,
            lambda qor: -qor["power_mw"],
            runtime=RuntimeConfig(
                workers=workers,
                qor_cache_path=(
                    str(tmp_path / f"qor-{workers}") if cached else None
                ),
            ),
            seed=2,
        )
        try:
            assert batch_evaluate(objective, self.SETS) == expected
            # Single-call path rides the same session.
            assert objective(self.SETS[0]) == expected[0]
        finally:
            objective.close()


# ----------------------------------------------------------------------
# Online loop: legacy = the sequential FlowExecutor the tuner used to
# build itself (preserved verbatim as the injected-executor path).
# ----------------------------------------------------------------------
class TestOnlineEquivalence:
    BASE = dict(iterations=2, k=2, seed=21, explore_samples=1)

    @pytest.fixture(scope="class")
    def archive(self):
        return build_offline_dataset(
            designs=["D6"], sets_per_design=6, seed=21,
            runtime=RuntimeConfig(workers=1),
        )

    def _run(self, archive, config, executor=None):
        from repro.core.model import InsightAlignModel

        model = InsightAlignModel(seed=21)
        tuner = OnlineFineTuner(config, executor=executor)
        try:
            return tuner.run(model, archive, "D6"), model
        finally:
            tuner.close()

    @pytest.fixture(scope="class")
    def legacy(self, archive, tmp_path_factory):
        path = tmp_path_factory.mktemp("legacy") / "online.ck"
        result, model = self._run(
            archive,
            OnlineConfig(checkpoint_path=str(path), **self.BASE),
            executor=FlowExecutor(),
        )
        return result, model, path.read_bytes()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cached", (False, True))
    def test_bit_identical(self, archive, legacy, tmp_path, workers, cached):
        import pickle

        want_result, want_model, want_checkpoint = legacy
        path = tmp_path / "online.ck"
        runtime = RuntimeConfig(
            workers=workers,
            qor_cache_path=(
                str(tmp_path / f"qor-{workers}") if cached else None
            ),
            seed=self.BASE["seed"],
        )
        result, model = self._run(
            archive,
            OnlineConfig(
                runtime=runtime, checkpoint_path=str(path), **self.BASE
            ),
        )
        assert len(result.records) == len(want_result.records)
        for got, want in zip(result.records, want_result.records):
            assert got.recipe_sets == want.recipe_sets
            assert got.qors == want.qors
            assert got.scores == want.scores
            assert got.updated == want.updated
            assert got.best_score_so_far == want.best_score_so_far
        for key, value in want_model.state_dict().items():
            np.testing.assert_array_equal(
                value, model.state_dict()[key], err_msg=key
            )
        if workers == 1:
            # Same in-process transport as the legacy sequential loop:
            # the persisted state is the same file, byte for byte.
            assert path.read_bytes() == want_checkpoint
        else:
            # Results that crossed the process pool no longer *share*
            # key-string objects, so the pickler's memo layout differs —
            # exactly as it did on the pre-session parallel path.  Every
            # field is still bit-identical: pickling each checkpoint
            # entry separately (no cross-object memo) must match.
            got_ck = pickle.loads(path.read_bytes())
            want_ck = pickle.loads(want_checkpoint)
            assert sorted(got_ck) == sorted(want_ck)
            for entry in ("version", "kind", "step", "model_state",
                          "optimizer_state", "rng_state"):
                assert pickle.dumps(got_ck[entry], 5) == \
                    pickle.dumps(want_ck[entry], 5), entry
            for entry in got_ck["payload"]:
                if entry == "records":
                    continue
                assert pickle.dumps(got_ck["payload"][entry], 5) == \
                    pickle.dumps(want_ck["payload"][entry], 5), entry
            for got_rec, want_rec in zip(got_ck["payload"]["records"],
                                         want_ck["payload"]["records"]):
                for attr, value in vars(want_rec).items():
                    got_value = getattr(got_rec, attr)
                    if attr == "qors":
                        # Compare dict by dict: within one QoR dict the
                        # keys are unique, so no memo sharing can hide.
                        for got_qor, want_qor in zip(got_value, value):
                            assert pickle.dumps(got_qor, 5) == \
                                pickle.dumps(want_qor, 5)
                    else:
                        assert pickle.dumps(got_value, 5) == \
                            pickle.dumps(value, 5), attr

    def test_pool_checkpoints_byte_identical_across_worker_counts(
        self, archive, tmp_path
    ):
        """Within the pool transport the bytes are exactly reproducible:
        any pool worker count writes the identical checkpoint file."""
        checkpoints = []
        for workers in (2, 4):
            path = tmp_path / f"online-{workers}.ck"
            self._run(
                archive,
                OnlineConfig(
                    runtime=RuntimeConfig(
                        workers=workers, seed=self.BASE["seed"]
                    ),
                    checkpoint_path=str(path),
                    **self.BASE,
                ),
            )
            checkpoints.append(path.read_bytes())
        assert checkpoints[0] == checkpoints[1]


# ----------------------------------------------------------------------
# Cross-validation: legacy = the raw run_flow-per-candidate loop that
# evaluate_design inlined before it gained a session.
# ----------------------------------------------------------------------
class TestCrossvalEquivalence:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.core.beam import beam_search
        from repro.core.model import InsightAlignModel
        from repro.recipes.apply import apply_recipe_set
        from repro.recipes.catalog import default_catalog

        archive = build_offline_dataset(
            designs=["D6"], sets_per_design=4, seed=3,
            runtime=RuntimeConfig(workers=1),
        )
        model = InsightAlignModel(seed=3)
        catalog = default_catalog()
        candidates = beam_search(
            model, archive.insight_for("D6"), beam_width=3
        )
        legacy_qors = [
            dict(run_flow(
                "D6",
                apply_recipe_set(list(c.recipe_set), catalog),
                seed=3,
            ).qor)
            for c in candidates
        ]
        return archive, model, candidates, legacy_qors

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical(self, setup, tmp_path, workers):
        from repro.core.crossval import evaluate_design

        archive, model, candidates, legacy_qors = setup
        row = evaluate_design(
            model, archive, "D6", beam_width=3, seed=3,
            runtime=RuntimeConfig(
                workers=workers,
                qor_cache_path=str(tmp_path / f"qor-{workers}"),
            ),
        )
        assert row.recommended_sets == [c.recipe_set for c in candidates]
        assert row.recommended_qors == legacy_qors


# ----------------------------------------------------------------------
# Typed errors under fault injection: same class, message, and attempt
# count at any worker count.
# ----------------------------------------------------------------------
class TestFaultEquivalence:
    PLAN = FaultPlan(
        rate=0.6,
        kinds=(FaultKind.CRASH, FaultKind.HANG),
        seed=17,
        hang_s=7200.0,
    )

    def _jobs(self):
        return [
            FlowJob("T", FlowParameters(opt=OptParams(vt_swap_bias=b)), 0)
            for b in (0.9, 1.0, 1.1, 1.2, 1.3)
        ]

    @pytest.fixture(scope="class")
    def reference(self):
        config = RuntimeConfig(
            workers=1,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            deadline_s=3600.0,
            fault_plan=self.PLAN,
            seed=17,
        )
        with FlowSession(config, flow_fn=toy_flow) as session:
            return session.evaluate(self._jobs())

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_outcomes_identical(self, reference, workers):
        config = RuntimeConfig(
            workers=workers,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            deadline_s=3600.0,
            fault_plan=self.PLAN,
            seed=17,
        )
        with FlowSession(config, flow_fn=toy_flow) as session:
            outcomes = session.evaluate(self._jobs())
        assert any(not o.ok for o in reference), "plan injected no faults"
        for got, want in zip(outcomes, reference):
            assert got.ok == want.ok
            assert len(got.attempts) == len(want.attempts)
            if want.ok:
                assert got.result.qor == want.result.qor
            else:
                assert type(got.error) is type(want.error)
                assert isinstance(got.error, (FlowCrash, FlowTimeout))
                assert str(got.error) == str(want.error)

    def test_strict_raises_same_first_error(self):
        errors = []
        for workers in WORKER_COUNTS:
            config = RuntimeConfig(
                workers=workers,
                policy=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, jitter=0.0
                ),
                deadline_s=3600.0,
                fault_plan=self.PLAN,
                seed=17,
            )
            with FlowSession(config, flow_fn=toy_flow) as session:
                with pytest.raises(FlowError) as info:
                    session.evaluate_strict(self._jobs())
            errors.append((type(info.value), str(info.value)))
        assert len(set(errors)) == 1
