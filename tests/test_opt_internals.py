"""White-box tests for the optimizer's individual moves."""

import pytest

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.flow.opt import (
    _apply_useful_skew,
    _power_recovery_pass,
    _setup_sizing_pass,
    _splice_buffer,
)
from repro.flow.parameters import OptParams, TradeoffWeights
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.techlib.cells import CellFunction
from repro.timing.constraints import default_constraints
from repro.timing.sta import run_sta

from conftest import tiny_profile


@pytest.fixture()
def prepared():
    profile = tiny_profile("TOI", sim_gate_count=240, clock_tightness=1.02)
    netlist = generate_netlist(profile, seed=23)
    place(netlist, PlacerParams(), seed=23)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=23)
    constraints = default_constraints(netlist)
    report = run_sta(netlist, constraints, tree)
    return netlist, tree, constraints, report


class TestSizingPass:
    def test_upsizes_negative_slack_cells(self, prepared):
        netlist, tree, constraints, report = prepared
        sizes_before = {n: c.cell_type.drive for n, c in netlist.cells.items()}
        moved = _setup_sizing_pass(
            netlist, report, OptParams(), TradeoffWeights(), throttle=1.0
        )
        assert moved > 0
        upsized = [
            n for n, c in netlist.cells.items()
            if c.cell_type.drive > sizes_before[n]
        ]
        assert len(upsized) == moved
        # Only cells that had negative slack moved.
        for name in upsized:
            assert report.cell_slack_ps[name] < 0

    def test_timing_pressure_raises_quota(self, prepared):
        netlist, tree, constraints, report = prepared
        negatives = sum(1 for s in report.cell_slack_ps.values() if s < 0)
        if negatives < 10:
            pytest.skip("too few violating cells to compare quotas")
        import copy

        timing_first = _setup_sizing_pass(
            copy.deepcopy(netlist), report, OptParams(),
            TradeoffWeights(timing=3.0, power=0.3), throttle=1.0,
        )
        power_first = _setup_sizing_pass(
            copy.deepcopy(netlist), report, OptParams(),
            TradeoffWeights(timing=0.3, power=3.0), throttle=1.0,
        )
        assert timing_first >= power_first


class TestUsefulSkew:
    def test_capped_at_fraction_of_period(self, prepared):
        netlist, tree, constraints, report = prepared
        touched = _apply_useful_skew(report, tree, constraints, gain=5.0)
        if touched == 0:
            pytest.skip("no violating endpoints")
        cap = 0.2 * constraints.period_ps
        assert all(v <= cap + 1e-9 for v in tree.useful_skew_ps.values())

    def test_only_violating_endpoints_touched(self, prepared):
        netlist, tree, constraints, report = prepared
        tree.useful_skew_ps.clear()
        _apply_useful_skew(report, tree, constraints, gain=0.5)
        for endpoint in tree.useful_skew_ps:
            assert report.endpoint_slack_ps[endpoint] < 0


class TestSpliceBuffer:
    def test_splice_preserves_structure_and_adds_delay(self, prepared):
        netlist, tree, constraints, _ = prepared
        endpoint = netlist.sequential_cells()[0].name
        base = run_sta(netlist, constraints, tree)
        pad_cell = netlist.library.default_variant(CellFunction.BUF)
        cells_before = netlist.cell_count
        _splice_buffer(netlist, endpoint, pad_cell, netlist.library.node)
        netlist.validate()
        assert netlist.cell_count == cells_before + 1
        after = run_sta(netlist, constraints, tree)
        # The endpoint's min-arrival (hold) and max-arrival (setup) both
        # shift by the pad delay: hold slack up, setup slack down.
        assert after.endpoint_hold_slack_ps[endpoint] > \
            base.endpoint_hold_slack_ps[endpoint]
        assert after.endpoint_slack_ps[endpoint] < \
            base.endpoint_slack_ps[endpoint]

    def test_splice_names_unique(self, prepared):
        netlist, _, _, _ = prepared
        pad_cell = netlist.library.default_variant(CellFunction.BUF)
        regs = [c.name for c in netlist.sequential_cells()[:3]]
        for endpoint in regs:
            _splice_buffer(netlist, endpoint, pad_cell, netlist.library.node)
        names = [n for n in netlist.cells if n.startswith("holdbuf_")]
        assert len(names) == len(set(names)) >= 3


class TestPowerRecovery:
    def test_downsizes_only_slack_rich_cells(self, prepared):
        netlist, tree, constraints, _ = prepared
        # Relax the clock so everything has headroom.
        import dataclasses

        relaxed = dataclasses.replace(
            constraints, period_ps=constraints.period_ps * 3.0
        )
        report = run_sta(netlist, relaxed, tree)
        drives_before = {n: c.cell_type.drive for n, c in netlist.cells.items()}
        moved = _power_recovery_pass(
            netlist, report, relaxed,
            OptParams(leakage_recovery=2.0, downsize_slack_margin=0.1),
            TradeoffWeights(power=2.0),
        )
        assert moved > 0
        margin = 0.1 * relaxed.period_ps / max(0.5, 2.0)
        for name, cell in netlist.cells.items():
            if cell.cell_type.drive < drives_before[name]:
                assert report.cell_slack_ps[name] > margin
