"""Tests for the recipe catalog and recipe-set application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RecipeError
from repro.flow.parameters import FlowParameters
from repro.recipes.apply import _CLAMPS, apply_recipe_set
from repro.recipes.catalog import RecipeCatalog, default_catalog
from repro.recipes.recipe import Adjustment, Recipe, RecipeCategory


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


class TestCatalog:
    def test_forty_recipes(self, catalog):
        assert len(catalog) == 40

    def test_five_categories_populated(self, catalog):
        for category in RecipeCategory:
            assert len(catalog.by_category(category)) >= 7

    def test_unique_names(self, catalog):
        names = catalog.names()
        assert len(set(names)) == 40

    def test_index_roundtrip(self, catalog):
        for index, recipe in enumerate(catalog):
            assert catalog.index_of(recipe.name) == index

    def test_unknown_recipe_raises(self, catalog):
        with pytest.raises(RecipeError):
            catalog.index_of("recipe_of_power_overwhelming")

    def test_subset_from_names(self, catalog):
        bits = catalog.subset_from_names(["cts_tight_skew"])
        assert sum(bits) == 1
        assert bits[catalog.index_of("cts_tight_skew")] == 1

    def test_duplicate_names_rejected(self, catalog):
        recipe = catalog[0]
        with pytest.raises(RecipeError, match="duplicate"):
            RecipeCatalog([recipe, recipe])

    def test_every_recipe_has_description_and_adjustments(self, catalog):
        for recipe in catalog:
            assert recipe.description
            assert recipe.adjustments

    def test_empty_recipe_rejected(self):
        with pytest.raises(RecipeError, match="adjusts nothing"):
            Recipe("r", RecipeCategory.TIMING, "d", ())

    def test_bad_op_rejected(self):
        with pytest.raises(RecipeError, match="unknown adjustment op"):
            Adjustment("placer.effort", "frobnicate", 1.0)

    def test_all_adjustments_target_real_knobs(self, catalog):
        flat = FlowParameters().flat()
        for recipe in catalog:
            for adj in recipe.adjustments:
                assert adj.knob in flat, f"{recipe.name} -> {adj.knob}"


class TestApply:
    def test_empty_set_is_defaults(self, catalog):
        params = apply_recipe_set([0] * 40, catalog)
        assert params.flat() == FlowParameters().flat()

    def test_wrong_length_raises(self, catalog):
        with pytest.raises(RecipeError, match="bits"):
            apply_recipe_set([0] * 39, catalog)

    def test_single_recipe_moves_its_knob(self, catalog):
        bits = catalog.subset_from_names(["cts_strong_buffers"])
        params = apply_recipe_set(bits, catalog)
        assert params.cts.buffer_drive == 8

    def test_scales_compose(self, catalog):
        bits = catalog.subset_from_names(
            ["groute_effort_high", "intent_runtime_saver"]
        )
        params = apply_recipe_set(bits, catalog)
        # 2.0 (high) * 0.6 (saver) = 1.2
        assert params.route.effort == pytest.approx(1.2)

    def test_opposing_sets_last_wins(self, catalog):
        bits = catalog.subset_from_names(["cong_spread_wide", "cong_pack_tight"])
        params = apply_recipe_set(bits, catalog)
        # cong_pack_tight is later in catalog order.
        assert params.placer.spread_strength == pytest.approx(0.45)

    def test_integer_knobs_are_ints(self, catalog):
        bits = catalog.subset_from_names(["timing_setup_blitz"])
        params = apply_recipe_set(bits, catalog)
        assert isinstance(params.opt.setup_passes, int)
        assert params.opt.setup_passes == 6

    def test_buffer_drive_snaps_to_library(self, catalog):
        bits = catalog.subset_from_names(["cts_lean_buffers"])
        params = apply_recipe_set(bits, catalog)
        assert params.cts.buffer_drive in (2, 4, 8)

    @settings(max_examples=40, deadline=None)
    @given(bits=st.lists(st.integers(0, 1), min_size=40, max_size=40))
    def test_any_combination_yields_valid_params(self, bits, catalog):
        params = apply_recipe_set(bits, catalog)
        flat = params.flat()
        for knob, (low, high) in _CLAMPS.items():
            assert low - 1e-9 <= flat[knob] <= high + 1e-9, knob
        # Constructors re-validate their invariants (e.g. tradeoffs >= 0).
        assert params.opt.setup_passes >= 1

    def test_all_singletons_valid(self, catalog):
        for index in range(40):
            bits = [0] * 40
            bits[index] = 1
            params = apply_recipe_set(bits, catalog)
            assert params.flat()
