"""Tests for facade persistence and the errors hierarchy."""

import numpy as np
import pytest

import repro
from repro.core.model import InsightAlignModel
from repro.core.qor import QoRIntention
from repro.core.recommender import InsightAlign
from repro.errors import (
    FlowError,
    InsightError,
    LibraryError,
    ModelError,
    NetlistError,
    RecipeError,
    ReproError,
    TrainingError,
)
from repro.insights.schema import INSIGHT_DIMS


class TestFacadePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        intention = QoRIntention(
            metrics=(("power_mw", 0.6, False), ("tns_ns", 0.4, False))
        )
        ia = InsightAlign(InsightAlignModel(seed=3), intention=intention)
        path = tmp_path / "model.npz"
        ia.save(path)
        restored = InsightAlign.load(path)

        insight = np.random.default_rng(0).normal(size=(INSIGHT_DIMS,))
        original = ia.model.probabilities(insight)
        loaded = restored.model.probabilities(insight)
        np.testing.assert_allclose(original, loaded, atol=1e-12)
        assert restored.intention.metrics == intention.metrics

    def test_recommendations_survive_roundtrip(self, tmp_path):
        ia = InsightAlign(InsightAlignModel(seed=4))
        path = tmp_path / "model.npz"
        ia.save(path)
        restored = InsightAlign.load(path)
        insight = np.random.default_rng(1).normal(size=(INSIGHT_DIMS,))
        original = [r.recipe_set for r in ia.recommend(insight, k=3)]
        loaded = [r.recipe_set for r in restored.recommend(insight, k=3)]
        assert original == loaded

    def test_catalog_and_history_roundtrip(self, tmp_path):
        """The full facade state survives save/load: weights, intention,
        catalog ordering, alignment history — and recommendations (with
        resolved recipe names) match the pre-save output exactly."""
        from repro.core.alignment import AlignmentHistory

        history = AlignmentHistory(
            epoch_loss=[0.9, 0.5, 0.3],
            epoch_pair_accuracy=[0.55, 0.7, 0.8],
            probe_loss=[0.85, 0.6, 0.4],
        )
        ia = InsightAlign(InsightAlignModel(seed=6), history=history)
        path = tmp_path / "model.npz"
        ia.save(path)
        restored = InsightAlign.load(path)

        assert restored.catalog.names() == ia.catalog.names()
        assert restored.history is not None
        assert restored.history.epoch_loss == pytest.approx(history.epoch_loss)
        assert restored.history.epoch_pair_accuracy == pytest.approx(
            history.epoch_pair_accuracy
        )
        assert restored.history.probe_loss == pytest.approx(history.probe_loss)
        assert restored.history.converged_epoch == history.converged_epoch

        insight = np.random.default_rng(2).normal(size=(INSIGHT_DIMS,))
        original = ia.recommend(insight, k=4)
        loaded = restored.recommend(insight, k=4)
        assert [r.recipe_set for r in original] == [
            r.recipe_set for r in loaded
        ]
        assert [r.recipe_names for r in original] == [
            r.recipe_names for r in loaded
        ]
        for a, b in zip(original, loaded):
            assert b.log_prob == pytest.approx(a.log_prob, abs=1e-12)

    def test_no_history_loads_as_none(self, tmp_path):
        ia = InsightAlign(InsightAlignModel(seed=7))
        path = tmp_path / "model.npz"
        ia.save(path)
        assert InsightAlign.load(path).history is None

    def test_catalog_mismatch_raises(self, tmp_path):
        from repro.recipes.catalog import RecipeCatalog, default_catalog

        ia = InsightAlign(InsightAlignModel(seed=8))
        path = tmp_path / "model.npz"
        ia.save(path)
        recipes = list(default_catalog())
        reordered = RecipeCatalog(recipes[1:] + recipes[:1])
        with pytest.raises(ModelError, match="catalog mismatch"):
            InsightAlign.load(path, catalog=reordered)

    def test_legacy_archive_without_catalog_meta_loads(self, tmp_path):
        """Archives written before catalog/history metadata existed must
        keep loading (against the default catalog, with no history)."""
        ia = InsightAlign(InsightAlignModel(seed=9))
        path = tmp_path / "model.npz"
        ia.save(path)
        with np.load(path) as archive:
            entries = {name: archive[name] for name in archive.files}
        entries.pop("__meta_catalog_names")
        legacy_path = tmp_path / "legacy.npz"
        np.savez(legacy_path, **entries)
        restored = InsightAlign.load(legacy_path)
        assert restored.history is None
        assert restored.catalog.names() == ia.catalog.names()


class TestErrorsHierarchy:
    @pytest.mark.parametrize("exc", [
        NetlistError, LibraryError, FlowError, RecipeError,
        InsightError, ModelError, TrainingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestLazyTopLevel:
    def test_exports_resolve(self):
        assert repro.InsightAlign is InsightAlign
        assert callable(repro.build_offline_dataset)
        assert len(repro.design_profiles()) == 17
        assert len(repro.default_catalog()) == 40

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_dir_lists_exports(self):
        assert "InsightAlign" in dir(repro)
        assert "compound_scores" in dir(repro)
