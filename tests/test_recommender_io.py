"""Tests for facade persistence and the errors hierarchy."""

import numpy as np
import pytest

import repro
from repro.core.model import InsightAlignModel
from repro.core.qor import QoRIntention
from repro.core.recommender import InsightAlign
from repro.errors import (
    FlowError,
    InsightError,
    LibraryError,
    ModelError,
    NetlistError,
    RecipeError,
    ReproError,
    TrainingError,
)
from repro.insights.schema import INSIGHT_DIMS


class TestFacadePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        intention = QoRIntention(
            metrics=(("power_mw", 0.6, False), ("tns_ns", 0.4, False))
        )
        ia = InsightAlign(InsightAlignModel(seed=3), intention=intention)
        path = tmp_path / "model.npz"
        ia.save(path)
        restored = InsightAlign.load(path)

        insight = np.random.default_rng(0).normal(size=(INSIGHT_DIMS,))
        original = ia.model.probabilities(insight)
        loaded = restored.model.probabilities(insight)
        np.testing.assert_allclose(original, loaded, atol=1e-12)
        assert restored.intention.metrics == intention.metrics

    def test_recommendations_survive_roundtrip(self, tmp_path):
        ia = InsightAlign(InsightAlignModel(seed=4))
        path = tmp_path / "model.npz"
        ia.save(path)
        restored = InsightAlign.load(path)
        insight = np.random.default_rng(1).normal(size=(INSIGHT_DIMS,))
        original = [r.recipe_set for r in ia.recommend(insight, k=3)]
        loaded = [r.recipe_set for r in restored.recommend(insight, k=3)]
        assert original == loaded


class TestErrorsHierarchy:
    @pytest.mark.parametrize("exc", [
        NetlistError, LibraryError, FlowError, RecipeError,
        InsightError, ModelError, TrainingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestLazyTopLevel:
    def test_exports_resolve(self):
        assert repro.InsightAlign is InsightAlign
        assert callable(repro.build_offline_dataset)
        assert len(repro.design_profiles()) == 17
        assert len(repro.default_catalog()) == 40

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_dir_lists_exports(self):
        assert "InsightAlign" in dir(repro)
        assert "compound_scores" in dir(repro)
