"""Tests for repro.utils: deterministic RNG derivation and statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import (
    as_generator,
    choice_without_replacement,
    derive_rng,
    spawn_rngs,
)
from repro.utils.stats import (
    exponential_smoothing,
    robust_zscores,
    running_mean,
    summarize,
)


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(42, "placer", 3)
        b = derive_rng(42, "placer", 3)
        assert np.array_equal(a.random(10), b.random(10))

    def test_different_keys_differ(self):
        a = derive_rng(42, "placer", 3)
        b = derive_rng(42, "placer", 4)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_string_and_int_keys_mix(self):
        a = derive_rng(1, "cts", "D4", 0)
        b = derive_rng(1, "cts", "D4", 0)
        assert a.random() == b.random()

    def test_different_seed_differs(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_string_hash_is_stable_across_calls(self):
        # Guards against Python's salted hash() sneaking in.
        values = {derive_rng(5, "stable-key").random() for _ in range(5)}
        assert len(values) == 1


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent(self):
        rngs = spawn_rngs(0, 3, "workers")
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestAsGenerator:
    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_int(self):
        assert isinstance(as_generator(3), np.random.Generator)


class TestChoiceWithoutReplacement:
    def test_distinct(self):
        rng = derive_rng(0, "choice")
        picked = choice_without_replacement(rng, list(range(20)), 10)
        assert len(set(picked)) == 10

    def test_too_many_raises(self):
        rng = derive_rng(0, "choice")
        with pytest.raises(ValueError):
            choice_without_replacement(rng, [1, 2], 3)


class TestRobustZscores:
    def test_zero_mean_unit_std(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        z = robust_zscores(values)
        assert abs(z.mean()) < 1e-12
        assert abs(z.std() - 1.0) < 1e-12

    def test_constant_column_is_zero(self):
        z = robust_zscores(np.array([5.0, 5.0, 5.0]))
        assert np.all(z == 0.0)

    def test_2d_columnwise(self):
        values = np.column_stack([np.arange(5.0), np.full(5, 2.0)])
        z = robust_zscores(values)
        assert abs(z[:, 0].std() - 1.0) < 1e-12
        assert np.all(z[:, 1] == 0.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_translation_invariant(self, values):
        from hypothesis import assume

        array = np.array(values)
        # The degeneracy floor is *relative* to magnitude, so invariance
        # only holds for data whose spread is meaningful at both offsets.
        scale = max(1.0, np.abs(array).max(), np.abs(array + 123.456).max())
        assume(array.std() > 1e-6 * scale)
        z1 = robust_zscores(array)
        z2 = robust_zscores(array + 123.456)
        assert np.allclose(z1, z2, atol=1e-5)


class TestRunningMean:
    def test_values(self):
        out = running_mean([2.0, 4.0, 6.0])
        assert np.allclose(out, [2.0, 3.0, 4.0])

    def test_empty(self):
        assert running_mean([]).size == 0


class TestSummarize:
    def test_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["median"] == 2.0
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_empty_is_nan(self):
        assert summarize([])["count"] == 0
        assert np.isnan(summarize([])["mean"])


class TestExponentialSmoothing:
    def test_first_value_kept(self):
        out = exponential_smoothing([10.0, 0.0, 0.0], alpha=0.5)
        assert out[0] == 10.0
        assert out[1] == 5.0

    def test_alpha_one_is_identity(self):
        values = [3.0, 1.0, 4.0]
        assert np.allclose(exponential_smoothing(values, alpha=1.0), values)

    def test_bad_alpha_raises(self):
        with pytest.raises(ValueError):
            exponential_smoothing([1.0], alpha=0.0)
