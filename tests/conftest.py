"""Shared fixtures: small designs and a session-scoped mini archive.

Tests run against *small* synthetic designs (hundreds of cells) so the whole
suite stays fast; the full 17-profile, ~3,000-point archive is exercised by
the benchmark harness instead.
"""

from __future__ import annotations

import pytest

from repro.core.alignment import AlignmentConfig, AlignmentTrainer
from repro.core.dataset import build_offline_dataset
from repro.flow.parameters import FlowParameters
from repro.flow.runner import run_flow
from repro.netlist.generator import generate_netlist
from repro.netlist.profiles import DesignProfile
from repro.placement.placer import PlacerParams, place
from repro.runtime.session import RuntimeConfig


def tiny_profile(name: str = "T1", **overrides) -> DesignProfile:
    """A fast-to-simulate profile for unit tests."""
    base = dict(
        name=name,
        category="unit-test design",
        node="28nm",
        sim_gate_count=160,
        reported_scale=1.0,
        logic_depth=5,
        register_ratio=0.25,
        avg_fanout=2.2,
        high_fanout_fraction=0.04,
        cluster_count=3,
        macro_count=1,
        activity=0.15,
        clock_tightness=1.15,
        utilization=0.6,
        hold_risk=0.15,
        leakage_bias=1.0,
        skew_sensitivity=0.5,
    )
    base.update(overrides)
    return DesignProfile(**base)


@pytest.fixture(scope="session")
def small_profile() -> DesignProfile:
    return tiny_profile()


@pytest.fixture(scope="session")
def small_netlist(small_profile):
    return generate_netlist(small_profile, seed=7)


@pytest.fixture()
def fresh_netlist(small_profile):
    """A mutable copy for tests that modify the design."""
    return generate_netlist(small_profile, seed=7)


@pytest.fixture(scope="session")
def placed_netlist(small_profile):
    netlist = generate_netlist(small_profile, seed=7)
    result = place(netlist, PlacerParams(), seed=7)
    return netlist, result


@pytest.fixture(scope="session")
def flow_result(small_profile):
    return run_flow(small_profile, FlowParameters(), seed=7)


@pytest.fixture(scope="session")
def mini_dataset():
    """Tiny offline archive over three real profiles (cached per session)."""
    return build_offline_dataset(
        designs=["D6", "D10", "D11"],
        sets_per_design=48,
        seed=11,
        runtime=RuntimeConfig(workers=1),
    )


@pytest.fixture(scope="session")
def mini_model(mini_dataset):
    """A briefly-aligned model over the mini archive."""
    config = AlignmentConfig(
        epochs=6, pairs_per_design=80, batch_size=96, seed=11
    )
    model, history = AlignmentTrainer(config).train(mini_dataset)
    return model, history
