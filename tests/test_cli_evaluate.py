"""End-to-end CLI test covering the recommend --evaluate path."""

import pytest

from repro.cli import main


class TestRecommendEvaluate:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli")
        archive = root / "archive.pkl"
        model = root / "model.npz"
        assert main([
            "build-dataset", "--out", str(archive),
            "--designs", "D11,D16", "--sets-per-design", "15",
        ]) == 0
        assert main([
            "align", "--dataset", str(archive), "--out", str(model),
            "--epochs", "2", "--pairs-per-design", "20",
        ]) == 0
        return archive, model

    def test_recommend_with_evaluation(self, artifacts, capsys):
        archive, model = artifacts
        assert main([
            "recommend", "--model", str(model), "--dataset", str(archive),
            "--design", "D11", "--k", "2", "--evaluate",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("score") >= 2
        assert "power" in out and "TNS" in out

    def test_recommend_unknown_design_fails(self, artifacts):
        archive, model = artifacts
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            main([
                "recommend", "--model", str(model), "--dataset", str(archive),
                "--design", "D99", "--k", "2",
            ])

    def test_saved_model_preserves_intention(self, artifacts):
        from repro.core.recommender import InsightAlign

        _, model = artifacts
        restored = InsightAlign.load(model)
        weights = {n: w for n, w, _ in restored.intention.metrics}
        assert weights == {"power_mw": 0.7, "tns_ns": 0.3}
