"""End-to-end integration: archive -> alignment -> zero-shot -> online.

These tests exercise the complete paper pipeline at miniature scale and
assert the *shape* of the headline results: the aligned recommender's
zero-shot picks must beat the bulk of known recipe sets (Table IV's Win%),
and online fine-tuning must not regress the best-so-far QoR (Fig. 6).
"""

import numpy as np

from repro.core.beam import beam_search
from repro.core.crossval import evaluate_design
from repro.core.online import OnlineConfig, OnlineFineTuner
from repro.core.qor import QoRIntention
from repro.core.recommender import InsightAlign
from repro.flow.runner import run_flow
from repro.recipes.apply import apply_recipe_set
from repro.recipes.catalog import default_catalog
from repro.utils.rng import derive_rng


class TestZeroShotPipeline:
    def test_recommendations_beat_random_median(self, mini_dataset, mini_model):
        """Best-of-3 zero-shot beats the median known recipe set everywhere."""
        model, _ = mini_model
        for design in mini_dataset.designs():
            row = evaluate_design(model, mini_dataset, design, beam_width=3,
                                  seed=11)
            assert row.win_pct >= 50.0, (design, row.win_pct)

    def test_recommended_sets_are_evaluable(self, mini_dataset, mini_model):
        model, _ = mini_model
        catalog = default_catalog()
        insight = mini_dataset.insight_for("D10")
        for candidate in beam_search(model, insight, beam_width=3):
            params = apply_recipe_set(list(candidate.recipe_set), catalog)
            result = run_flow("D10", params, seed=11)
            assert np.isfinite(result.qor["power_mw"])

    def test_insight_conditioning_transfers(self, mini_dataset, mini_model):
        """Different designs' insights should yield different proposals."""
        model, _ = mini_model
        picks = {
            design: beam_search(
                model, mini_dataset.insight_for(design), beam_width=1
            )[0].recipe_set
            for design in mini_dataset.designs()
        }
        assert len(set(picks.values())) >= 2


class TestOnlinePipeline:
    def test_online_never_regresses_best(self, mini_dataset, mini_model):
        model, _ = mini_model
        tuner = OnlineFineTuner(OnlineConfig(iterations=3, k=3, seed=9))
        result = tuner.run(model.clone(), mini_dataset, "D10")
        best = result.trajectory("best_score_so_far")
        assert np.all(np.diff(best) >= -1e-12)

    def test_online_explores_beyond_offline(self, mini_dataset, mini_model):
        """The online loop evaluates recipe sets absent from the archive."""
        model, _ = mini_model
        tuner = OnlineFineTuner(OnlineConfig(iterations=2, k=3, seed=9))
        result = tuner.run(model.clone(), mini_dataset, "D6")
        known = {p.recipe_set for p in mini_dataset.by_design("D6")}
        proposed = {
            bits for record in result.records for bits in record.recipe_sets
        }
        assert proposed - known


class TestIntentions:
    def test_intention_changes_recommendations(self, mini_dataset):
        """Training toward TNS-only vs power-only yields different policies."""
        from repro.core.alignment import AlignmentConfig

        config = AlignmentConfig(epochs=4, pairs_per_design=60, seed=13)
        power_only = QoRIntention(metrics=(("power_mw", 1.0, False),))
        tns_only = QoRIntention(metrics=(("tns_ns", 1.0, False),))
        ia_power = InsightAlign.align_offline(
            mini_dataset, intention=power_only, config=config
        )
        ia_tns = InsightAlign.align_offline(
            mini_dataset, intention=tns_only, config=config
        )
        insight = mini_dataset.insight_for("D10")
        pick_power = ia_power.recommend(insight, k=1)[0].recipe_set
        pick_tns = ia_tns.recommend(insight, k=1)[0].recipe_set
        assert pick_power != pick_tns


class TestFlowRecipeEndToEnd:
    def test_singleton_recipes_all_runnable(self):
        """Every catalog recipe executes on a real design without error."""
        catalog = default_catalog()
        rng = derive_rng(0, "spot")
        for index in rng.choice(40, size=8, replace=False):
            bits = [0] * 40
            bits[int(index)] = 1
            params = apply_recipe_set(bits, catalog)
            result = run_flow("D11", params, seed=0)
            assert result.qor["power_mw"] > 0
