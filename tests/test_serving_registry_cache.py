"""Unit tests for the serving building blocks: registry, cache, metrics."""

import numpy as np
import pytest

from repro.core.model import InsightAlignModel
from repro.core.recommender import InsightAlign
from repro.errors import RegistryError
from repro.insights.schema import INSIGHT_DIMS
from repro.serving.cache import ResultCache, quantize_insight
from repro.serving.metrics import Counter, Histogram, ServingMetrics
from repro.serving.registry import ModelRegistry


def make_recommender(seed):
    return InsightAlign(InsightAlignModel(n_recipes=6, dim=8, seed=seed))


class TestModelRegistry:
    def test_register_and_activate_in_memory(self):
        registry = ModelRegistry()
        ia = make_recommender(1)
        registry.register("v1", ia)
        assert registry.activate("v1") is ia
        assert registry.active_version == "v1"
        assert registry.recommender is ia

    def test_activate_from_path_loads_archive(self, tmp_path):
        ia = make_recommender(2)
        path = tmp_path / "model.npz"
        ia.save(path)
        registry = ModelRegistry()
        registry.register("disk", path)
        loaded = registry.activate("disk")
        insight = np.random.default_rng(0).normal(size=(INSIGHT_DIMS,))
        np.testing.assert_allclose(
            loaded.model.probabilities(insight),
            ia.model.probabilities(insight),
            atol=1e-12,
        )

    def test_failed_activation_keeps_previous_model(self, tmp_path):
        registry = ModelRegistry()
        ia = make_recommender(3)
        registry.register("good", ia)
        registry.register("broken", tmp_path / "missing.npz")
        registry.activate("good")
        with pytest.raises(Exception):
            registry.activate("broken")
        # Zero-downtime: the good model still serves.
        assert registry.active_version == "good"
        assert registry.recommender is ia

    def test_subscribers_fire_on_activation_only(self):
        registry = ModelRegistry()
        seen = []
        registry.subscribe(seen.append)
        registry.register("v1", make_recommender(4))
        assert seen == []
        registry.activate("v1")
        assert seen == ["v1"]

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register("v1", make_recommender(5))
        with pytest.raises(RegistryError):
            registry.register("v1", make_recommender(6))

    def test_unknown_version_and_empty_registry(self):
        registry = ModelRegistry()
        with pytest.raises(RegistryError):
            registry.activate("nope")
        with pytest.raises(RegistryError):
            registry.recommender

    def test_versions_sorted(self):
        registry = ModelRegistry()
        for version in ("v2", "v1", "v10"):
            registry.register(version, make_recommender(7))
        assert registry.versions() == ["v1", "v10", "v2"]


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh a
        cache.put("c", 3)                   # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_quantization_merges_float_noise(self):
        vec = np.random.default_rng(1).normal(size=(INSIGHT_DIMS,))
        assert quantize_insight(vec) == quantize_insight(vec + 1e-9)
        assert quantize_insight(vec) != quantize_insight(vec + 1e-3)

    def test_quantization_normalizes_negative_zero(self):
        assert quantize_insight(np.array([0.0])) == quantize_insight(
            np.array([-1e-12])
        )

    def test_key_includes_version_and_k(self):
        cache = ResultCache()
        vec = np.zeros(INSIGHT_DIMS)
        assert cache.key("v1", vec, 5) != cache.key("v2", vec, 5)
        assert cache.key("v1", vec, 5) != cache.key("v1", vec, 4)

    def test_invalidate_clears_and_counts(self):
        cache = ResultCache()
        cache.put("a", 1)
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats()["invalidations"] == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_exact_aggregates(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0, 10.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_histogram_window_keeps_lifetime_aggregates(self):
        hist = Histogram("h", max_samples=4)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100            # exact even past the window
        assert hist.summary()["max"] == 99.0
        # Percentiles cover the recent window only.
        assert hist.percentile(0.0) >= 96.0

    def test_empty_histogram_summary(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_snapshot_is_detached(self):
        metrics = ServingMetrics()
        metrics.submitted.inc()
        snapshot = metrics.snapshot()
        snapshot["requests"]["submitted"] = 999
        assert metrics.submitted.value == 1
        assert metrics.snapshot()["requests"]["submitted"] == 1
