"""Batched-path gradient checks for attention (3-D tensors)."""

import numpy as np

from repro.nn.attention import SingleHeadAttention, TransformerDecoderLayer
from repro.nn.tensor import Tensor


def numeric_gradient(fn, x0, eps=1e-6):
    grad = np.zeros_like(x0)
    flat = grad.ravel()
    for index in range(x0.size):
        plus = x0.copy().ravel()
        minus = x0.copy().ravel()
        plus[index] += eps
        minus[index] -= eps
        flat[index] = (
            fn(plus.reshape(x0.shape)) - fn(minus.reshape(x0.shape))
        ) / (2 * eps)
    return grad


class TestBatchedAttentionGrads:
    def test_input_gradient_batched(self):
        rng = np.random.default_rng(0)
        attn = SingleHeadAttention(4, seed=0)
        mem = Tensor(rng.normal(size=(2, 3, 4)))
        x0 = rng.normal(size=(2, 5, 4))

        def loss_of(array):
            return (attn(Tensor(array), mem) ** 2).sum().item()

        x = Tensor(x0.copy(), requires_grad=True)
        (attn(x, mem) ** 2).sum().backward()
        numeric = numeric_gradient(loss_of, x0)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    def test_memory_gradient_batched(self):
        rng = np.random.default_rng(1)
        attn = SingleHeadAttention(4, seed=1)
        x = Tensor(rng.normal(size=(2, 5, 4)))
        m0 = rng.normal(size=(2, 3, 4))

        def loss_of(array):
            return (attn(x, Tensor(array)) ** 2).sum().item()

        mem = Tensor(m0.copy(), requires_grad=True)
        (attn(x, mem) ** 2).sum().backward()
        numeric = numeric_gradient(loss_of, m0)
        np.testing.assert_allclose(mem.grad, numeric, atol=1e-6)

    def test_decoder_param_gradient_batched(self):
        rng = np.random.default_rng(2)
        dec = TransformerDecoderLayer(4, seed=2)
        x = Tensor(rng.normal(size=(2, 5, 4)))
        mem = Tensor(rng.normal(size=(2, 1, 4)))
        param = dec.cross_attn.v_proj.weight

        def loss_of(weights):
            saved = param.data.copy()
            param.data = weights
            out = (dec(x, mem) ** 2).sum().item()
            param.data = saved
            return out

        dec.zero_grad()
        (dec(x, mem) ** 2).sum().backward()
        numeric = numeric_gradient(loss_of, param.data.copy())
        np.testing.assert_allclose(param.grad, numeric, atol=1e-5)

    def test_masked_batched_attention_is_causal(self):
        rng = np.random.default_rng(3)
        from repro.nn.attention import causal_mask

        attn = SingleHeadAttention(4, seed=3)
        x = rng.normal(size=(2, 5, 4))
        mask = causal_mask(5)
        base = attn(Tensor(x), Tensor(x), mask=mask).numpy()
        x_mod = x.copy()
        x_mod[:, 4, :] += 3.0
        modified = attn(Tensor(x_mod), Tensor(x_mod), mask=mask).numpy()
        np.testing.assert_allclose(base[:, :4], modified[:, :4], atol=1e-12)
