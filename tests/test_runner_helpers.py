"""Tests for flow-runner helper functions and the netlist cache."""

import numpy as np
import pytest

from repro.flow.runner import (
    _avg_fanout,
    _endpoint_slack_stats,
    _fresh_netlist,
    _high_fanout_fraction,
    _macro_fraction,
    _runtime_proxy,
)
from repro.flow.parameters import FlowParameters
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams

from conftest import tiny_profile


class TestNetlistCache:
    def test_fresh_copies_are_independent(self, small_profile):
        a = _fresh_netlist(small_profile, seed=7)
        b = _fresh_netlist(small_profile, seed=7)
        assert a is not b
        a.cells[next(iter(a.cells))].position = (1.0, 2.0)
        assert b.cells[next(iter(b.cells))].position is None

    def test_cache_matches_direct_generation(self, small_profile):
        cached = _fresh_netlist(small_profile, seed=7)
        direct = generate_netlist(small_profile, seed=7)
        assert cached.cell_count == direct.cell_count
        assert cached.clock.period_ps == direct.clock.period_ps


class TestStructuralStats:
    def test_high_fanout_fraction_bounds(self, small_netlist):
        fraction = _high_fanout_fraction(small_netlist)
        assert 0.0 <= fraction <= 1.0

    def test_avg_fanout_positive(self, small_netlist):
        assert _avg_fanout(small_netlist) > 0.0

    def test_macro_fraction(self):
        netlist = generate_netlist(tiny_profile("TMF", macro_count=2), seed=1)
        fraction = _macro_fraction(netlist)
        assert 0.0 < fraction < 0.5
        clean = generate_netlist(tiny_profile("TMF0", macro_count=0), seed=1)
        assert _macro_fraction(clean) == 0.0


class TestSlackStats:
    class _FakeReport:
        def __init__(self, slacks):
            self.endpoint_slack_ps = slacks

    def test_empty(self):
        stats = _endpoint_slack_stats(self._FakeReport({}), 100.0)
        assert stats == {"spread": 0.0, "near_critical": 0.0, "headroom": 0.0}

    def test_values(self):
        slacks = {"a": -10.0, "b": -8.0, "c": 50.0, "d": 90.0}
        stats = _endpoint_slack_stats(self._FakeReport(slacks), period_ps=100.0)
        # near-critical: slack <= wns + 10 -> a and b.
        assert stats["near_critical"] == pytest.approx(0.5)
        # headroom: slack > 20 -> c and d.
        assert stats["headroom"] == pytest.approx(0.5)
        assert stats["spread"] == pytest.approx(np.std([-10.0, -8.0, 50.0, 90.0]))


class TestRuntimeProxy:
    def test_default_is_one(self):
        assert _runtime_proxy(FlowParameters()) == pytest.approx(1.0)

    def test_scales_with_effort(self):
        params = FlowParameters(placer=PlacerParams(effort=2.0))
        assert _runtime_proxy(params) > 1.0
