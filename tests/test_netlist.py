"""Tests for netlist containers, validation, and the synthetic generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.cell import CellInstance
from repro.netlist.generator import _MAX_FANOUT, generate_netlist
from repro.netlist.net import Net
from repro.netlist.netlist import ClockSpec, Netlist
from repro.netlist.profiles import DesignProfile, design_profiles, get_profile
from repro.techlib.cells import CellFunction
from repro.techlib.library import build_library

from conftest import tiny_profile


@pytest.fixture()
def empty_netlist():
    return Netlist(name="t", library=build_library("28nm"))


def _cell(lib, name, function=CellFunction.INV, drive=2):
    variant = next(c for c in lib.variants(function) if c.drive == drive)
    return CellInstance(name=name, cell_type=variant)


class TestNetlistContainer:
    def test_duplicate_cell_raises(self, empty_netlist):
        empty_netlist.add_cell(_cell(empty_netlist.library, "a"))
        with pytest.raises(NetlistError, match="duplicate cell"):
            empty_netlist.add_cell(_cell(empty_netlist.library, "a"))

    def test_duplicate_net_raises(self, empty_netlist):
        empty_netlist.add_net(Net(name="n1", driver=None))
        with pytest.raises(NetlistError, match="duplicate net"):
            empty_netlist.add_net(Net(name="n1", driver=None))

    def test_validate_unknown_driver(self, empty_netlist):
        empty_netlist.add_net(Net(name="n1", driver="ghost"))
        with pytest.raises(NetlistError, match="unknown cell"):
            empty_netlist.validate()

    def test_validate_pin_count(self, empty_netlist):
        lib = empty_netlist.library
        cell = _cell(lib, "g", CellFunction.NAND2)
        empty_netlist.add_cell(cell)
        empty_netlist.add_net(Net(name="i0", driver=None, sinks=[("g", 0)]))
        cell.input_nets = ("i0",)  # NAND2 needs two inputs
        with pytest.raises(NetlistError, match="data inputs"):
            empty_netlist.validate()

    def test_position_before_placement_raises(self, empty_netlist):
        cell = _cell(empty_netlist.library, "u")
        with pytest.raises(RuntimeError, match="before placement"):
            cell.placed()

    def test_combinational_loop_detected(self, empty_netlist):
        lib = empty_netlist.library
        a = _cell(lib, "a", CellFunction.INV)
        b = _cell(lib, "b", CellFunction.INV)
        empty_netlist.add_cell(a)
        empty_netlist.add_cell(b)
        na = Net(name="na", driver="a", sinks=[("b", 0)])
        nb = Net(name="nb", driver="b", sinks=[("a", 0)])
        empty_netlist.add_net(na)
        empty_netlist.add_net(nb)
        a.output_net, a.input_nets = "na", ("nb",)
        b.output_net, b.input_nets = "nb", ("na",)
        with pytest.raises(NetlistError, match="loop"):
            empty_netlist.topological_order()

    def test_utilization_positive_die_required(self, empty_netlist):
        empty_netlist.die_width_um = 0.0
        with pytest.raises(NetlistError, match="non-positive area"):
            empty_netlist.utilization()

    def test_clock_net_must_exist(self, empty_netlist):
        empty_netlist.clock = ClockSpec(net_name="clk", period_ps=100.0)
        with pytest.raises(NetlistError, match="clock net"):
            empty_netlist.validate()


class TestGenerator:
    def test_deterministic(self, small_profile):
        a = generate_netlist(small_profile, seed=3)
        b = generate_netlist(small_profile, seed=3)
        assert a.cell_count == b.cell_count
        assert sorted(a.nets) == sorted(b.nets)
        assert a.clock.period_ps == b.clock.period_ps

    def test_seed_changes_structure(self, small_profile):
        a = generate_netlist(small_profile, seed=3)
        b = generate_netlist(small_profile, seed=4)
        pins_a = sorted((c.name, c.input_nets) for c in a.cells.values())
        pins_b = sorted((c.name, c.input_nets) for c in b.cells.values())
        assert pins_a != pins_b

    def test_validates(self, small_netlist):
        small_netlist.validate()  # must not raise

    def test_register_count_matches_ratio(self, small_profile, small_netlist):
        regs = len(small_netlist.sequential_cells())
        expected = small_profile.sim_gate_count * small_profile.register_ratio
        assert abs(regs - expected) <= max(4, 0.1 * expected)

    def test_clock_feeds_all_registers(self, small_netlist):
        clk = small_netlist.nets["clk"]
        reg_sinks = {s for s, p in clk.sinks}
        for reg in small_netlist.sequential_cells():
            assert reg.name in reg_sinks

    def test_fanout_capped_after_buffering(self, small_netlist):
        for net in small_netlist.nets.values():
            if net.is_clock:
                continue
            cell_sinks = sum(1 for _, p in net.sinks if p >= 0)
            assert cell_sinks <= _MAX_FANOUT

    def test_tight_clock_is_shorter(self):
        easy = generate_netlist(tiny_profile("TE", clock_tightness=1.5), seed=1)
        hard = generate_netlist(tiny_profile("TH", clock_tightness=1.02), seed=1)
        assert hard.clock.period_ps < easy.clock.period_ps

    def test_macros_become_blockages(self):
        netlist = generate_netlist(tiny_profile("TM", macro_count=3), seed=1)
        assert len(netlist.blockages) == 3
        for (x, y, w, h) in netlist.blockages:
            assert 0 <= x <= netlist.die_width_um
            assert w > 0 and h > 0

    def test_primary_outputs_exist(self, small_netlist):
        assert small_netlist.primary_outputs
        for net_name in small_netlist.primary_outputs:
            assert net_name in small_netlist.nets

    @settings(max_examples=8, deadline=None)
    @given(
        gates=st.integers(100, 400),
        depth=st.integers(3, 10),
        seed=st.integers(0, 5),
    )
    def test_arbitrary_profiles_valid(self, gates, depth, seed):
        profile = tiny_profile("TP", sim_gate_count=gates, logic_depth=depth)
        netlist = generate_netlist(profile, seed=seed)
        netlist.validate()
        assert netlist.clock.period_ps > 0
        assert 0.0 < netlist.utilization() < 1.2


class TestProfiles:
    def test_seventeen_designs(self):
        assert len(design_profiles()) == 17
        assert [p.name for p in design_profiles()] == [
            f"D{i}" for i in range(1, 18)
        ]

    def test_unknown_design_raises(self):
        with pytest.raises(NetlistError, match="unknown design"):
            get_profile("D99")

    def test_nodes_span_45_to_7(self):
        nodes = {p.node for p in design_profiles()}
        assert {"45nm", "7nm"} <= nodes

    def test_profile_validation(self):
        with pytest.raises(NetlistError):
            DesignProfile("bad", "x", "7nm", 10, 1.0, 5, 0.2, 2.0, 0.05,
                          2, 0, 0.1, 1.1, 0.6, 0.1, 1.0, 0.5)

    def test_diverse_scales(self):
        scales = [p.reported_scale for p in design_profiles()]
        assert max(scales) / min(scales) > 1e3
