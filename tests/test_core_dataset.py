"""Tests for the offline dataset: sampling plan, persistence, queries."""

import numpy as np
import pytest

from repro.core.dataset import (
    OfflineDataset,
    build_offline_dataset,
    sample_recipe_sets,
)
from repro.core.qor import QoRIntention
from repro.errors import TrainingError
from repro.insights.schema import INSIGHT_DIMS


class TestSamplingPlan:
    def test_starts_with_empty_and_singletons(self):
        sets = sample_recipe_sets(40, 60, seed=0, design="D1")
        assert sets[0] == tuple([0] * 40)
        for index in range(1, 41):
            assert sum(sets[index]) == 1

    def test_deduplicated(self):
        sets = sample_recipe_sets(40, 176, seed=0, design="D1")
        assert len(set(sets)) == len(sets) == 176

    def test_combo_sizes_bounded(self):
        sets = sample_recipe_sets(40, 176, seed=0, design="D2")
        for bits in sets[41:]:
            assert 2 <= sum(bits) <= 6

    def test_deterministic_per_design(self):
        a = sample_recipe_sets(40, 100, seed=0, design="D3")
        b = sample_recipe_sets(40, 100, seed=0, design="D3")
        assert a == b

    def test_designs_get_different_combos(self):
        a = sample_recipe_sets(40, 100, seed=0, design="D3")
        b = sample_recipe_sets(40, 100, seed=0, design="D4")
        assert a[41:] != b[41:]


class TestDataset:
    def test_sizes(self, mini_dataset):
        assert len(mini_dataset) == 3 * 48
        assert set(mini_dataset.designs()) == {"D6", "D10", "D11"}

    def test_insights_shape(self, mini_dataset):
        for design in mini_dataset.designs():
            assert mini_dataset.insight_for(design).shape == (INSIGHT_DIMS,)

    def test_scores_zero_mean(self, mini_dataset):
        for design in mini_dataset.designs():
            scores = mini_dataset.scores_for(design)
            assert abs(scores.mean()) < 1e-9

    def test_best_known_is_argmax(self, mini_dataset):
        point, score = mini_dataset.best_known("D6")
        scores = mini_dataset.scores_for("D6")
        assert score == pytest.approx(scores.max())
        assert point.design == "D6"

    def test_unknown_design_raises(self, mini_dataset):
        with pytest.raises(TrainingError):
            mini_dataset.by_design("D99")
        with pytest.raises(TrainingError):
            mini_dataset.insight_for("D99")

    def test_restricted_to(self, mini_dataset):
        sub = mini_dataset.restricted_to(["D6"])
        assert sub.designs() == ["D6"]
        assert len(sub) == 48
        assert "D10" not in sub.insights

    def test_save_load_roundtrip(self, mini_dataset, tmp_path):
        path = tmp_path / "archive.pkl"
        mini_dataset.save(path)
        loaded = OfflineDataset.load(path)
        assert len(loaded) == len(mini_dataset)
        assert loaded.designs() == mini_dataset.designs()
        np.testing.assert_allclose(
            loaded.insight_for("D6"), mini_dataset.insight_for("D6")
        )

    def test_cache_path_short_circuits(self, mini_dataset, tmp_path):
        path = tmp_path / "cache.pkl"
        mini_dataset.save(path)
        loaded = build_offline_dataset(
            designs=["completely", "ignored"], cache_path=path
        )
        assert len(loaded) == len(mini_dataset)

    def test_intention_changes_scores(self, mini_dataset):
        default = mini_dataset.scores_for("D10")
        tns_only = mini_dataset.scores_for(
            "D10", QoRIntention(metrics=(("tns_ns", 1.0, False),))
        )
        assert not np.allclose(default, tns_only)

    def test_qor_keys_complete(self, mini_dataset):
        for point in mini_dataset.points[:10]:
            assert {"tns_ns", "power_mw", "drc_count"} <= set(point.qor)

    def test_recipe_effects_visible(self, mini_dataset):
        """Different recipe sets must yield different QoR (non-degenerate)."""
        for design in mini_dataset.designs():
            powers = {p.qor["power_mw"] for p in mini_dataset.by_design(design)}
            assert len(powers) > 10
