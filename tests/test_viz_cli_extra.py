"""Additional coverage: viz edge cases, insight describe, report renderers."""

import numpy as np

from repro.flow.report import render_timing_report
from repro.netlist.generator import generate_netlist
from repro.timing.constraints import default_constraints
from repro.timing.sta import TimingReport, run_sta
from repro.viz import ascii_heatmap, sparkline, trajectory_panel

from conftest import tiny_profile


class TestVizEdgeCases:
    def test_constant_grid(self):
        text = ascii_heatmap(np.full((2, 2), 3.0), legend=False)
        # All cells identical -> all minimum shade.
        body = [l.strip("|") for l in text.splitlines()]
        assert set("".join(body)) <= {" "}

    def test_explicit_bounds_clip(self):
        grid = np.array([[0.0, 10.0]])
        text = ascii_heatmap(grid, vmin=0.0, vmax=1.0, legend=False)
        assert text.splitlines()[-1].strip("|")[-1] == "@"

    def test_row_zero_at_bottom(self):
        grid = np.array([[0.0, 0.0], [9.0, 9.0]])  # row 1 is hot
        lines = ascii_heatmap(grid, legend=False).splitlines()
        assert lines[0] == "|@@|"   # top line = last row
        assert lines[1] == "|  |"

    def test_sparkline_constant(self):
        assert set(sparkline([2.0, 2.0, 2.0])) == {"▁"}

    def test_panel_alignment(self):
        text = trajectory_panel(["short", "a-longer-name"], [[1], [2]])
        starts = [line.index("▁") for line in text.splitlines()
                  if "▁" in line]
        assert len(set(starts)) == 1


class TestTimingReportRenderer:
    def test_no_critical_path_branch(self, small_netlist):
        empty = TimingReport(
            wns_ps=1.0, tns_ps=0.0, hold_wns_ps=1.0, hold_tns_ps=0.0,
            violating_endpoints=0, hold_violating_endpoints=0,
            endpoint_count=0,
        )
        text = render_timing_report(small_netlist, empty)
        assert "no critical path traced" in text

    def test_arrival_column_monotone(self):
        profile = tiny_profile("TRR", sim_gate_count=200,
                               clock_tightness=1.02)
        netlist = generate_netlist(profile, seed=77)
        from repro.placement.placer import PlacerParams, place

        place(netlist, PlacerParams(), seed=77)
        report = run_sta(netlist, default_constraints(netlist), None)
        text = render_timing_report(netlist, report)
        arrivals = []
        for line in text.splitlines():
            parts = line.split()
            if len(parts) >= 5 and parts[0] in netlist.cells:
                arrivals.append(float(parts[-1]))
        assert arrivals == sorted(arrivals)


class TestInsightDescribeOrdering:
    def test_describe_matches_schema_order(self, flow_result, small_profile):
        from repro.insights.extractor import InsightExtractor
        from repro.insights.schema import insight_schema

        vector = InsightExtractor().extract(flow_result, small_profile)
        lines = vector.describe()
        for field, line in zip(insight_schema(), lines):
            assert field.description in line
            assert field.category in line
