"""Tests for the design-dependent power tradeoffs (gating overhead, Vt)."""


from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.runner import run_flow
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.power.analysis import analyze_power

from conftest import tiny_profile


def _power_delta_from_gating(activity: float, efficiency: float = 0.8) -> float:
    """Relative total-power change from enabling clock gating."""
    profile = tiny_profile(f"TG{int(activity*100)}", activity=activity,
                           register_ratio=0.3, sim_gate_count=220)
    netlist = generate_netlist(profile, seed=13)
    place(netlist, PlacerParams(), seed=13)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=13)
    off = analyze_power(netlist, tree, clock_gating_efficiency=0.0)
    on = analyze_power(netlist, tree, clock_gating_efficiency=efficiency)
    return (on.total_mw - off.total_mw) / off.total_mw


class TestClockGatingTradeoff:
    def test_idle_design_saves_power(self):
        assert _power_delta_from_gating(activity=0.05) < -0.02

    def test_gating_is_design_dependent(self):
        """Gating must pay off far less (relatively) on busy designs."""
        idle_saving = _power_delta_from_gating(activity=0.05)
        busy_saving = _power_delta_from_gating(activity=0.6)
        assert idle_saving < busy_saving

    def test_overhead_visible_at_full_activity(self):
        """With (almost) no idle time, the gate cells are pure overhead on
        the sequential clock-pin component."""
        profile = tiny_profile("TGF", activity=0.9, register_ratio=0.3)
        netlist = generate_netlist(profile, seed=13)
        place(netlist, PlacerParams(), seed=13)
        tree = synthesize_clock_tree(netlist, CtsParams(), seed=13)
        off = analyze_power(netlist, tree, clock_gating_efficiency=0.0)
        on = analyze_power(netlist, tree, clock_gating_efficiency=0.9)
        # Sequential power can go *up*: overhead 0.27 vs gated ~0.1.
        assert on.sequential_mw > off.sequential_mw * 0.95


class TestVtSwapTradeoff:
    def test_low_vt_trades_leakage_for_timing(self, small_profile):
        slow = run_flow(
            small_profile,
            FlowParameters(opt=OptParams(vt_swap_bias=0.7,
                                         leakage_recovery=0.0)),
            seed=7,
        )
        fast = run_flow(
            small_profile,
            FlowParameters(opt=OptParams(vt_swap_bias=1.4,
                                         leakage_recovery=0.0)),
            seed=7,
        )
        assert fast.qor["leakage_mw"] > slow.qor["leakage_mw"]
        # Faster gates can only help (or not hurt) the pre-opt timing.
        from repro.flow.stages import FlowStage

        slow_pre = slow.snapshot(FlowStage.OPTIMIZATION).get("pre_opt_tns_ps")
        fast_pre = fast.snapshot(FlowStage.OPTIMIZATION).get("pre_opt_tns_ps")
        assert fast_pre <= slow_pre + 1e-6
