"""Golden regression pins: deterministic outputs that must not drift.

These tests pin exact (to float tolerance) values of the deterministic
pipeline so that accidental physics or RNG-stream changes are caught
immediately.  If a change is *intentional* (e.g. a calibration fix),
regenerate the pins with::

    python tests/test_regression_golden.py

which prints the current values in copy-pasteable form.
"""

import pytest

from repro.flow.parameters import FlowParameters
from repro.flow.runner import run_flow
from repro.netlist.generator import generate_netlist
from repro.netlist.profiles import get_profile
from repro.recipes.apply import apply_recipe_set
from repro.recipes.catalog import default_catalog

# Pinned flow outputs for (design, seed 0, default parameters).
GOLDEN_DEFAULT = {
    "D11": {"tns_ns": 0.0, "power_mw": 0.0165388985, "drc_count": 0.0},
    "D6": {"tns_ns": 0.0, "power_mw": 60.5438731533, "drc_count": 0.0},
}

# Pinned flow outputs for D11 with a fixed recipe pair.
GOLDEN_RECIPE = {"tns_ns": 0.0018626636, "power_mw": 0.0164421059}

_REL = 2e-3  # float64 pipeline, generous rounding for cross-platform drift


def _run_default(design):
    return run_flow(design, FlowParameters(), seed=0)


def _run_recipe():
    catalog = default_catalog()
    bits = catalog.subset_from_names(["intent_power_first", "cts_loose_skew"])
    return run_flow("D11", apply_recipe_set(bits, catalog), seed=0)


class TestGoldenFlow:
    @pytest.mark.parametrize("design", sorted(GOLDEN_DEFAULT))
    def test_default_flow_pinned(self, design):
        result = _run_default(design)
        for key, expected in GOLDEN_DEFAULT[design].items():
            measured = result.qor[key]
            if expected == 0.0:
                assert measured == pytest.approx(0.0, abs=1e-6), (design, key)
            else:
                assert measured == pytest.approx(expected, rel=_REL), (
                    design, key, measured
                )

    def test_recipe_flow_pinned(self):
        result = _run_recipe()
        for key, expected in GOLDEN_RECIPE.items():
            assert result.qor[key] == pytest.approx(expected, rel=_REL), (
                key, result.qor[key]
            )

    def test_netlist_structure_pinned(self):
        netlist = generate_netlist(get_profile("D11"), seed=0)
        assert netlist.cell_count == 401
        assert netlist.net_count == 402
        assert netlist.clock.period_ps == pytest.approx(1114.174, rel=1e-3)


def _print_current():
    print("GOLDEN_DEFAULT = {")
    for design in sorted(GOLDEN_DEFAULT):
        qor = _run_default(design).qor
        print(f'    "{design}": {{"tns_ns": {qor["tns_ns"]:.4f}, '
              f'"power_mw": {qor["power_mw"]:.4f}, '
              f'"drc_count": {qor["drc_count"]:.1f}}},')
    print("}")
    qor = _run_recipe().qor
    print(f'GOLDEN_RECIPE = {{"tns_ns": {qor["tns_ns"]:.4f}, '
          f'"power_mw": {qor["power_mw"]:.4f}}}')


if __name__ == "__main__":
    _print_current()
