"""Distributed actor/learner online loop: determinism, elasticity, async.

The contract under test (ISSUE 7):

- **sync** mode is bit-identical to the serial
  :class:`~repro.core.online.OnlineFineTuner` at any actor count —
  proposals, scores, model weights, and the checkpoint *bytes* — even
  while seeded chaos kills actors mid-run;
- a mid-run kill of the learner resumes from its checkpoint
  bit-identically to an uninterrupted run;
- **async** mode completes every iteration with every experience record
  accounted for, bounded by ``max_policy_lag``, surviving actor kills;
- a respawn-budget-dry pool degrades to in-process execution (or raises
  when ``degrade_to_serial`` is off).

The flow callable is the cheap deterministic stand-in used across the
online tests (module-level so actor processes can pickle it).
"""

import numpy as np
import pytest

from repro.core.dataset import DataPoint, OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.online import OnlineConfig, OnlineFineTuner
from repro.distributed import (
    DistributedConfig,
    DistributedOnlineFineTuner,
    fine_tuner_for,
)
from repro.errors import RuntimeConfigError, TrainingError, WorkerPoolError
from repro.flow.result import FlowResult
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS
from repro.runtime import checkpoint_digest

DESIGN = "D6"  # real profile name: the loop resolves it via get_profile()


@pytest.fixture(scope="module")
def archive():
    """A tiny synthetic archive (no real flow runs)."""
    rng = np.random.default_rng(0)
    points = []
    insights = {DESIGN: InsightVector(
        DESIGN, rng.normal(size=(INSIGHT_DIMS,)), {}
    )}
    for _ in range(30):
        bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
        qor = {key: float(rng.uniform(0.5, 2.0))
               for key in REQUIRED_QOR_KEYS}
        points.append(DataPoint(DESIGN, bits, qor))
    return OfflineDataset(points=points, insights=insights, seed=0)


def fake_flow(design, params, seed=0):
    """Deterministic per-parameter QoR, no simulation."""
    fingerprint = hash((
        round(params.placer.effort, 6),
        round(params.opt.vt_swap_bias, 6),
        round(params.route.effort, 6),
    ))
    base = 1.0 + (abs(fingerprint) % 1000) / 1000.0
    return FlowResult(
        design=str(design),
        qor={key: base * (index + 1) * 0.1
             for index, key in enumerate(REQUIRED_QOR_KEYS)},
    )


def make_config(iterations=4, distributed=None, **overrides):
    settings = dict(
        iterations=iterations, k=3, insight_refresh=0.0, seed=3,
        distributed=distributed,
    )
    settings.update(overrides)
    return OnlineConfig(**settings)


def run_loop(archive, config):
    model = InsightAlignModel(seed=9)
    with fine_tuner_for(config, flow_fn=fake_flow) as tuner:
        result = tuner.run(model, archive, DESIGN)
        stats = (tuner.actor_stats()
                 if isinstance(tuner, DistributedOnlineFineTuner) else {})
    return model, result, stats


def assert_same_trajectory(result_a, result_b):
    assert [r.recipe_sets for r in result_a.records] == \
           [r.recipe_sets for r in result_b.records]
    assert [r.scores for r in result_a.records] == \
           [r.scores for r in result_b.records]
    assert [r.qors for r in result_a.records] == \
           [r.qors for r in result_b.records]
    assert [r.best_score_so_far for r in result_a.records] == \
           [r.best_score_so_far for r in result_b.records]


def assert_same_weights(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert state_a.keys() == state_b.keys()
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


class TestConfigValidation:
    def test_defaults_validate(self):
        config = DistributedConfig()
        assert config.actors == 1 and config.mode == "sync"
        assert config.window(5) == 10  # k * (max_policy_lag + 1)
        assert config.replace(queue_capacity=7).window(5) == 7

    @pytest.mark.parametrize("overrides", [
        dict(actors=0),
        dict(mode="turbo"),
        dict(max_policy_lag=-1),
        dict(max_actor_respawns=-1),
        dict(queue_capacity=0),
        dict(kill_rate=1.5),
        dict(start_method="threads"),
        dict(poll_s=0.0),
    ])
    def test_bad_values_are_typed(self, overrides):
        with pytest.raises(RuntimeConfigError):
            DistributedConfig(**overrides)

    def test_online_config_rejects_wrong_type(self):
        with pytest.raises(TrainingError, match="DistributedConfig"):
            OnlineConfig(distributed="async")

    def test_serial_tuner_rejects_distributed_config(self):
        config = make_config(distributed=DistributedConfig())
        with pytest.raises(TrainingError, match="DistributedOnlineFineTuner"):
            OnlineFineTuner(config)

    def test_distributed_tuner_requires_distributed_config(self):
        with pytest.raises(TrainingError, match="config.distributed"):
            DistributedOnlineFineTuner(make_config())

    def test_factory_dispatches_on_config(self):
        serial = fine_tuner_for(make_config(), flow_fn=fake_flow)
        assert type(serial) is OnlineFineTuner
        serial.close()
        config = make_config(distributed=DistributedConfig())
        distributed = fine_tuner_for(config, flow_fn=fake_flow)
        assert isinstance(distributed, DistributedOnlineFineTuner)
        distributed.close()

    def test_tuner_is_a_context_manager(self, archive):
        with OnlineFineTuner(make_config(iterations=1),
                             flow_fn=fake_flow) as tuner:
            result = tuner.run(InsightAlignModel(seed=9), archive, DESIGN)
        assert len(result.records) == 1


class TestSyncBitIdentity:
    """sync mode == the serial loop, down to the checkpoint bytes."""

    def serial_reference(self, archive, tmp_path):
        ckpt = str(tmp_path / "serial.ck")
        model, result, _ = run_loop(
            archive, make_config(checkpoint_path=ckpt)
        )
        return model, result, checkpoint_digest(ckpt)

    @pytest.mark.parametrize("actors", [1, 2])
    def test_matches_serial_including_checkpoint_bytes(
        self, archive, tmp_path, actors
    ):
        serial_model, serial_result, serial_digest = \
            self.serial_reference(archive, tmp_path)
        ckpt = str(tmp_path / f"sync{actors}.ck")
        model, result, stats = run_loop(archive, make_config(
            checkpoint_path=ckpt,
            distributed=DistributedConfig(actors=actors),
        ))
        assert_same_trajectory(serial_result, result)
        assert_same_weights(serial_model, model)
        assert checkpoint_digest(ckpt) == serial_digest
        assert stats["records_total"] == 4 * 3
        assert not stats["degraded"]

    def test_chaos_kills_do_not_perturb_the_trajectory(
        self, archive, tmp_path
    ):
        """Actors die mid-run (seeded), tasks re-dispatch — and the run
        is still bit-identical to serial, checkpoint bytes included."""
        serial_model, serial_result, serial_digest = \
            self.serial_reference(archive, tmp_path)
        ckpt = str(tmp_path / "chaos.ck")
        model, result, stats = run_loop(archive, make_config(
            checkpoint_path=ckpt,
            distributed=DistributedConfig(
                actors=2, kill_rate=0.3, kill_seed=11,
                max_actor_respawns=64,
            ),
        ))
        assert stats["restarts"] > 0, "the seeded chaos killed no actors"
        assert stats["reissued"] > 0
        assert_same_trajectory(serial_result, result)
        assert_same_weights(serial_model, model)
        assert checkpoint_digest(ckpt) == serial_digest

    def test_budget_dry_pool_degrades_in_process(self, archive, tmp_path):
        """kill_rate=1 with no respawns: every actor dies on first task;
        the loop finishes in-process, still bit-identical to serial."""
        serial_model, serial_result, serial_digest = \
            self.serial_reference(archive, tmp_path)
        ckpt = str(tmp_path / "degraded.ck")
        model, result, stats = run_loop(archive, make_config(
            checkpoint_path=ckpt,
            distributed=DistributedConfig(
                actors=2, kill_rate=1.0, kill_seed=1,
                max_actor_respawns=0,
            ),
        ))
        assert stats["degraded"]
        assert_same_trajectory(serial_result, result)
        assert_same_weights(serial_model, model)
        assert checkpoint_digest(ckpt) == serial_digest

    def test_budget_dry_pool_raises_when_degrade_off(self, archive):
        config = make_config(distributed=DistributedConfig(
            actors=2, kill_rate=1.0, kill_seed=1,
            max_actor_respawns=0, degrade_to_serial=False,
        ))
        with fine_tuner_for(config, flow_fn=fake_flow) as tuner:
            with pytest.raises(WorkerPoolError, match="respawn budget"):
                tuner.run(InsightAlignModel(seed=9), archive, DESIGN)


class TestCheckpointResume:
    """Kill the learner between iterations; resume bit-identically."""

    @pytest.mark.parametrize("actors", [1, 2])
    def test_resume_matches_uninterrupted(self, archive, tmp_path, actors):
        dist = DistributedConfig(actors=actors)
        full_ckpt = str(tmp_path / "full.ck")
        model_full, result_full, _ = run_loop(archive, make_config(
            iterations=4, checkpoint_path=full_ckpt, distributed=dist,
        ))

        # The "killed" learner: same run, stopped after two iterations
        # (its checkpoint is what a mid-run kill leaves behind).
        part_ckpt = str(tmp_path / "part.ck")
        run_loop(archive, make_config(
            iterations=2, checkpoint_path=part_ckpt, distributed=dist,
        ))
        resumed_ckpt = str(tmp_path / "resumed.ck")
        model_resumed, result_resumed, _ = run_loop(archive, make_config(
            iterations=4, checkpoint_path=resumed_ckpt,
            resume_from=part_ckpt, distributed=dist,
        ))

        assert len(result_resumed.records) == 4
        assert_same_trajectory(result_full, result_resumed)
        assert_same_weights(model_full, model_resumed)
        assert checkpoint_digest(resumed_ckpt) == \
            checkpoint_digest(full_ckpt)

    def test_resumed_distributed_matches_serial_bytes(
        self, archive, tmp_path
    ):
        """The strongest form: serial uninterrupted vs distributed
        killed-and-resumed — same final checkpoint bytes."""
        serial_ckpt = str(tmp_path / "serial.ck")
        run_loop(archive, make_config(
            iterations=4, checkpoint_path=serial_ckpt,
        ))
        part_ckpt = str(tmp_path / "part.ck")
        run_loop(archive, make_config(
            iterations=2, checkpoint_path=part_ckpt,
            distributed=DistributedConfig(actors=2),
        ))
        resumed_ckpt = str(tmp_path / "resumed.ck")
        run_loop(archive, make_config(
            iterations=4, checkpoint_path=resumed_ckpt,
            resume_from=part_ckpt,
            distributed=DistributedConfig(actors=2),
        ))
        assert checkpoint_digest(resumed_ckpt) == \
            checkpoint_digest(serial_ckpt)


class TestAsyncMode:
    def run_async(self, archive, **dist_overrides):
        dist = DistributedConfig(
            actors=dist_overrides.pop("actors", 3), mode="async",
            **dist_overrides,
        )
        return run_loop(archive, make_config(distributed=dist))

    def test_completes_all_iterations(self, archive):
        model, result, stats = self.run_async(archive)
        assert len(result.records) == 4
        # Every iteration accounts for all K proposals.
        for record in result.records:
            assert len(record.recipe_sets) + len(record.failures) == 3
        assert stats["records_total"] == 4 * 3
        assert stats["dropped_stale"] == 0
        assert stats["broadcasts"] > 0
        # The model learned from the experience stream.
        initial = InsightAlignModel(seed=9).state_dict()
        final = model.state_dict()
        assert any(
            not np.array_equal(initial[n], final[n]) for n in final
        )

    def test_survives_actor_kills_without_losing_experience(self, archive):
        model, result, stats = self.run_async(
            archive, kill_rate=0.5, kill_seed=7, max_actor_respawns=256,
        )
        assert len(result.records) == 4
        assert stats["restarts"] > 0, "the seeded chaos killed no actors"
        assert stats["reissued"] > 0
        # Arrivals minus stale drops == every record the updates consumed.
        consumed = stats["records_total"] - stats["dropped_stale"]
        assert consumed == 4 * 3
        assert not stats["degraded"]

    def test_zero_lag_drops_stale_records(self, archive):
        """max_policy_lag=0 with more actors than K forces staleness:
        records proposed >= 1 version ago are dropped and re-proposed."""
        model, result, stats = self.run_async(
            archive, actors=4, max_policy_lag=0,
        )
        assert len(result.records) == 4
        assert stats["dropped_stale"] > 0
        consumed = stats["records_total"] - stats["dropped_stale"]
        assert consumed == 4 * 3

    def test_degrades_in_process_and_completes(self, archive):
        model, result, stats = self.run_async(
            archive, actors=2, kill_rate=1.0, kill_seed=1,
            max_actor_respawns=0,
        )
        assert len(result.records) == 4
        assert stats["degraded"]
        consumed = stats["records_total"] - stats["dropped_stale"]
        assert consumed == 4 * 3

    def test_checkpoint_resume_completes(self, archive, tmp_path):
        """Async resume: not bit-identical to an uninterrupted async run
        (arrival order is wall-clock), but the loop restores its state
        and finishes the remaining iterations."""
        dist = DistributedConfig(actors=2, mode="async")
        part_ckpt = str(tmp_path / "part.ck")
        run_loop(archive, make_config(
            iterations=2, checkpoint_path=part_ckpt, distributed=dist,
        ))
        model, result, stats = run_loop(archive, make_config(
            iterations=4, resume_from=part_ckpt, distributed=dist,
        ))
        assert len(result.records) == 4
        assert [r.iteration for r in result.records] == [0, 1, 2, 3]
