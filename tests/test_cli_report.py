"""Tests for the CLI and the text report renderers."""

import pytest

from repro.cli import main
from repro.flow.report import render_flow_summary, render_timing_report
from repro.flow.runner import run_flow
from repro.netlist.generator import generate_netlist



class TestReports:
    def test_flow_summary_sections(self, flow_result):
        text = render_flow_summary(flow_result)
        for section in ("placement", "clock tree", "routing",
                        "optimization", "signoff QoR", "power breakdown"):
            assert section in text
        assert flow_result.design in text

    def test_timing_report_path_breakdown(self, small_profile):
        result = run_flow(small_profile, seed=7)
        netlist = generate_netlist(small_profile, seed=7)
        text = render_timing_report(netlist, result.timing)
        assert "WNS" in text and "TNS" in text
        assert "worst path" in text
        # At least launch and capture registers appear.
        assert text.count("reg_") >= 1 or "holdbuf" in text


class TestCliListing(object):
    def test_list_designs(self, capsys):
        assert main(["list", "designs"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "D17" in out

    def test_list_recipes(self, capsys):
        assert main(["list", "recipes"]) == 0
        out = capsys.readouterr().out
        assert "cong_spread_wide" in out
        assert "Clock tree" in out

    def test_list_insights(self, capsys):
        assert main(["list", "insights"]) == 0
        out = capsys.readouterr().out
        assert "weak_cell_pct" in out


class TestCliFlow:
    def test_run_flow_plain(self, capsys):
        assert main(["run-flow", "D11"]) == 0
        out = capsys.readouterr().out
        assert "Flow summary: D11" in out
        assert "signoff QoR" in out

    def test_run_flow_with_recipes_and_reports(self, capsys):
        code = main([
            "run-flow", "D11", "--recipes",
            "cts_tight_skew,intent_power_first", "--timing", "--insights",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "Congestion level" in out

    def test_unknown_recipe_fails_loudly(self):
        from repro.errors import RecipeError

        with pytest.raises(RecipeError):
            main(["run-flow", "D11", "--recipes", "no_such_recipe"])

    def test_run_flow_heatmap(self, capsys):
        assert main(["run-flow", "D11", "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert "placement density" in out
        assert "routing congestion" in out
        assert "scale:" in out

    def test_stats_command(self, capsys):
        assert main(["stats", "D11"]) == 0
        out = capsys.readouterr().out
        assert "Netlist statistics: D11" in out
        assert "rent exponent" in out


class TestCliPipeline:
    def test_dataset_align_recommend_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "archive.pkl"
        model = tmp_path / "model.npz"
        assert main([
            "build-dataset", "--out", str(archive),
            "--designs", "D10,D11,D16", "--sets-per-design", "20",
        ]) == 0
        assert main([
            "align", "--dataset", str(archive), "--out", str(model),
            "--holdout", "D16", "--epochs", "2", "--pairs-per-design", "20",
        ]) == 0
        assert main([
            "recommend", "--model", str(model), "--dataset", str(archive),
            "--design", "D16", "--k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "top-2 recipe sets for D16" in out
        assert "logP" in out
