"""Additional online-loop tests: proposal hygiene, config, updates."""

import numpy as np

from repro.core.beam import beam_search
from repro.core.model import InsightAlignModel
from repro.core.online import OnlineConfig, OnlineFineTuner
from repro.core.policy import sequence_log_prob_value
from repro.insights.schema import INSIGHT_DIMS
from repro.utils.rng import derive_rng


class TestProposalMachinery:
    def test_propose_skips_seen(self):
        model = InsightAlignModel(seed=2)
        tuner = OnlineFineTuner(OnlineConfig(k=3, explore_samples=1, seed=0))
        insight = np.random.default_rng(0).normal(size=(INSIGHT_DIMS,))
        rng = derive_rng(0, "prop")
        # Poison the seen-set with the entire beam frontier.
        frontier = {
            c.recipe_set for c in beam_search(model, insight, beam_width=12)
        }
        picks = tuner._propose(model, insight, frontier, rng)
        assert picks
        assert not (set(picks) & frontier)

    def test_propose_without_history(self):
        model = InsightAlignModel(seed=2)
        tuner = OnlineFineTuner(OnlineConfig(k=4, seed=0))
        insight = np.random.default_rng(1).normal(size=(INSIGHT_DIMS,))
        picks = tuner._propose(model, insight, set(), derive_rng(1, "p"))
        assert len(picks) == 4
        assert len(set(picks)) == 4


class TestOnlineUpdates:
    def test_update_moves_policy_toward_winner(self):
        """After updates on a clear preference, the winner gains likelihood."""
        model = InsightAlignModel(seed=4)
        tuner = OnlineFineTuner(OnlineConfig(
            learning_rate=3e-3, ppo_weight=0.0, dpo_pairs_per_update=24, seed=0
        ))
        from repro.nn.optim import Adam

        optimizer = Adam(model.parameters(), lr=3e-3)
        rng = derive_rng(3, "upd")
        insight = np.random.default_rng(2).normal(size=(INSIGHT_DIMS,))
        winner = tuple(int(b) for b in rng.integers(0, 2, size=40))
        loser = tuple(int(b) for b in rng.integers(0, 2, size=40))
        observed = [(winner, 2.0), (loser, -2.0)]
        before = (
            sequence_log_prob_value(model, insight, winner)
            - sequence_log_prob_value(model, insight, loser)
        )
        for _ in range(5):
            tuner._update(model, optimizer, insight, [winner, loser],
                          [2.0, -2.0], observed, rng)
        after = (
            sequence_log_prob_value(model, insight, winner)
            - sequence_log_prob_value(model, insight, loser)
        )
        assert after > before

    def test_update_noop_without_signal(self):
        model = InsightAlignModel(seed=4)
        tuner = OnlineFineTuner(OnlineConfig(ppo_weight=0.0, seed=0))
        from repro.nn.optim import Adam

        optimizer = Adam(model.parameters(), lr=1e-3)
        insight = np.random.default_rng(2).normal(size=(INSIGHT_DIMS,))
        weights_before = model.parameters()[0].data.copy()
        # Single observation -> no pairs -> no update.
        tuner._update(
            model, optimizer, insight, [tuple([0] * 40)], [1.0],
            [(tuple([0] * 40), 1.0)], derive_rng(0, "n"),
        )
        np.testing.assert_array_equal(weights_before, model.parameters()[0].data)
