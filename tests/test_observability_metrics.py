"""Unit tests for the metrics registry, label families, and profiling."""

import json
import threading

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PROFILE_HISTOGRAM,
    get_registry,
    profile_block,
    profile_stats,
    profiled,
    set_registry,
)
from repro.runtime.clock import VirtualClock


class TestCounter:
    def test_unlabelled_fast_path(self):
        counter = Counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labels_partition_the_family(self):
        counter = Counter("flow_failures_total")
        counter.inc(type="TimeoutError")
        counter.inc(2, type="PlacementError")
        assert counter.value_of(type="TimeoutError") == 1
        assert counter.value_of(type="PlacementError") == 2
        assert counter.value == 0  # unlabelled child untouched

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_bound_child(self):
        counter = Counter("served_total")
        bound = counter.bind(service="svc9")
        bound.inc(3)
        assert bound.value == 3
        assert counter.value_of(service="svc9") == 3

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok").inc(**{"bad-label": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_labelled_children(self):
        gauge = Gauge("loss")
        gauge.set(0.5, phase="align")
        gauge.set(0.25, phase="online")
        assert gauge.value_of(phase="align") == 0.5
        assert gauge.value_of(phase="online") == 0.25


class TestHistogram:
    def test_summary_and_percentiles(self):
        histogram = Histogram("latency_seconds")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        summary = histogram.summary()
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_reservoir_keeps_exact_lifetime_aggregates(self):
        histogram = Histogram("h", max_samples=4)
        for value in range(100):
            histogram.observe(float(value))
        # Exact lifetime stats survive the bounded reservoir...
        assert histogram.count == 100
        summary = histogram.summary()
        assert summary["min"] == 0.0 and summary["max"] == 99.0
        # ...while percentiles cover only the recent window.
        assert histogram.percentile(50) >= 96.0

    def test_empty_summary_is_zeroed(self):
        summary = Histogram("empty").summary()
        assert summary["count"] == 0 and summary["p99"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "runs").inc(3, status="ok")
        registry.gauge("depth").set(2)
        registry.histogram("wait_s").observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["runs_total"]["kind"] == "counter"
        assert snapshot["runs_total"]["values"]['{status="ok"}'] == 3
        assert snapshot["depth"]["values"]["{}"] == 2
        assert snapshot["wait_s"]["values"]["{}"]["count"] == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "total runs").inc(2, status="failed")
        registry.histogram("latency_seconds").observe(1.0)
        text = registry.render_prometheus()
        assert "# HELP runs_total total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{status="failed"} 2' in text
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"} 1' in text
        assert "latency_seconds_sum 1" in text
        assert "latency_seconds_count 1" in text

    def test_set_registry_round_trip(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("racy_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestProfiling:
    def test_profiled_decorator_aggregates_per_site(self):
        registry = MetricsRegistry()
        clock = VirtualClock()

        @profiled(name="work", registry=registry, clock=clock)
        def work():
            clock.advance(0.25)
            return 42

        assert work() == 42
        assert work() == 42
        stats = profile_stats("work", registry=registry)
        assert stats["count"] == 2
        assert stats["total"] == pytest.approx(0.5)
        assert stats["p50"] == pytest.approx(0.25)

    def test_profiled_default_site_name(self):
        registry = MetricsRegistry()

        @profiled(registry=registry)
        def named_function():
            return None

        named_function()
        site = named_function.__profiled_site__
        assert site.endswith("named_function")
        histogram = registry.get(PROFILE_HISTOGRAM)
        assert histogram.summary(site=site)["count"] == 1

    def test_profile_block(self):
        registry = MetricsRegistry()
        clock = VirtualClock()
        with profile_block("phase", registry=registry, clock=clock):
            clock.advance(1.5)
        stats = profile_stats("phase", registry=registry)
        assert stats["count"] == 1
        assert stats["p95"] == pytest.approx(1.5)
