"""Cross-service serving-metrics aggregation (the ISSUE 9 satellite fix).

The bug: ``ServingMetrics`` auto-assigns ``svcN`` ids from a module-level
counter.  A registry that outlives that counter (fresh subprocess, module
reload) would hand a new service an id whose label children already carry
a predecessor's counts — silently *merging* two services' totals, so any
per-family rollup double-counted.  The fix: auto ids skip every
``service=`` label value already present in the registry, and each new
service materializes its children at birth so it is immediately visible
to that check.

Also covered: :func:`aggregate_serving_snapshot` sums counter families
with each label child counted exactly once, and merges histograms over
the *pooled* sample windows (not an average of per-service percentiles).
"""

import itertools

import numpy as np
import pytest

import repro.serving.metrics as serving_metrics
from repro.observability import MetricsRegistry, set_registry
from repro.serving.metrics import (
    ServingMetrics,
    aggregate_serving_snapshot,
    used_service_ids,
)


@pytest.fixture()
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


class TestServiceIdCollisions:
    def test_auto_ids_are_distinct(self, fresh_registry):
        ids = {ServingMetrics().service_id for _ in range(5)}
        assert len(ids) == 5

    def test_counter_reset_does_not_reuse_live_ids(self, fresh_registry,
                                                   monkeypatch):
        """A reused registry + reset module counter (the double-count
        repro) must still produce fresh ids."""
        first = ServingMetrics()
        first.submitted.inc(3)
        # Simulate a module reload: the id counter restarts at zero while
        # the registry (and first's label children) live on.
        monkeypatch.setattr(serving_metrics, "_SERVICE_IDS",
                            itertools.count())
        second = ServingMetrics()
        assert second.service_id != first.service_id
        second.submitted.inc(2)
        # No merge: each service still reports its own count.
        assert first.submitted.value == 3
        assert second.submitted.value == 2

    def test_new_service_visible_before_first_request(self, fresh_registry):
        metrics = ServingMetrics()
        # Immediately discoverable — not only after traffic arrives.
        assert metrics.service_id in used_service_ids(fresh_registry)

    def test_explicit_id_respected(self, fresh_registry):
        assert ServingMetrics(service_id="gw").service_id == "gw"


class TestAggregation:
    def test_counters_sum_each_child_once(self, fresh_registry):
        a, b = ServingMetrics(), ServingMetrics()
        a.submitted.inc(4)
        b.submitted.inc(6)
        a.cache_hits.inc(1)
        b.cache_misses.inc(3)
        snapshot = aggregate_serving_snapshot(fresh_registry)
        assert snapshot["requests"]["submitted"] == 10
        assert snapshot["cache"]["hits"] == 1
        assert snapshot["cache"]["misses"] == 3
        assert snapshot["cache"]["hit_rate"] == pytest.approx(0.25)
        assert set(snapshot["services"]) == {a.service_id, b.service_id}

    def test_services_filter_restricts_rollup(self, fresh_registry):
        a, b = ServingMetrics(), ServingMetrics()
        a.submitted.inc(4)
        b.submitted.inc(6)
        only_a = aggregate_serving_snapshot(
            fresh_registry, services=[a.service_id]
        )
        assert only_a["requests"]["submitted"] == 4
        assert only_a["services"] == [a.service_id]

    def test_histograms_pool_samples_exactly(self, fresh_registry):
        """The aggregated p99 is the percentile of the union of samples —
        not the mean of per-service p99s, which would understate the hot
        replica's tail."""
        a, b = ServingMetrics(), ServingMetrics()
        fast = [0.001] * 99
        slow = [1.0] * 99
        for value in fast:
            a.latency_s.observe(value)
        for value in slow:
            b.latency_s.observe(value)
        snapshot = aggregate_serving_snapshot(fresh_registry)
        merged = snapshot["latency_s"]
        assert merged["count"] == 198
        assert merged["min"] == pytest.approx(0.001)
        assert merged["max"] == pytest.approx(1.0)
        pooled = np.percentile(fast + slow, 99)
        assert merged["p99"] == pytest.approx(pooled)
        # The wrong rollup (average of per-service p99s) would be ~0.5.
        assert merged["p99"] > 0.9

    def test_empty_registry_aggregates_to_zeros(self, fresh_registry):
        snapshot = aggregate_serving_snapshot(fresh_registry)
        assert snapshot["requests"]["submitted"] == 0
        assert snapshot["cache"]["hit_rate"] == 0.0
        assert snapshot["latency_s"]["count"] == 0
        assert snapshot["services"] == []

    def test_snapshot_shape_matches_per_service(self, fresh_registry):
        metrics = ServingMetrics()
        metrics.submitted.inc()
        metrics.latency_s.observe(0.01)
        per_service = metrics.snapshot()
        aggregated = aggregate_serving_snapshot(fresh_registry)
        missing = set(per_service) - set(aggregated)
        assert not missing, f"aggregate lost keys: {missing}"
