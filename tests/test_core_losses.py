"""Tests for DPO (eq. 1), margin-DPO (eq. 2) and the PPO surrogate."""

import numpy as np
import pytest

from repro.core.dpo import dpo_loss, margin_dpo_loss, margin_dpo_loss_value
from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob_value
from repro.core.ppo import advantages_from_scores, ppo_loss
from repro.insights.schema import INSIGHT_DIMS
from repro.nn.optim import Adam


@pytest.fixture()
def model():
    return InsightAlignModel(seed=8)


@pytest.fixture(scope="module")
def insight():
    return np.random.default_rng(6).normal(size=(INSIGHT_DIMS,))


def _sets(rng, count=2):
    return [tuple(rng.integers(0, 2, size=40)) for _ in range(count)]


class TestDpo:
    def test_loss_positive(self, model, insight):
        rng = np.random.default_rng(0)
        winner, loser = _sets(rng)
        loss = dpo_loss(model, insight, winner, loser)
        assert loss.item() > 0

    def test_antisymmetric_preference(self, model, insight):
        rng = np.random.default_rng(0)
        a, b = _sets(rng)
        gap = sequence_log_prob_value(model, insight, a) - \
            sequence_log_prob_value(model, insight, b)
        loss_ab = dpo_loss(model, insight, a, b).item()
        loss_ba = dpo_loss(model, insight, b, a).item()
        # -log sigma(x) + -log sigma(-x) relation: both positive, ordered by gap.
        if gap > 0:
            assert loss_ab < loss_ba
        else:
            assert loss_ab >= loss_ba

    def test_beta_sharpens(self, model, insight):
        rng = np.random.default_rng(0)
        a, b = _sets(rng)
        soft = dpo_loss(model, insight, a, b, beta=0.1).item()
        sharp = dpo_loss(model, insight, a, b, beta=5.0).item()
        assert soft != sharp

    def test_training_reduces_dpo_loss(self, model, insight):
        rng = np.random.default_rng(1)
        winner, loser = _sets(rng)
        optimizer = Adam(model.parameters(), lr=5e-3)
        initial = dpo_loss(model, insight, winner, loser).item()
        for _ in range(30):
            optimizer.zero_grad()
            loss = dpo_loss(model, insight, winner, loser)
            loss.backward()
            optimizer.step()
        final = dpo_loss(model, insight, winner, loser).item()
        assert final < initial
        gap = sequence_log_prob_value(model, insight, winner) - \
            sequence_log_prob_value(model, insight, loser)
        assert gap > 0


class TestMarginDpo:
    def test_zero_when_margin_satisfied(self, model, insight):
        rng = np.random.default_rng(2)
        a, b = _sets(rng)
        # With identical QoRs the margin is 0; loss is hinge of -|gap| or
        # +|gap| depending on sign — pick an ordering that satisfies it.
        log_a = sequence_log_prob_value(model, insight, a)
        log_b = sequence_log_prob_value(model, insight, b)
        winner, loser = (a, b) if log_a > log_b else (b, a)
        loss = margin_dpo_loss_value(
            model, insight, winner, loser, qor_i=1.0, qor_j=0.999999, lam=0.0
        )
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_grows_with_qor_gap(self, model, insight):
        rng = np.random.default_rng(3)
        a, b = _sets(rng)
        small = margin_dpo_loss_value(model, insight, a, b, 1.0, 0.9, lam=2.0)
        large = margin_dpo_loss_value(model, insight, a, b, 2.0, 0.0, lam=2.0)
        assert large >= small

    def test_symmetric_in_pair_order(self, model, insight):
        """eq. 2 with (i, j) swapped gives the same loss."""
        rng = np.random.default_rng(4)
        a, b = _sets(rng)
        loss_ij = margin_dpo_loss_value(model, insight, a, b, 1.5, 0.5)
        loss_ji = margin_dpo_loss_value(model, insight, b, a, 0.5, 1.5)
        assert loss_ij == pytest.approx(loss_ji, abs=1e-9)

    def test_lambda_scales_margin(self, model, insight):
        rng = np.random.default_rng(5)
        a, b = _sets(rng)
        lam0 = margin_dpo_loss_value(model, insight, a, b, 1.0, 0.0, lam=0.0)
        lam4 = margin_dpo_loss_value(model, insight, a, b, 1.0, 0.0, lam=4.0)
        assert lam4 >= lam0

    def test_training_creates_required_gap(self, model, insight):
        rng = np.random.default_rng(6)
        winner, loser = _sets(rng)
        lam, dq = 2.0, 0.8
        optimizer = Adam(model.parameters(), lr=5e-3)
        for _ in range(60):
            optimizer.zero_grad()
            loss = margin_dpo_loss(
                model, insight, winner, loser, qor_i=dq, qor_j=0.0, lam=lam
            )
            if loss.item() == 0.0:
                break
            loss.backward()
            optimizer.step()
        gap = sequence_log_prob_value(model, insight, winner) - \
            sequence_log_prob_value(model, insight, loser)
        assert gap >= lam * dq - 0.2


class TestPpo:
    def test_positive_advantage_pushes_up(self, model, insight):
        rng = np.random.default_rng(7)
        (bits,) = _sets(rng, 1)
        old = sequence_log_prob_value(model, insight, bits)
        optimizer = Adam(model.parameters(), lr=2e-3)
        for _ in range(10):
            optimizer.zero_grad()
            loss = ppo_loss(model, insight, bits, old, advantage=1.0)
            loss.backward()
            optimizer.step()
        assert sequence_log_prob_value(model, insight, bits) > old

    def test_negative_advantage_pushes_down(self, model, insight):
        rng = np.random.default_rng(8)
        (bits,) = _sets(rng, 1)
        old = sequence_log_prob_value(model, insight, bits)
        optimizer = Adam(model.parameters(), lr=2e-3)
        for _ in range(10):
            optimizer.zero_grad()
            loss = ppo_loss(model, insight, bits, old, advantage=-1.0)
            loss.backward()
            optimizer.step()
        assert sequence_log_prob_value(model, insight, bits) < old

    def test_clipping_stops_gradient(self, model, insight):
        rng = np.random.default_rng(9)
        (bits,) = _sets(rng, 1)
        # old_log_prob far below current -> ratio >> 1+eps -> clipped branch
        old = sequence_log_prob_value(model, insight, bits) - 5.0
        model.zero_grad()
        loss = ppo_loss(model, insight, bits, old, advantage=1.0, clip_epsilon=0.2)
        loss.backward()
        max_grad = max(
            (np.abs(p.grad).max() for p in model.parameters() if p.grad is not None),
            default=0.0,
        )
        assert max_grad == pytest.approx(0.0, abs=1e-12)

    def test_bad_clip_raises(self, model, insight):
        with pytest.raises(ValueError):
            ppo_loss(model, insight, tuple([0] * 40), 0.0, 1.0, clip_epsilon=0.0)

    def test_advantages_centered(self):
        adv = advantages_from_scores([1.0, 2.0, 3.0])
        assert adv.mean() == pytest.approx(0.0, abs=1e-12)
        assert adv.std() == pytest.approx(1.0, abs=1e-12)

    def test_constant_scores_zero_advantage(self):
        adv = advantages_from_scores([2.0, 2.0, 2.0])
        assert np.all(adv == 0.0)
