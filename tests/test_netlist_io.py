"""Tests for Verilog / DEF interchange: write -> read roundtrips."""

import pytest

from repro.errors import NetlistError
from repro.netlist.generator import generate_netlist
from repro.netlist.io import apply_def, read_verilog, write_def, write_verilog
from repro.placement.placer import PlacerParams, place
from repro.techlib.library import build_library

from conftest import tiny_profile


@pytest.fixture(scope="module")
def design():
    profile = tiny_profile("TIO", sim_gate_count=150)
    netlist = generate_netlist(profile, seed=3)
    return profile, netlist


class TestVerilogRoundtrip:
    def test_topology_preserved(self, design, tmp_path):
        _, netlist = design
        path = tmp_path / "design.v"
        write_verilog(netlist, path)
        library = build_library(netlist.library.node.name)
        loaded = read_verilog(path, library)
        loaded.validate()
        assert loaded.cell_count == netlist.cell_count
        assert loaded.net_count == netlist.net_count
        assert sorted(loaded.primary_outputs) == sorted(netlist.primary_outputs)
        # Per-cell connectivity identical.
        for name, cell in netlist.cells.items():
            twin = loaded.cells[name]
            assert twin.cell_type.name == cell.cell_type.name
            assert twin.input_nets == cell.input_nets
            assert twin.output_net == cell.output_net

    def test_clock_period_preserved(self, design, tmp_path):
        _, netlist = design
        path = tmp_path / "design.v"
        write_verilog(netlist, path)
        loaded = read_verilog(path, build_library(netlist.library.node.name))
        assert loaded.clock is not None
        assert loaded.clock.period_ps == pytest.approx(netlist.clock.period_ps)
        assert loaded.nets["clk"].is_clock

    def test_fanout_preserved(self, design, tmp_path):
        _, netlist = design
        path = tmp_path / "design.v"
        write_verilog(netlist, path)
        loaded = read_verilog(path, build_library(netlist.library.node.name))
        for name, net in netlist.nets.items():
            assert loaded.nets[name].fanout == net.fanout, name

    def test_unknown_cell_rejected(self, tmp_path):
        path = tmp_path / "bad.v"
        path.write_text(
            "module bad (clk);\n  input clk;\n  wire n1;\n"
            "  MAGIC_X9 u1 (.A(clk), .Y(n1));\nendmodule\n"
        )
        with pytest.raises(NetlistError, match="unknown library cell"):
            read_verilog(path, build_library("28nm"))

    def test_missing_module_rejected(self, tmp_path):
        path = tmp_path / "empty.v"
        path.write_text("// nothing here\n")
        with pytest.raises(NetlistError, match="no module"):
            read_verilog(path, build_library("28nm"))


class TestDefRoundtrip:
    def test_placement_preserved(self, design, tmp_path):
        profile, _ = design
        netlist = generate_netlist(profile, seed=3)
        place(netlist, PlacerParams(), seed=3)
        path = tmp_path / "design.def"
        write_def(netlist, path)

        fresh = generate_netlist(profile, seed=3)
        placed = apply_def(fresh, path)
        movable = [c for c in netlist.cells.values() if c.position is not None]
        assert placed == len(movable)
        for cell in movable:
            x, y = cell.position
            fx, fy = fresh.cells[cell.name].position
            assert fx == pytest.approx(x, abs=1e-3)
            assert fy == pytest.approx(y, abs=1e-3)
        assert fresh.die_width_um == pytest.approx(netlist.die_width_um, abs=1e-3)

    def test_unknown_component_rejected(self, design, tmp_path):
        profile, _ = design
        netlist = generate_netlist(profile, seed=3)
        place(netlist, PlacerParams(), seed=3)
        path = tmp_path / "design.def"
        write_def(netlist, path)
        other = generate_netlist(tiny_profile("TIO2", sim_gate_count=100), seed=9)
        with pytest.raises(NetlistError, match="not in netlist"):
            apply_def(other, path)

    def test_flow_on_reloaded_netlist(self, design, tmp_path):
        """A netlist reloaded from Verilog runs the full timing chain."""
        from repro.cts.tree import CtsParams, synthesize_clock_tree
        from repro.timing.constraints import default_constraints
        from repro.timing.sta import run_sta

        profile, netlist = design
        v_path = tmp_path / "design.v"
        write_verilog(netlist, v_path)
        loaded = read_verilog(v_path, build_library(netlist.library.node.name))
        place(loaded, PlacerParams(), seed=3)
        tree = synthesize_clock_tree(loaded, CtsParams(), seed=3)
        report = run_sta(loaded, default_constraints(loaded), tree)
        assert report.endpoint_count > 0
