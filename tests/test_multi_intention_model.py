"""Model-level tests for the two-token intention-conditioned architecture."""

import numpy as np
import pytest

from repro.core.multi_intention import (
    IntentionConditionedModel,
    conditioned_insight,
)
from repro.core.qor import QoRIntention
from repro.insights.schema import INSIGHT_DIMS


@pytest.fixture(scope="module")
def model():
    return IntentionConditionedModel(seed=11)


@pytest.fixture(scope="module")
def packed():
    insight = np.random.default_rng(0).normal(size=(INSIGHT_DIMS,))
    return conditioned_insight(insight, QoRIntention())


class TestConditionedModel:
    def test_logit_shape(self, model, packed):
        logits = model.logits(packed)
        assert logits.shape == (40,)

    def test_batched_matches_single(self, model, packed):
        rng = np.random.default_rng(1)
        decisions = rng.integers(0, 2, size=(4, 40))
        insights = np.stack([packed + 0.01 * i for i in range(4)])
        batched = model.batched_logits(insights, decisions).numpy()
        for row in range(4):
            single = model.logits(insights[row], decisions[row]).numpy()
            np.testing.assert_allclose(single, batched[row], atol=1e-10)

    def test_intention_slots_matter(self, model):
        insight = np.random.default_rng(2).normal(size=(INSIGHT_DIMS,))
        power = conditioned_insight(
            insight, QoRIntention(metrics=(("power_mw", 1.0, False),))
        )
        tns = conditioned_insight(
            insight, QoRIntention(metrics=(("tns_ns", 1.0, False),))
        )
        a = model.logits(power).numpy()
        b = model.logits(tns).numpy()
        assert not np.allclose(a, b)

    def test_causality_preserved(self, model, packed):
        base = model.logits(packed, np.zeros(40, dtype=np.int64)).numpy()
        flipped = np.zeros(40, dtype=np.int64)
        flipped[15] = 1
        modified = model.logits(packed, flipped).numpy()
        np.testing.assert_allclose(base[:16], modified[:16], atol=1e-12)

    def test_gradients_reach_intent_embed(self, model, packed):
        model.zero_grad()
        logits = model.logits(packed)
        (logits * logits).sum().backward()
        assert model.intent_embed.weight.grad is not None
        assert np.abs(model.intent_embed.weight.grad).max() > 0

    def test_state_dict_roundtrip(self, model, packed):
        twin = IntentionConditionedModel(seed=99)
        twin.load_state_dict(model.state_dict())
        np.testing.assert_allclose(
            model.logits(packed).numpy(), twin.logits(packed).numpy(),
            atol=1e-12,
        )

    def test_two_memory_tokens(self, model, packed):
        memory = model._memory(packed.reshape(1, -1))
        assert memory.shape == (1, 2, model.dim)
