"""Tests for FlowResult/StageSnapshot containers and the stages enum."""

import pytest

from repro.flow.result import FlowResult, StageSnapshot
from repro.flow.stages import FlowStage


class TestStages:
    def test_ordered_pipeline(self):
        order = FlowStage.ordered()
        assert order[0] is FlowStage.PLACEMENT
        assert order[-1] is FlowStage.SIGNOFF
        assert len(order) == 5

    def test_values_are_stable_identifiers(self):
        assert FlowStage.CTS.value == "cts"
        assert FlowStage.OPTIMIZATION.value == "optimization"


class TestSnapshot:
    def test_get_with_default(self):
        snap = StageSnapshot(FlowStage.CTS, {"skew": 3.0})
        assert snap.get("skew") == 3.0
        assert snap.get("missing", -1.0) == -1.0

    def test_result_accessors(self):
        result = FlowResult(
            design="Dx",
            qor={"tns_ns": 5.0, "power_mw": 2.0},
            snapshots=[StageSnapshot(FlowStage.PLACEMENT, {"hpwl_um": 1.0})],
        )
        assert result.tns_ns == 5.0
        assert result.power_mw == 2.0
        assert result.snapshot(FlowStage.PLACEMENT).get("hpwl_um") == 1.0
        with pytest.raises(KeyError):
            result.snapshot(FlowStage.SIGNOFF)


class TestRealFlowSnapshots:
    def test_placement_congestion_trajectory_keys(self, flow_result):
        snap = flow_result.snapshot(FlowStage.PLACEMENT)
        for key in ("congestion_early", "congestion_mid", "congestion_late"):
            assert key in snap.metrics

    def test_signoff_consistency_with_qor(self, flow_result):
        signoff = flow_result.snapshot(FlowStage.SIGNOFF)
        assert signoff.get("drc_count") == flow_result.qor["drc_count"]
        assert signoff.get("tns_ps") >= 0.0

    def test_optimization_accounting(self, flow_result):
        opt = flow_result.snapshot(FlowStage.OPTIMIZATION)
        assert opt.get("post_opt_tns_ps") <= opt.get("pre_opt_tns_ps") + 1e-9
        assert opt.get("tns_improvement_ps") == pytest.approx(
            opt.get("pre_opt_tns_ps") - opt.get("post_opt_tns_ps")
        )

    def test_power_fractions_consistent(self, flow_result):
        signoff = flow_result.snapshot(FlowStage.SIGNOFF)
        total = signoff.get("power_mw_raw")
        assert signoff.get("dynamic_mw_raw") <= total + 1e-12
        assert 0.0 <= signoff.get("leakage_fraction") <= 1.0
