"""Flow-layer robustness: bounded netlist cache, QoR validation, degenerate
training data."""

import numpy as np
import pytest

from conftest import tiny_profile
from repro.core.alignment import AlignmentConfig, AlignmentTrainer
from repro.core.dataset import DataPoint, OfflineDataset
from repro.errors import CorruptQoR, TrainingError
from repro.flow.runner import (
    REQUIRED_QOR_KEYS,
    _NETLIST_CACHE,
    _fresh_netlist,
    clear_netlist_cache,
    netlist_cache_info,
    run_flow,
    set_netlist_cache_limit,
    validate_qor,
)
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS


@pytest.fixture()
def scratch_cache():
    """Run against an empty cache, restore occupancy/limit afterwards."""
    saved = dict(_NETLIST_CACHE)
    previous = set_netlist_cache_limit(32)
    clear_netlist_cache()
    yield
    clear_netlist_cache()
    _NETLIST_CACHE.update(saved)
    set_netlist_cache_limit(previous)


class TestNetlistCacheBound:
    def test_cache_never_exceeds_limit(self, scratch_cache):
        set_netlist_cache_limit(2)
        for index in range(4):
            _fresh_netlist(tiny_profile(name=f"C{index}"), seed=0)
        info = netlist_cache_info()
        assert info["size"] == 2
        assert info["limit"] == 2

    def test_eviction_is_least_recently_used(self, scratch_cache):
        set_netlist_cache_limit(2)
        _fresh_netlist(tiny_profile(name="C0"), seed=0)
        _fresh_netlist(tiny_profile(name="C1"), seed=0)
        # Touch C0 so C1 becomes the eviction victim.
        _fresh_netlist(tiny_profile(name="C0"), seed=0)
        _fresh_netlist(tiny_profile(name="C2"), seed=0)
        keys = {name for name, _ in _NETLIST_CACHE}
        assert keys == {"C0", "C2"}

    def test_clear_empties_cache(self, scratch_cache):
        _fresh_netlist(tiny_profile(name="C0"), seed=0)
        assert netlist_cache_info()["size"] == 1
        clear_netlist_cache()
        assert netlist_cache_info()["size"] == 0

    def test_shrinking_limit_evicts_immediately(self, scratch_cache):
        for index in range(4):
            _fresh_netlist(tiny_profile(name=f"C{index}"), seed=0)
        set_netlist_cache_limit(1)
        assert netlist_cache_info()["size"] == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            set_netlist_cache_limit(0)


class TestQoRValidation:
    def good_qor(self):
        return {key: 1.0 for key in REQUIRED_QOR_KEYS}

    def test_finite_qor_passes(self):
        validate_qor(self.good_qor(), design="T1")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_nonfinite_metric_rejected(self, bad):
        qor = self.good_qor()
        qor["power_mw"] = bad
        with pytest.raises(CorruptQoR, match="power_mw"):
            validate_qor(qor, design="T1")

    def test_non_numeric_metric_rejected(self):
        qor = self.good_qor()
        qor["tns_ns"] = "broken"
        with pytest.raises(CorruptQoR, match="tns_ns"):
            validate_qor(qor, design="T1")

    def test_missing_required_metric_rejected(self):
        qor = self.good_qor()
        del qor["runtime_proxy"]
        with pytest.raises(CorruptQoR, match="runtime_proxy"):
            validate_qor(qor, design="T1")

    def test_required_check_can_be_disabled(self):
        validate_qor({"only_metric": 1.0}, design="T1", required=None)

    def test_run_flow_boundary_rejects_nan(self, small_profile, monkeypatch):
        """A corrupt internal metric surfaces as a typed error, not data."""
        import repro.flow.runner as runner

        monkeypatch.setattr(
            runner, "_runtime_proxy", lambda params: float("nan")
        )
        with pytest.raises(CorruptQoR, match="runtime_proxy"):
            run_flow(small_profile, seed=7)

    def test_run_flow_output_is_valid(self, flow_result):
        validate_qor(flow_result.qor, design=flow_result.design)


class TestDegenerateTrainingData:
    def test_empty_dataset_is_typed(self):
        dataset = OfflineDataset(points=[], insights={})
        with pytest.raises(TrainingError, match="empty dataset"):
            AlignmentTrainer().train(dataset)

    def test_identical_scores_are_typed(self):
        """All-equal QoR leaves no preference pairs — a clear error."""
        rng = np.random.default_rng(0)
        qor = {key: 1.0 for key in REQUIRED_QOR_KEYS}
        points = [
            DataPoint("Z", tuple(int(b) for b in rng.integers(0, 2, size=40)),
                      dict(qor))
            for _ in range(12)
        ]
        insights = {"Z": InsightVector("Z", np.zeros(INSIGHT_DIMS), {})}
        dataset = OfflineDataset(points=points, insights=insights)
        with pytest.raises(TrainingError, match="preference pairs"):
            AlignmentTrainer(AlignmentConfig(epochs=1)).train(dataset)

    def test_single_point_design_is_typed(self):
        rng = np.random.default_rng(0)
        qor = {key: 1.0 for key in REQUIRED_QOR_KEYS}
        points = [DataPoint(
            "Z", tuple(int(b) for b in rng.integers(0, 2, size=40)), qor
        )]
        insights = {"Z": InsightVector("Z", np.zeros(INSIGHT_DIMS), {})}
        dataset = OfflineDataset(points=points, insights=insights)
        with pytest.raises(TrainingError, match="preference pairs"):
            AlignmentTrainer(AlignmentConfig(epochs=1)).train(dataset)
