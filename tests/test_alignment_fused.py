"""Fused DPO training step and vectorized pair sampling.

Two perf rewrites in :mod:`repro.core.alignment` must not change training:

- ``_fused_pair_log_probs`` runs winners and losers through ONE stacked
  ``batched_logits`` call; the model forward is row-independent, so per-row
  log-probs — and the loss built from them — are *exactly* equal to the
  two-pass formulation.  Gradients may differ only by float accumulation
  order (one 2B-row reduction vs two B-row reductions summed).
- the vectorized ``_epoch_batches`` must emit bit-identical batches, in the
  same order, from the same RNG state as the original per-pair Python loop
  (so pre-rewrite checkpoints resume identically).
"""

import numpy as np

from repro.core.alignment import (
    AlignmentConfig,
    AlignmentTrainer,
    _batched_log_prob,
    _fused_pair_log_probs,
)
from repro.core.model import InsightAlignModel
from repro.core.qor import QoRIntention
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng

from test_alignment_internals import _toy_dataset


def _fixed_batch(seed=0, batch=12, n_recipes=40):
    rng = derive_rng(seed, "fused")
    from repro.insights.schema import INSIGHT_DIMS

    insights = rng.normal(size=(batch, INSIGHT_DIMS))
    winners = rng.integers(0, 2, size=(batch, n_recipes))
    losers = rng.integers(0, 2, size=(batch, n_recipes))
    margins = rng.uniform(0.1, 2.0, size=(batch,))
    return insights, winners, losers, margins


def _unfused_loss(model, insights, winners, losers, margins):
    """The pre-fusion two-pass formulation, kept here as the oracle."""
    logp_w = _batched_log_prob(model, insights, winners)
    logp_l = _batched_log_prob(model, insights, losers)
    return (Tensor(margins) - (logp_w - logp_l)).clip_min(0.0).mean()


class TestFusedStep:
    def test_forward_exactly_matches_two_pass(self):
        model = InsightAlignModel(seed=3)
        insights, winners, losers, _ = _fixed_batch()
        fused_w, fused_l = _fused_pair_log_probs(
            model, insights, winners, losers
        )
        np.testing.assert_array_equal(
            fused_w.numpy(), _batched_log_prob(model, insights, winners).numpy()
        )
        np.testing.assert_array_equal(
            fused_l.numpy(), _batched_log_prob(model, insights, losers).numpy()
        )

    def test_loss_exactly_matches_two_pass(self):
        model = InsightAlignModel(seed=5)
        insights, winners, losers, margins = _fixed_batch(seed=1)
        logp_w, logp_l = _fused_pair_log_probs(model, insights, winners, losers)
        fused = (Tensor(margins) - (logp_w - logp_l)).clip_min(0.0).mean()
        unfused = _unfused_loss(model, insights, winners, losers, margins)
        assert float(fused.item()) == float(unfused.item())

    def test_gradients_match_two_pass(self):
        """Grads agree to accumulation-order noise (~1e-14), nothing more."""
        insights, winners, losers, margins = _fixed_batch(seed=2)

        def grads(loss_fn):
            model = InsightAlignModel(seed=7)
            model.zero_grad()
            loss_fn(model).backward()
            return [p.grad.copy() for p in model.parameters()]

        fused_grads = grads(lambda m: (
            lambda w_l: (Tensor(margins) - (w_l[0] - w_l[1]))
            .clip_min(0.0).mean()
        )(_fused_pair_log_probs(m, insights, winners, losers)))
        unfused_grads = grads(
            lambda m: _unfused_loss(m, insights, winners, losers, margins)
        )
        assert len(fused_grads) == len(unfused_grads)
        for a, b in zip(fused_grads, unfused_grads):
            np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-12)


def _reference_epoch_batches(trainer, per_design, rng):
    """The original per-pair Python loop, verbatim (the rewrite's oracle)."""
    cfg = trainer.config
    all_insights, winners, losers, margins = [], [], [], []
    for design, (insight, recipes, scores) in per_design.items():
        count = len(scores)
        if count < 2:
            continue
        idx_i = rng.integers(0, count, size=cfg.pairs_per_design)
        idx_j = rng.integers(0, count, size=cfg.pairs_per_design)
        for i, j in zip(idx_i, idx_j):
            gap = scores[i] - scores[j]
            if abs(gap) < cfg.min_score_gap:
                continue
            win, lose = (i, j) if gap > 0 else (j, i)
            all_insights.append(insight)
            winners.append(recipes[win])
            losers.append(recipes[lose])
            margins.append(cfg.lam * abs(gap))
    order = rng.permutation(len(margins))
    all_insights = np.array(all_insights)
    winners = np.array(winners)
    losers = np.array(losers)
    margins = np.array(margins)
    batches = []
    for start in range(0, len(order), cfg.batch_size):
        sel = order[start:start + cfg.batch_size]
        batches.append(
            (all_insights[sel], winners[sel], losers[sel], margins[sel])
        )
    return batches


class TestVectorizedEpochBatches:
    def test_bit_identical_to_reference_loop(self):
        dataset = _toy_dataset(n_points=16, n_designs=3, seed=4)
        trainer = AlignmentTrainer(
            AlignmentConfig(pairs_per_design=50, batch_size=16, seed=6)
        )
        per_design = trainer._prepare(dataset, QoRIntention())
        got = trainer._epoch_batches(per_design, derive_rng(6, "epoch"))
        want = _reference_epoch_batches(
            trainer, per_design, derive_rng(6, "epoch")
        )
        assert len(got) == len(want)
        for (gi, gw, gl, gm), (wi, ww, wl, wm) in zip(got, want):
            np.testing.assert_array_equal(gi, wi)
            np.testing.assert_array_equal(gw, ww)
            np.testing.assert_array_equal(gl, wl)
            np.testing.assert_array_equal(gm, wm)

    def test_rng_state_identical_after_sampling(self):
        """Both implementations consume exactly the same RNG draws."""
        dataset = _toy_dataset(seed=9)
        trainer = AlignmentTrainer(AlignmentConfig(pairs_per_design=30))
        per_design = trainer._prepare(dataset, QoRIntention())
        rng_a = derive_rng(2, "state")
        rng_b = derive_rng(2, "state")
        trainer._epoch_batches(per_design, rng_a)
        _reference_epoch_batches(trainer, per_design, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
