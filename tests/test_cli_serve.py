"""CLI tests for the ``serve``, ``sweep`` and ``obs report`` entrypoints."""

import json

import pytest

from repro.cli import build_parser, main
from repro.observability import load_trace


class TestServeArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args([
            "serve", "--model", "m.npz", "--dataset", "a.pkl",
        ])
        assert args.command == "serve"
        assert args.requests == 64
        assert args.k == 5
        assert args.max_batch_size == 8
        assert args.max_wait_ms == 2.0
        assert args.queue_depth == 64
        assert args.deadline_ms == 0.0
        assert args.trace == ""

    def test_all_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--model", "m.npz", "--dataset", "a.pkl",
            "--designs", "D4,D6", "--requests", "32", "--k", "3",
            "--max-batch-size", "16", "--max-wait-ms", "1.5",
            "--queue-depth", "128", "--deadline-ms", "50",
            "--jitter", "0.1", "--seed", "9", "--trace", "out.jsonl",
        ])
        assert args.designs == "D4,D6"
        assert args.requests == 32
        assert args.max_batch_size == 16
        assert args.trace == "out.jsonl"

    def test_model_and_dataset_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--model", "m.npz"])
        assert excinfo.value.code == 2
        assert "--dataset" in capsys.readouterr().err

    def test_sweep_axis_validation(self, capsys):
        parser = build_parser()
        args = parser.parse_args([
            "sweep", "D4", "--axis", "placer.density_target=0.6,0.7",
        ])
        assert args.axis == [("placer.density_target", [0.6, 0.7])]
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "D4", "--axis", "no-equals-sign"])
        assert "KNOB=V1,V2" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "D4", "--axis", "knob=1,abc"])

    def test_obs_report_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestServeEndToEnd:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_serve")
        archive = root / "archive.pkl"
        model = root / "model.npz"
        assert main([
            "build-dataset", "--out", str(archive),
            "--designs", "D11,D16", "--sets-per-design", "10",
        ]) == 0
        assert main([
            "align", "--dataset", str(archive), "--out", str(model),
            "--epochs", "2", "--pairs-per-design", "16",
        ]) == 0
        return root, archive, model

    def test_serve_starts_serves_and_shuts_down(self, artifacts, capsys):
        _, archive, model = artifacts
        assert main([
            "serve", "--model", str(model), "--dataset", str(archive),
            "--requests", "12", "--k", "2", "--max-batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 12/12 requests" in out
        assert "latency" in out and "p99" in out
        assert "model v1" in out

    def test_serve_with_backpressure_still_serves_all(self, artifacts, capsys):
        _, archive, model = artifacts
        # Queue depth below the request count forces QueueFullError
        # handling (submit -> poll -> resubmit) inside cmd_serve.
        assert main([
            "serve", "--model", str(model), "--dataset", str(archive),
            "--requests", "10", "--k", "2",
            "--max-batch-size", "2", "--queue-depth", "4",
        ]) == 0
        assert "served 10/10 requests" in capsys.readouterr().out

    def test_serve_trace_is_parseable_jsonl(self, artifacts, capsys):
        root, archive, model = artifacts
        trace_path = root / "serve_trace.jsonl"
        assert main([
            "serve", "--model", str(model), "--dataset", str(archive),
            "--requests", "8", "--k", "2", "--trace", str(trace_path),
        ]) == 0
        capsys.readouterr()
        # Every line is standalone JSON...
        for line in trace_path.read_text().splitlines():
            json.loads(line)
        # ...and the parsed trace carries the serving span tree + metrics.
        trace = load_trace(trace_path)
        names = {span.name for span in trace.spans}
        assert {"serve.request", "serve.batch", "serve.decode"} <= names
        completed = [
            s for s in trace.spans
            if s.name == "serve.request"
            and s.attributes.get("outcome") == "completed"
        ]
        assert len(completed) == 8
        assert "serving_requests_completed_total" in trace.metrics

    def test_obs_report_renders_the_trace(self, artifacts, capsys):
        root, archive, model = artifacts
        trace_path = root / "serve_trace.jsonl"
        assert trace_path.exists()  # written by the previous test
        assert main(["obs", "report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        assert "metrics snapshot" in out
        assert "serving_requests_completed_total" in out
