"""Tests for the intention-conditioned recommender extension."""

import numpy as np
import pytest

from repro.core.alignment import AlignmentConfig
from repro.core.dataset import DataPoint, OfflineDataset
from repro.core.multi_intention import (
    CONDITIONED_METRICS,
    MultiIntentionRecommender,
    conditioned_insight,
    intention_code,
)
from repro.core.qor import QoRIntention
from repro.errors import TrainingError
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS
from repro.utils.rng import derive_rng

POWER_ONLY = QoRIntention(metrics=(("power_mw", 1.0, False),))
TNS_ONLY = QoRIntention(metrics=(("tns_ns", 1.0, False),))


def _conflicting_dataset(seed=0, n_points=200):
    """Archive where recipe 5 helps power but hurts TNS, recipe 9 reversed.

    Bits 5 and 9 appear in half the points so every 2x2 contrast cell is
    well populated; the other bits are sparse background noise.
    """
    rng = derive_rng(seed, "conflict")
    points = []
    for _ in range(n_points):
        bits = [0] * 40
        for index in np.flatnonzero(rng.random(40) < 0.12):
            bits[int(index)] = 1
        bits[5] = int(rng.random() < 0.5)
        bits[9] = int(rng.random() < 0.5)
        power = 10.0 - 4.0 * bits[5] + 4.0 * bits[9] + rng.normal(0, 0.05)
        tns = 5.0 + 4.0 * bits[5] - 4.0 * bits[9] + rng.normal(0, 0.05)
        points.append(DataPoint("X", tuple(bits),
                                {"power_mw": power, "tns_ns": tns}))
    return OfflineDataset(
        points=points,
        insights={"X": InsightVector(
            "X", rng.normal(size=(INSIGHT_DIMS,)), {}
        )},
    )


class TestIntentionCode:
    def test_normalized_and_signed(self):
        from repro.core.multi_intention import _CODE_GAIN

        code = intention_code(QoRIntention())
        assert code.shape == (len(CONDITIONED_METRICS),)
        assert np.abs(code).sum() == pytest.approx(_CODE_GAIN)
        # Minimized metrics carry negative sign.
        assert code[CONDITIONED_METRICS.index("power_mw")] < 0

    def test_unsupported_metric_rejected(self):
        bad = QoRIntention(metrics=(("area_um2", 1.0, False),))
        with pytest.raises(TrainingError):
            intention_code(bad)

    def test_conditioned_insight_width(self):
        insight = np.zeros(INSIGHT_DIMS)
        out = conditioned_insight(insight, QoRIntention())
        assert out.shape == (INSIGHT_DIMS + len(CONDITIONED_METRICS),)


class TestMultiIntentionTraining:
    def test_learns_conflicting_preferences(self):
        """One model must prefer recipe 5 under power-intent and recipe 9
        under TNS-intent, because the archive makes them trade off."""
        dataset = _conflicting_dataset()
        config = AlignmentConfig(
            epochs=18, pairs_per_design=200, batch_size=128,
            learning_rate=4e-3, seed=0,
        )
        recommender = MultiIntentionRecommender.train(
            dataset, [POWER_ONLY, TNS_ONLY], config=config
        )
        insight = dataset.insight_for("X")
        power_pick = recommender.recommend(insight, POWER_ONLY, k=1)[0]
        tns_pick = recommender.recommend(insight, TNS_ONLY, k=1)[0]
        assert power_pick.recipe_set != tns_pick.recipe_set
        # The signature bits flip with the intention.
        assert power_pick.recipe_set[5] == 1
        assert power_pick.recipe_set[9] == 0
        assert tns_pick.recipe_set[9] == 1
        assert tns_pick.recipe_set[5] == 0

    def test_empty_inputs_rejected(self):
        dataset = _conflicting_dataset()
        with pytest.raises(TrainingError):
            MultiIntentionRecommender.train(dataset, [])
        empty = OfflineDataset(points=[], insights={})
        with pytest.raises(TrainingError):
            MultiIntentionRecommender.train(empty, [POWER_ONLY])

    def test_interpolated_intention_runs(self):
        dataset = _conflicting_dataset()
        config = AlignmentConfig(epochs=3, pairs_per_design=60, seed=1)
        recommender = MultiIntentionRecommender.train(
            dataset, [POWER_ONLY, TNS_ONLY], config=config
        )
        blended = QoRIntention(
            metrics=(("power_mw", 0.5, False), ("tns_ns", 0.5, False))
        )
        picks = recommender.recommend(dataset.insight_for("X"), blended, k=3)
        assert len(picks) == 3
