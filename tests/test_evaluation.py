"""Tests for the convergence/regret evaluation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluation import (
    align_curves,
    area_under_curve,
    best_so_far,
    evaluations_to_target,
    simple_regret,
    summarize_convergence,
)
from repro.errors import TrainingError


class TestBestSoFar:
    def test_monotone(self):
        out = best_so_far([1.0, 0.5, 2.0, 1.5])
        np.testing.assert_array_equal(out, [1.0, 1.0, 2.0, 2.0])

    def test_empty(self):
        assert best_so_far([]).size == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    def test_always_nondecreasing(self, values):
        curve = best_so_far(values)
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == max(values)


class TestRegret:
    def test_regret_hits_zero_at_optimum(self):
        regret = simple_regret([0.0, 3.0, 1.0], optimum=3.0)
        np.testing.assert_allclose(regret, [3.0, 0.0, 0.0])

    def test_regret_nonincreasing(self):
        regret = simple_regret([0.2, 0.1, 0.9, 0.5], optimum=1.0)
        assert np.all(np.diff(regret) <= 0)


class TestEvaluationsToTarget:
    def test_first_hit(self):
        assert evaluations_to_target([0.1, 0.5, 0.9, 0.95], 0.9) == 3

    def test_never(self):
        assert evaluations_to_target([0.1, 0.2], 5.0) is None

    def test_first_sample_hit(self):
        assert evaluations_to_target([9.0], 1.0) == 1


class TestAuc:
    def test_value(self):
        assert area_under_curve([1.0, 3.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            area_under_curve([])

    def test_faster_convergence_higher_auc(self):
        fast = area_under_curve([2.0, 2.0, 2.0])
        slow = area_under_curve([0.0, 0.0, 2.0])
        assert fast > slow


class TestAlignCurves:
    def test_padding_with_last_value(self):
        aligned = align_curves({"a": [1.0, 2.0], "b": [3.0]}, length=3)
        np.testing.assert_array_equal(aligned["a"], [1.0, 2.0, 2.0])
        np.testing.assert_array_equal(aligned["b"], [3.0, 3.0, 3.0])

    def test_truncation(self):
        aligned = align_curves({"a": [1.0, 2.0, 3.0]}, length=2)
        assert aligned["a"].size == 2

    def test_empty_curve_raises(self):
        with pytest.raises(TrainingError):
            align_curves({"a": []}, length=2)


class TestSummary:
    def test_rows_sorted_by_final(self):
        rows = summarize_convergence(
            {"weak": [0.1, 0.2], "strong": [1.0, 2.0]}, target=1.5
        )
        assert [r["method"] for r in rows] == ["strong", "weak"]
        assert rows[0]["evals_to_target"] == 2
        assert rows[1]["evals_to_target"] is None
