"""Extra hypothesis coverage for tensor reductions and stats edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor
from repro.utils.stats import exponential_smoothing, robust_zscores


class TestTensorReductionProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_sum_matches_numpy(self, values):
        array = np.array(values)
        assert Tensor(array).sum().item() == pytest.approx(array.sum(), rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_mean_matches_numpy(self, values):
        array = np.array(values)
        assert Tensor(array).mean().item() == pytest.approx(array.mean(), rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-5, 5), min_size=4, max_size=4),
    )
    def test_softmax_rows_sum_to_one(self, values):
        array = np.array(values).reshape(2, 2)
        out = Tensor(array).softmax(axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)
        assert np.all(out > 0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-30, 30), min_size=1, max_size=20))
    def test_log_sigmoid_bounds(self, values):
        out = Tensor(np.array(values)).log_sigmoid().numpy()
        assert np.all(out <= 0.0)
        assert np.all(np.isfinite(out))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(-700, 700))
    def test_sigmoid_never_overflows(self, value):
        out = Tensor(np.array([value])).sigmoid().numpy()
        assert 0.0 <= out[0] <= 1.0


class TestSmoothingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=25),
        st.floats(0.05, 1.0),
    )
    def test_smoothed_stays_in_range(self, values, alpha):
        out = exponential_smoothing(values, alpha=alpha)
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=30))
    def test_zscore_output_bounded_by_data_spread(self, values):
        z = robust_zscores(np.array(values))
        assert np.all(np.isfinite(z))
        # At most sqrt(n-1) in magnitude for any z-scored sample.
        assert np.abs(z).max() <= np.sqrt(len(values)) + 1e-6
