"""Tests for offline alignment, cross-validation, and online fine-tuning."""

import numpy as np
import pytest

from repro.core.alignment import (
    AlignmentConfig,
    AlignmentTrainer,
    _batched_log_prob,
)
from repro.core.crossval import evaluate_design, make_folds
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.online import OnlineConfig, OnlineFineTuner
from repro.core.policy import sequence_log_prob_value
from repro.core.recommender import InsightAlign
from repro.errors import TrainingError
from repro.insights.schema import INSIGHT_DIMS


class TestBatchedLogProb:
    def test_matches_sequential(self):
        model = InsightAlignModel(seed=1)
        rng = np.random.default_rng(0)
        insights = rng.normal(size=(3, INSIGHT_DIMS))
        decisions = rng.integers(0, 2, size=(3, 40))
        batched = _batched_log_prob(model, insights, decisions).numpy()
        for row in range(3):
            single = sequence_log_prob_value(model, insights[row], decisions[row])
            assert batched[row] == pytest.approx(single, abs=1e-9)


class TestAlignmentTrainer:
    def test_empty_dataset_raises(self):
        empty = OfflineDataset(points=[], insights={})
        with pytest.raises(TrainingError):
            AlignmentTrainer().train(empty)

    def test_probe_loss_decreases(self, mini_model):
        _, history = mini_model
        assert history.probe_loss[-1] < history.probe_loss[0]

    def test_pair_accuracy_improves(self, mini_model):
        _, history = mini_model
        assert history.epoch_pair_accuracy[-1] > 0.5

    def test_model_prefers_good_over_bad(self, mini_dataset, mini_model):
        """The aligned policy ranks each design's best set above its worst."""
        model, _ = mini_model
        wins = 0
        for design in mini_dataset.designs():
            scores = mini_dataset.scores_for(design)
            points = mini_dataset.by_design(design)
            insight = mini_dataset.insight_for(design)
            best = points[int(np.argmax(scores))].recipe_set
            worst = points[int(np.argmin(scores))].recipe_set
            gap = (
                sequence_log_prob_value(model, insight, best)
                - sequence_log_prob_value(model, insight, worst)
            )
            wins += int(gap > 0)
        assert wins >= 2  # at least 2 of the 3 training designs

    def test_deterministic_training(self, mini_dataset):
        config = AlignmentConfig(epochs=2, pairs_per_design=30, seed=5)
        m1, h1 = AlignmentTrainer(config).train(mini_dataset)
        m2, h2 = AlignmentTrainer(config).train(mini_dataset)
        assert h1.epoch_loss == h2.epoch_loss
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)


class TestFolds:
    def test_all_designs_covered_once(self, mini_dataset):
        folds = make_folds(mini_dataset, k=3, seed=1)
        flat = [d for fold in folds for d in fold]
        assert sorted(flat) == mini_dataset.designs()

    def test_too_many_folds_raises(self, mini_dataset):
        with pytest.raises(TrainingError):
            make_folds(mini_dataset, k=10, seed=1)

    def test_k_below_two_raises(self, mini_dataset):
        with pytest.raises(TrainingError):
            make_folds(mini_dataset, k=1, seed=1)


class TestZeroShotEvaluation:
    def test_row_fields(self, mini_dataset, mini_model):
        model, _ = mini_model
        row = evaluate_design(model, mini_dataset, "D10", beam_width=3, seed=11)
        assert row.design == "D10"
        assert 0.0 <= row.win_pct <= 100.0
        assert len(row.recommended_sets) == 3
        assert len(row.recommended_qors) == 3
        assert row.rec_score == pytest.approx(max(row.recommended_scores))

    def test_scores_use_known_normalizer(self, mini_dataset, mini_model):
        from repro.core.qor import QoRIntention

        model, _ = mini_model
        row = evaluate_design(model, mini_dataset, "D6", beam_width=2, seed=11)
        normalizer = mini_dataset.normalizer_for("D6")
        best = row.recommended_qors[int(np.argmax(row.recommended_scores))]
        recomputed = normalizer.score(best, QoRIntention())
        assert recomputed == pytest.approx(row.rec_score)


class TestOnlineFineTuning:
    def test_two_iterations_track_best(self, mini_dataset, mini_model):
        model, _ = mini_model
        tuner = OnlineFineTuner(OnlineConfig(iterations=2, k=3, seed=3))
        result = tuner.run(model.clone(), mini_dataset, "D10")
        assert len(result.records) == 2
        best = result.trajectory("best_score_so_far")
        assert best[1] >= best[0] - 1e-12  # best-so-far is monotone
        assert all(len(r.recipe_sets) >= 1 for r in result.records)

    def test_no_duplicate_proposals(self, mini_dataset, mini_model):
        model, _ = mini_model
        tuner = OnlineFineTuner(OnlineConfig(iterations=3, k=3, seed=4))
        result = tuner.run(model.clone(), mini_dataset, "D11")
        proposed = [
            bits for record in result.records for bits in record.recipe_sets
        ]
        assert len(set(proposed)) == len(proposed)

    def test_all_points_enumerates_everything(self, mini_dataset, mini_model):
        model, _ = mini_model
        tuner = OnlineFineTuner(OnlineConfig(iterations=2, k=2, seed=5))
        result = tuner.run(model.clone(), mini_dataset, "D6")
        evaluated = sum(len(r.recipe_sets) for r in result.records)
        assert len(result.all_points) == evaluated


class TestFacade:
    def test_align_offline_and_recommend(self, mini_dataset):
        config = AlignmentConfig(epochs=2, pairs_per_design=30, seed=2)
        ia = InsightAlign.align_offline(
            mini_dataset, holdout=("D11",), config=config
        )
        recs = ia.recommend(mini_dataset.insight_for("D11"), k=3)
        assert len(recs) == 3
        for rec in recs:
            assert len(rec.recipe_set) == 40
            selected = [i for i, b in enumerate(rec.recipe_set) if b]
            assert len(rec.recipe_names) == len(selected)

    def test_clone_is_independent(self, mini_dataset, mini_model):
        model, _ = mini_model
        ia = InsightAlign(model)
        twin = ia.clone()
        twin.model.parameters()[0].data += 1.0
        assert not np.allclose(
            ia.model.parameters()[0].data, twin.model.parameters()[0].data
        )
