"""Tests for multi-corner STA and IR-drop analysis."""

import pytest

from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.errors import FlowError
from repro.netlist.generator import generate_netlist
from repro.placement.placer import PlacerParams, place
from repro.power.irdrop import analyze_ir_drop
from repro.timing.constraints import default_constraints
from repro.timing.corners import (
    Corner,
    DEFAULT_CORNERS,
    run_multi_corner_sta,
)

from conftest import tiny_profile


@pytest.fixture(scope="module")
def signoff_design():
    profile = tiny_profile("TSO", sim_gate_count=260, clock_tightness=1.12)
    netlist = generate_netlist(profile, seed=41)
    placement = place(netlist, PlacerParams(), seed=41)
    tree = synthesize_clock_tree(netlist, CtsParams(), seed=41)
    constraints = default_constraints(netlist)
    return netlist, placement, tree, constraints


class TestCorners:
    def test_default_corner_set(self):
        names = [c.name for c in DEFAULT_CORNERS]
        assert names == ["ss", "tt", "ff"]

    def test_bad_corner_rejected(self):
        with pytest.raises(FlowError):
            Corner(name="x", delay_scale=0.0, leakage_scale=1.0)

    def test_ss_is_setup_corner_ff_is_hold_corner(self, signoff_design):
        netlist, _, tree, constraints = signoff_design
        report = run_multi_corner_sta(netlist, constraints, tree)
        assert set(report.reports) == {"ss", "tt", "ff"}
        assert report.setup_corner == "ss"
        # Hold is worst where the data path is fastest.
        assert report.reports["ff"].hold_wns_ps <= \
            report.reports["ss"].hold_wns_ps + 1e-9

    def test_signoff_is_worst_case(self, signoff_design):
        netlist, _, tree, constraints = signoff_design
        report = run_multi_corner_sta(netlist, constraints, tree)
        assert report.signoff_wns_ps == min(
            r.wns_ps for r in report.reports.values()
        )
        assert report.signoff_tns_ps == max(
            r.tns_ps for r in report.reports.values()
        )

    def test_tt_matches_single_corner(self, signoff_design):
        from repro.timing.sta import run_sta
        import dataclasses

        netlist, _, tree, constraints = signoff_design
        multi = run_multi_corner_sta(netlist, constraints, tree)
        single = run_sta(netlist, constraints, tree)
        assert multi.reports["tt"].wns_ps == pytest.approx(single.wns_ps)

    def test_meets_all_corners_flag(self, signoff_design):
        netlist, _, tree, constraints = signoff_design
        import dataclasses

        relaxed = dataclasses.replace(
            constraints, period_ps=constraints.period_ps * 4.0
        )
        report = run_multi_corner_sta(netlist, relaxed, tree)
        assert report.meets_all_corners()

    def test_empty_corners_rejected(self, signoff_design):
        netlist, _, tree, constraints = signoff_design
        with pytest.raises(FlowError):
            run_multi_corner_sta(netlist, constraints, tree, corners=())

    def test_clock_latency_scales_with_corner(self, signoff_design):
        """At SS, launch and capture both shift; skew grows with latency."""
        netlist, _, tree, constraints = signoff_design
        report = run_multi_corner_sta(netlist, constraints, tree)
        # Harmless consistency: each corner has the same endpoint set.
        endpoints = {
            corner: set(r.endpoint_slack_ps)
            for corner, r in report.reports.items()
        }
        assert endpoints["ss"] == endpoints["ff"] == endpoints["tt"]


class TestIrDrop:
    def test_report_fields(self, signoff_design):
        netlist, placement, tree, _ = signoff_design
        report = analyze_ir_drop(netlist, tree, placement.grid)
        assert report.droop_mv.shape == (
            placement.grid.bins_y, placement.grid.bins_x
        )
        assert report.worst_droop_mv >= report.mean_droop_mv >= 0.0
        assert report.worst_derate >= 1.0
        assert 0.0 <= report.hotspot_fraction <= 1.0

    def test_weaker_grid_more_droop(self, signoff_design):
        netlist, placement, tree, _ = signoff_design
        strong = analyze_ir_drop(netlist, tree, placement.grid,
                                 grid_resistance_ohm=500.0)
        weak = analyze_ir_drop(netlist, tree, placement.grid,
                               grid_resistance_ohm=5000.0)
        assert weak.worst_droop_mv > strong.worst_droop_mv

    def test_smoothing_spreads_hotspot(self, signoff_design):
        netlist, placement, tree, _ = signoff_design
        sharp = analyze_ir_drop(netlist, tree, placement.grid,
                                smoothing_passes=0)
        smooth = analyze_ir_drop(netlist, tree, placement.grid,
                                 smoothing_passes=5)
        assert smooth.worst_droop_mv <= sharp.worst_droop_mv + 1e-12

    def test_derate_caps(self, signoff_design):
        netlist, placement, tree, _ = signoff_design
        report = analyze_ir_drop(netlist, tree, placement.grid,
                                 grid_resistance_ohm=10_000_000.0)
        # Relative droop is clipped at 25% -> derate at 1.375.
        assert report.worst_derate <= 1.375 + 1e-9

    def test_no_clock_rejected(self, signoff_design):
        netlist, placement, tree, _ = signoff_design
        saved = netlist.clock
        netlist.clock = None
        try:
            with pytest.raises(FlowError):
                analyze_ir_drop(netlist, tree, placement.grid)
        finally:
            netlist.clock = saved

    def test_busier_design_droops_more(self):
        def droop_for(activity):
            profile = tiny_profile(f"TIR{int(activity*100)}",
                                   activity=activity, sim_gate_count=220)
            netlist = generate_netlist(profile, seed=5)
            placement = place(netlist, PlacerParams(), seed=5)
            tree = synthesize_clock_tree(netlist, CtsParams(), seed=5)
            return analyze_ir_drop(netlist, tree, placement.grid).mean_droop_mv

        assert droop_for(0.5) > droop_for(0.05)
