"""Online loop under injected faults: graceful degradation + crash/resume.

The flow callable here is a cheap deterministic stand-in for ``run_flow``
(the loop's contract is the callable's signature and the QoR dict), so
these tests exercise ten-iteration trajectories in milliseconds.
"""

import logging

import numpy as np
import pytest

from repro.core.dataset import DataPoint, OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.online import FlowFailure, OnlineConfig, OnlineFineTuner
from repro.errors import CheckpointError, TrainingError
from repro.flow.result import FlowResult
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS
from repro.runtime import (
    FaultInjector,
    FaultKind,
    FlowExecutor,
    RetryPolicy,
    VirtualClock,
)

DESIGN = "D6"  # real profile name: the loop resolves it via get_profile()


@pytest.fixture(scope="module")
def archive():
    """A tiny synthetic archive (no real flow runs)."""
    rng = np.random.default_rng(0)
    points = []
    insights = {}
    for design in (DESIGN, "D10"):
        insights[design] = InsightVector(
            design, rng.normal(size=(INSIGHT_DIMS,)), {}
        )
        for _ in range(30):
            bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
            qor = {key: float(rng.uniform(0.5, 2.0))
                   for key in REQUIRED_QOR_KEYS}
            points.append(DataPoint(design, bits, qor))
    return OfflineDataset(points=points, insights=insights, seed=0)


def fake_flow(design, params, seed=0):
    """Deterministic per-parameter QoR, no simulation."""
    fingerprint = hash((
        round(params.placer.effort, 6),
        round(params.opt.vt_swap_bias, 6),
        round(params.route.effort, 6),
    ))
    base = 1.0 + (abs(fingerprint) % 1000) / 1000.0
    return FlowResult(
        design=str(design),
        qor={key: base * (index + 1) * 0.1
             for index, key in enumerate(REQUIRED_QOR_KEYS)},
    )


def faulty_executor(rate, seed=5, max_attempts=2):
    clock = VirtualClock()
    injector = FaultInjector(
        rate=rate, seed=seed, hang_s=100.0, clock=clock,
        kinds=[FaultKind.CRASH, FaultKind.HANG, FaultKind.CORRUPT_QOR],
    )
    executor = FlowExecutor(
        flow_fn=injector.wrap(fake_flow),
        policy=RetryPolicy(max_attempts=max_attempts, base_delay_s=0.5),
        deadline_s=10.0, clock=clock, sleep=clock.sleep, seed=seed,
    )
    return executor, injector


class TestGracefulDegradation:
    def test_ten_iterations_survive_30pct_faults(self, archive, caplog):
        """The ISSUE acceptance scenario: 30% fault rate, 10 iterations."""
        executor, injector = faulty_executor(rate=0.3)
        tuner = OnlineFineTuner(
            OnlineConfig(iterations=10, k=3, insight_refresh=0.0, seed=3),
            executor=executor,
        )
        model = InsightAlignModel(seed=5)
        initial = {n: w.copy() for n, w in model.state_dict().items()}
        with caplog.at_level(logging.WARNING, logger="repro.core.online"):
            result = tuner.run(model, archive, DESIGN)

        assert len(result.records) == 10
        assert injector.fault_count > 0
        # Every record accounts for all K proposals: survivors + failures.
        for record in result.records:
            assert len(record.recipe_sets) + len(record.failures) == 3
            assert len(record.recipe_sets) == len(record.scores)
        # Every terminal failure is typed and logged.
        failures = result.failures
        assert failures, "a 30% fault rate over 30 runs must kill some"
        for failure in failures:
            assert isinstance(failure, FlowFailure)
            assert failure.error_type in {
                "FlowCrash", "FlowTimeout", "CorruptQoR"
            }
            assert failure.attempts >= 1
        logged = [r for r in caplog.records if "evaluation failed" in r.message]
        assert len(logged) == len(failures)
        # The model still learned from the survivors.
        final = model.state_dict()
        assert any(not np.array_equal(initial[n], final[n]) for n in final)

    def test_total_blackout_skips_updates_but_completes(self, archive):
        """rate=1.0: zero survivors, no update, run still finishes."""
        executor, _ = faulty_executor(rate=1.0, max_attempts=1)
        tuner = OnlineFineTuner(
            OnlineConfig(iterations=3, k=2, insight_refresh=0.0, seed=3),
            executor=executor,
        )
        model = InsightAlignModel(seed=5)
        initial = {n: w.copy() for n, w in model.state_dict().items()}
        result = tuner.run(model, archive, DESIGN)
        assert len(result.records) == 3
        assert all(not record.updated for record in result.records)
        assert all(record.scores == [] for record in result.records)
        assert len(result.failures) == 6
        final = model.state_dict()
        for name in final:
            np.testing.assert_array_equal(initial[name], final[name])
        # Degenerate records report NaN rather than fake numbers.
        assert np.isnan(result.records[0].best_score_so_far)

    def test_min_successes_floor_gates_the_update(self, archive):
        """With a floor of K, any failure in the batch skips the update."""
        executor, injector = faulty_executor(rate=0.5, max_attempts=1)
        tuner = OnlineFineTuner(
            OnlineConfig(iterations=4, k=3, min_successes=3,
                         insight_refresh=0.0, seed=3),
            executor=executor,
        )
        result = tuner.run(InsightAlignModel(seed=5), archive, DESIGN)
        for record in result.records:
            assert record.updated == (len(record.scores) >= 3)
        assert any(not record.updated for record in result.records)

    def test_fault_free_executor_updates_every_iteration(self, archive):
        tuner = OnlineFineTuner(
            OnlineConfig(iterations=3, k=3, insight_refresh=0.0, seed=3),
            executor=FlowExecutor(flow_fn=fake_flow),
        )
        result = tuner.run(InsightAlignModel(seed=5), archive, DESIGN)
        assert all(record.updated for record in result.records)
        assert result.failures == []


class TestOnlineCheckpointResume:
    def run_loop(self, archive, config):
        model = InsightAlignModel(seed=9)
        tuner = OnlineFineTuner(
            config, executor=FlowExecutor(flow_fn=fake_flow)
        )
        result = tuner.run(model, archive, DESIGN)
        return model, result

    def test_kill_and_resume_matches_uninterrupted(self, archive, tmp_path):
        ckpt = str(tmp_path / "online.ck")
        common = dict(k=3, insight_refresh=0.0, seed=3)

        model_a, result_a = self.run_loop(
            archive, OnlineConfig(iterations=4, **common)
        )
        self.run_loop(
            archive,
            OnlineConfig(iterations=2, checkpoint_path=ckpt, **common),
        )
        model_c, result_c = self.run_loop(
            archive, OnlineConfig(iterations=4, resume_from=ckpt, **common)
        )

        state_a, state_c = model_a.state_dict(), model_c.state_dict()
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_c[name])
        assert len(result_c.records) == 4
        assert [r.best_score_so_far for r in result_a.records] == \
               [r.best_score_so_far for r in result_c.records]
        assert [r.recipe_sets for r in result_a.records] == \
               [r.recipe_sets for r in result_c.records]

    def test_resume_on_wrong_design_rejected(self, archive, tmp_path):
        ckpt = str(tmp_path / "online.ck")
        self.run_loop(archive, OnlineConfig(
            iterations=1, k=2, insight_refresh=0.0, seed=3,
            checkpoint_path=ckpt,
        ))
        tuner = OnlineFineTuner(
            OnlineConfig(iterations=2, k=2, insight_refresh=0.0, seed=3,
                         resume_from=ckpt),
            executor=FlowExecutor(flow_fn=fake_flow),
        )
        with pytest.raises(CheckpointError, match="design"):
            tuner.run(InsightAlignModel(seed=9), archive, "D10")

    def test_bad_config_values_are_typed(self, archive):
        with pytest.raises(TrainingError, match="min_successes"):
            OnlineFineTuner(
                OnlineConfig(iterations=1, min_successes=-1),
                executor=FlowExecutor(flow_fn=fake_flow),
            ).run(InsightAlignModel(seed=1), archive, DESIGN)
        with pytest.raises(TrainingError, match="checkpoint_every"):
            OnlineFineTuner(
                OnlineConfig(iterations=1, checkpoint_every=0),
                executor=FlowExecutor(flow_fn=fake_flow),
            ).run(InsightAlignModel(seed=1), archive, DESIGN)
