"""Equivalence proof: the vectorized decoder vs. the per-beam reference.

The serving layer's correctness rests on ``batched_beam_search`` producing
exactly what ``beam_search_reference`` produces — same recipe sets, same
log-probs (to 1e-9), same canonical order — for every request in a batch,
including batches with heterogeneous beam widths.
"""

import numpy as np
import pytest

from repro.core.beam import (
    beam_search,
    beam_search_reference,
    greedy_decode,
    sample_decode,
)
from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob_value
from repro.insights.schema import INSIGHT_DIMS
from repro.serving.batch_decode import (
    batched_beam_search,
    batched_greedy_decode,
    batched_sample_decode,
)
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def model():
    return InsightAlignModel(n_recipes=9, dim=16, seed=21)


@pytest.fixture(scope="module")
def insights():
    return np.random.default_rng(17).normal(size=(6, INSIGHT_DIMS))


def assert_matches_reference(model, insight, width, candidates):
    reference = beam_search_reference(model, insight, beam_width=width)
    assert len(candidates) == len(reference)
    for ref, (bits, log_prob) in zip(reference, candidates):
        assert ref.recipe_set == bits
        assert log_prob == pytest.approx(ref.log_prob, abs=1e-9)


class TestBatchedBeamEquivalence:
    def test_single_request(self, model, insights):
        [candidates] = batched_beam_search(model, insights[0], beam_widths=5)
        assert_matches_reference(model, insights[0], 5, candidates)

    def test_many_requests_shared_width(self, model, insights):
        results = batched_beam_search(model, insights, beam_widths=4)
        assert len(results) == len(insights)
        for insight, candidates in zip(insights, results):
            assert_matches_reference(model, insight, 4, candidates)

    def test_heterogeneous_widths(self, model, insights):
        widths = [1, 2, 5, 3, 8, 1]
        results = batched_beam_search(model, insights, beam_widths=widths)
        for insight, width, candidates in zip(insights, widths, results):
            assert_matches_reference(model, insight, width, candidates)

    def test_log_probs_match_policy(self, model, insights):
        """Scores are true sequence log-probs, not just internally consistent."""
        [candidates] = batched_beam_search(model, insights[1], beam_widths=4)
        for bits, log_prob in candidates:
            recomputed = sequence_log_prob_value(model, insights[1], bits)
            assert log_prob == pytest.approx(recomputed, abs=1e-9)

    def test_public_beam_search_routes_through_batched(self, model, insights):
        via_api = beam_search(model, insights[2], beam_width=6)
        reference = beam_search_reference(model, insights[2], beam_width=6)
        assert [c.recipe_set for c in via_api] == [
            c.recipe_set for c in reference
        ]
        for a, b in zip(via_api, reference):
            assert a.log_prob == pytest.approx(b.log_prob, abs=1e-9)

    def test_full_size_model(self, insights):
        model = InsightAlignModel(seed=0)
        [candidates] = batched_beam_search(model, insights[0], beam_widths=5)
        assert_matches_reference(model, insights[0], 5, candidates)

    def test_bad_widths_raise(self, model, insights):
        with pytest.raises(ValueError):
            batched_beam_search(model, insights, beam_widths=0)
        with pytest.raises(ValueError):
            batched_beam_search(model, insights, beam_widths=[2, 3])

    def test_empty_batch(self, model):
        assert batched_beam_search(
            model, np.zeros((0, INSIGHT_DIMS)), beam_widths=[]
        ) == []


class TestInferenceEngine:
    def test_stepwise_logits_match_full_forward(self, model, insights):
        """The KV-cached incremental step reproduces the training-path
        logits position by position on a teacher-forced trajectory."""
        from repro.core.model import SOS_TOKEN
        from repro.serving.engine import InferenceEngine

        decisions = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1], dtype=np.int64)
        reference = model.logits(insights[0], decisions).numpy()

        engine = InferenceEngine(model)
        state = engine.start(insights[0].reshape(1, -1))
        token = np.array([SOS_TOKEN])
        for t in range(model.n_recipes):
            logit = engine.step(state, token)[0]
            assert logit == pytest.approx(reference[t], abs=1e-10)
            token = decisions[t : t + 1]

    def test_cross_attention_constant_folding(self, model, insights):
        """The single-token memory makes the cross block a per-request
        constant — verify against the layer's literal output."""
        from repro.nn.tensor import Tensor
        from repro.serving.engine import InferenceEngine

        engine = InferenceEngine(model)
        constant = engine.cross_constants(insights[:2])
        for r in range(2):
            memory = model.insight_embed(
                Tensor(insights[r].reshape(1, -1))
            )
            query = Tensor(np.random.default_rng(r).normal(
                size=(model.n_recipes, model.dim)
            ))
            literal = model.decoder.cross_attn(query, memory).numpy()
            # Constant across every query position.
            np.testing.assert_allclose(
                literal, np.broadcast_to(constant[r], literal.shape),
                atol=1e-12,
            )

    def test_step_past_end_raises(self, model, insights):
        from repro.core.model import SOS_TOKEN
        from repro.serving.engine import InferenceEngine

        engine = InferenceEngine(model)
        state = engine.start(insights[0].reshape(1, -1))
        token = np.array([SOS_TOKEN])
        for _ in range(model.n_recipes):
            engine.step(state, token)
            token = np.array([0])
        with pytest.raises(ValueError):
            engine.step(state, token)

    def test_new_weights_take_effect_immediately(self, insights):
        """Decoding builds its engine per call, so swapped-in weights are
        picked up with no explicit invalidation step."""
        from repro.serving.batch_decode import batched_beam_search

        model = InsightAlignModel(n_recipes=6, dim=8, seed=1)
        [before] = batched_beam_search(model, insights[0], beam_widths=3)
        donor = InsightAlignModel(n_recipes=6, dim=8, seed=2)
        model.load_state_dict(donor.state_dict())
        [after] = batched_beam_search(model, insights[0], beam_widths=3)
        [expected] = batched_beam_search(donor, insights[0], beam_widths=3)
        assert after == expected
        assert before != after


class TestMultiTokenMemory:
    """Models whose cross-attention memory has more than one token (the
    intention-conditioned extension) cannot use the constant fold — the
    engine must run the real M-way attention, still exactly."""

    @pytest.fixture(scope="class")
    def conditioned(self):
        from repro.core.multi_intention import (
            IntentionConditionedModel,
            conditioned_insight,
        )
        from repro.core.qor import QoRIntention

        model = IntentionConditionedModel(n_recipes=7, dim=16, seed=3)
        intention = QoRIntention(metrics=(("power_mw", 1.0, False),))
        packed = np.random.default_rng(9).normal(size=(3, INSIGHT_DIMS))
        return model, np.stack(
            [conditioned_insight(row, intention) for row in packed]
        )

    def test_memory_has_two_tokens(self, conditioned):
        model, packed = conditioned
        assert model.memory_tokens(packed).shape == (3, 2, model.dim)

    def test_batched_matches_reference(self, conditioned):
        model, packed = conditioned
        results = batched_beam_search(model, packed, beam_widths=4)
        for row, candidates in zip(packed, results):
            assert_matches_reference(model, row, 4, candidates)

    def test_cross_constant_fold_refuses(self, conditioned):
        from repro.serving.engine import InferenceEngine

        model, packed = conditioned
        with pytest.raises(ValueError):
            InferenceEngine(model).cross_constants(packed)


class TestCanonicalTieBreak:
    def test_ties_break_by_bits_descending(self, insights):
        """A zero-weight head makes every score exactly equal — ordering
        must then be the recipe-set bit vector, descending."""
        model = InsightAlignModel(n_recipes=4, dim=8, seed=5)
        state = model.state_dict()
        for name in state:
            if name.startswith("head."):
                state[name] = np.zeros_like(state[name])
        model.load_state_dict(state)
        reference = beam_search_reference(model, insights[0], beam_width=6)
        sets = [c.recipe_set for c in reference]
        assert sets == sorted(sets, reverse=True)
        [batched] = batched_beam_search(model, insights[0], beam_widths=6)
        assert [bits for bits, _ in batched] == sets


class TestBatchedGreedyAndSampling:
    def test_greedy_matches_reference(self, model, insights):
        batched = batched_greedy_decode(model, insights)
        for insight, (bits, log_prob) in zip(insights, batched):
            ref = beam_search_reference(model, insight, beam_width=1)[0]
            assert bits == ref.recipe_set
            assert log_prob == pytest.approx(ref.log_prob, abs=1e-9)

    def test_greedy_decode_routes_through_batched(self, model, insights):
        greedy = greedy_decode(model, insights[3])
        ref = beam_search_reference(model, insights[3], beam_width=1)[0]
        assert greedy.recipe_set == ref.recipe_set

    def test_sampling_reproducible_and_consistent(self, model, insights):
        a = sample_decode(model, insights[0], derive_rng(5, "s"))
        b = sample_decode(model, insights[0], derive_rng(5, "s"))
        assert a.recipe_set == b.recipe_set
        recomputed = sequence_log_prob_value(model, insights[0], a.recipe_set)
        assert a.log_prob == pytest.approx(recomputed, abs=1e-9)

    def test_batched_sampling_matches_single(self, model, insights):
        """Each request consumes its own rng stream exactly like the
        single-request path, so batching never perturbs seeded draws."""
        batched = batched_sample_decode(
            model,
            insights[:3],
            [derive_rng(i, "batch") for i in range(3)],
        )
        for i, (bits, log_prob) in enumerate(batched):
            single = sample_decode(model, insights[i], derive_rng(i, "batch"))
            assert bits == single.recipe_set
            assert log_prob == pytest.approx(single.log_prob, abs=1e-12)

    def test_sampling_rng_count_mismatch_raises(self, model, insights):
        with pytest.raises(ValueError):
            batched_sample_decode(model, insights, [derive_rng(0, "x")])
