"""Serving edge cases, driven deterministically via VirtualClock.

Covers the ISSUE checklist: deadline-expired requests are rejected not
served, queue-full backpressure, cache invalidation on hot-swap, and the
single-request batch path matching direct recommendation exactly.
"""

import numpy as np
import pytest

from repro.core.model import InsightAlignModel
from repro.core.recommender import InsightAlign
from repro.errors import DeadlineExceededError, QueueFullError, ServingError
from repro.insights.schema import INSIGHT_DIMS
from repro.runtime.clock import VirtualClock
from repro.serving import (
    RecommendationService,
    RequestStatus,
    ServingConfig,
)


@pytest.fixture()
def recommender():
    return InsightAlign(InsightAlignModel(n_recipes=8, dim=16, seed=33))


@pytest.fixture()
def clock():
    return VirtualClock()


def make_service(recommender, clock, **knobs):
    defaults = dict(max_batch_size=4, max_wait_s=0.010, max_queue_depth=8)
    defaults.update(knobs)
    return RecommendationService(
        recommender, ServingConfig(**defaults), clock=clock, sleep=clock.sleep
    )


def insight_vectors(count, seed=0):
    return np.random.default_rng(seed).normal(size=(count, INSIGHT_DIMS))


class TestBatchFormation:
    def test_full_batch_dispatches_immediately(self, recommender, clock):
        service = make_service(recommender, clock)
        tickets = [service.submit(v, k=2) for v in insight_vectors(4)]
        # No virtual time has passed, but the batch is full.
        assert service.poll() == 4
        assert all(t.status is RequestStatus.COMPLETED for t in tickets)

    def test_partial_batch_waits_for_max_wait(self, recommender, clock):
        service = make_service(recommender, clock)
        ticket = service.submit(insight_vectors(1)[0], k=2)
        assert service.poll() == 0          # not due yet
        assert not ticket.done
        clock.advance(0.010)
        assert service.poll() == 1          # oldest waited max_wait_s
        assert ticket.done

    def test_run_until_idle_sleeps_to_dispatch(self, recommender, clock):
        service = make_service(recommender, clock)
        tickets = [service.submit(v) for v in insight_vectors(6)]
        settled = service.run_until_idle()
        assert settled == 6
        assert all(t.status is RequestStatus.COMPLETED for t in tickets)
        # One full batch of 4 plus a partial of 2 after the virtual wait.
        stats = service.stats()
        assert stats["batches"] == 2
        assert clock.now() >= 0.010

    def test_oversized_submission_splits_batches(self, recommender, clock):
        service = make_service(recommender, clock, max_queue_depth=16)
        for v in insight_vectors(10):
            service.submit(v, k=2)
        service.flush()
        occupancy = service.stats()["batch_occupancy"]
        assert occupancy["count"] == 3      # 4 + 4 + 2
        assert occupancy["max"] == 1.0

    def test_pending_result_raises(self, recommender, clock):
        service = make_service(recommender, clock)
        ticket = service.submit(insight_vectors(1)[0])
        with pytest.raises(ServingError):
            ticket.result()


class TestDeadlines:
    def test_expired_request_rejected_not_served(self, recommender, clock):
        service = make_service(recommender, clock)
        ticket = service.submit(insight_vectors(1)[0], k=2, deadline_s=0.002)
        clock.advance(0.005)                # past deadline, past nothing else
        settled = service.run_until_idle()
        assert settled == 1
        assert ticket.status is RequestStatus.EXPIRED
        with pytest.raises(DeadlineExceededError):
            ticket.result()
        stats = service.stats()
        assert stats["requests"]["expired"] == 1
        assert stats["requests"]["completed"] == 0
        assert stats["batches"] == 0        # nothing was decoded for it

    def test_live_requests_survive_expired_peers(self, recommender, clock):
        service = make_service(recommender, clock)
        vectors = insight_vectors(3)
        doomed = service.submit(vectors[0], k=2, deadline_s=0.001)
        alive = [service.submit(v, k=2) for v in vectors[1:]]
        clock.advance(0.010)
        service.run_until_idle()
        assert doomed.status is RequestStatus.EXPIRED
        assert all(t.status is RequestStatus.COMPLETED for t in alive)

    def test_default_deadline_applies(self, recommender, clock):
        service = make_service(recommender, clock, default_deadline_s=0.003,
                               max_wait_s=0.02)
        ticket = service.submit(insight_vectors(1)[0])
        assert ticket.deadline_at == pytest.approx(0.003)
        clock.advance(0.004)
        service.poll()
        assert ticket.status is RequestStatus.EXPIRED


class TestBackpressure:
    def test_queue_full_rejects(self, recommender, clock):
        service = make_service(recommender, clock, max_queue_depth=3,
                               max_batch_size=8)
        vectors = insight_vectors(4)
        for v in vectors[:3]:
            service.submit(v)
        with pytest.raises(QueueFullError):
            service.submit(vectors[3])
        stats = service.stats()
        assert stats["requests"]["rejected"] == 1
        assert stats["requests"]["submitted"] == 3

    def test_draining_reopens_admission(self, recommender, clock):
        service = make_service(recommender, clock, max_queue_depth=3,
                               max_batch_size=8)
        vectors = insight_vectors(4)
        for v in vectors[:3]:
            service.submit(v)
        with pytest.raises(QueueFullError):
            service.submit(vectors[3])
        service.flush()
        ticket = service.submit(vectors[3])  # now admitted
        service.flush()
        assert ticket.status is RequestStatus.COMPLETED


class TestSingleRequestPath:
    def test_single_request_matches_direct_recommend(self, recommender, clock):
        """A batch of one must not degrade: identical recipe sets, log-probs
        and resolved names as the facade's own recommend()."""
        service = make_service(recommender, clock)
        insight = insight_vectors(1, seed=9)[0]
        ticket = service.submit(insight, k=5)
        service.poll(force=True)
        served = ticket.result()
        direct = recommender.recommend(insight, k=5)
        assert [r.recipe_set for r in served] == [
            r.recipe_set for r in direct
        ]
        assert [r.recipe_names for r in served] == [
            r.recipe_names for r in direct
        ]
        for a, b in zip(served, direct):
            assert a.log_prob == pytest.approx(b.log_prob, abs=1e-9)

    def test_mixed_k_in_one_batch(self, recommender, clock):
        service = make_service(recommender, clock)
        insight = insight_vectors(1, seed=10)[0]
        t2 = service.submit(insight, k=2)
        t5 = service.submit(insight, k=5)
        service.poll(force=True)
        assert len(t2.result()) == 2
        assert len(t5.result()) == 5
        assert [r.recipe_set for r in t2.result()] == [
            r.recipe_set for r in t5.result()[:2]
        ]

    def test_bad_k_raises(self, recommender, clock):
        service = make_service(recommender, clock)
        with pytest.raises(ValueError):
            service.submit(insight_vectors(1)[0], k=0)


class TestCacheAndHotSwap:
    def test_repeat_insight_hits_cache(self, recommender, clock):
        service = make_service(recommender, clock)
        insight = insight_vectors(1, seed=3)[0]
        first = service.submit(insight, k=3)
        service.flush()
        # Float noise below the quantization decimals still hits.
        again = service.submit(insight + 1e-9, k=3)
        service.flush()
        assert again.cache_hit and not first.cache_hit
        assert [r.recipe_set for r in again.result()] == [
            r.recipe_set for r in first.result()
        ]
        assert service.stats()["cache"]["hits"] == 1

    def test_different_k_misses_cache(self, recommender, clock):
        service = make_service(recommender, clock)
        insight = insight_vectors(1, seed=4)[0]
        service.submit(insight, k=3)
        service.flush()
        other = service.submit(insight, k=4)
        service.flush()
        assert not other.cache_hit

    def test_hot_swap_invalidates_cache_and_changes_results(
        self, recommender, clock
    ):
        service = make_service(recommender, clock)
        insight = insight_vectors(1, seed=5)[0]
        before = service.submit(insight, k=3)
        service.flush()
        assert len(service.cache) == 1

        swapped = InsightAlign(InsightAlignModel(n_recipes=8, dim=16, seed=77))
        service.register_model("v2", swapped)
        service.hot_swap("v2")
        assert len(service.cache) == 0      # stale entries dropped atomically

        after = service.submit(insight, k=3)
        service.flush()
        assert not after.cache_hit          # decoded fresh on the new model
        expected = swapped.recommend(insight, k=3)
        assert [r.recipe_set for r in after.result()] == [
            r.recipe_set for r in expected
        ]
        stats = service.stats()
        assert stats["model_version"] == "v2"
        assert stats["hot_swaps"] == 1
        _ = before  # old ticket keeps its pre-swap result object

    def test_stats_snapshot_shape(self, recommender, clock):
        service = make_service(recommender, clock)
        for v in insight_vectors(4):
            service.submit(v, k=2)
        service.flush()
        stats = service.stats()
        assert stats["requests"]["completed"] == 4
        assert stats["latency_s"]["count"] == 4
        assert 0.0 <= stats["latency_s"]["p50"] <= stats["latency_s"]["p99"]
        assert stats["queue_depth_now"] == 0
        assert stats["batch_occupancy"]["max"] <= 1.0
