"""Stacked (batch) flow simulator vs the scalar reference: bit-identical.

The batch kernels are required to reproduce the scalar ``run_flow`` down
to the last bit — QoR dicts compared as ordered item lists, trajectory
snapshots stage by stage, and whole ``FlowResult`` objects by pickle
bytes.  The session-level tests assert the ``batch_size`` door on
``RuntimeConfig`` grows no observable behavior: grouped evaluation at
workers 1 and 4 returns the same bytes as the scalar path, QoR cache
hits are identical, fault injection forces the scalar path, and
contradictory knobs are rejected as typed ``RuntimeConfigError``\\ s.
"""

import pickle

import pytest

from conftest import tiny_profile
from repro.errors import CorruptQoR, RuntimeConfigError
from repro.flow.batch_runner import run_flow_batch
from repro.flow.parameters import (
    CtsParams,
    FlowParameters,
    OptParams,
    PlacerParams,
    RouteParams,
    TradeoffWeights,
)
from repro.flow.runner import run_flow
from repro.netlist.profiles import design_profiles
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowExecutor,
    FlowSession,
    ParallelFlowExecutor,
    RuntimeConfig,
)

RECIPES = {
    "default": FlowParameters(),
    "timing": FlowParameters(
        placer=PlacerParams(effort=1.2, timing_net_weight=2.0),
        opt=OptParams(setup_passes=4, useful_skew_gain=0.4, hold_effort=0.6),
        tradeoff=TradeoffWeights(timing=2.0, power=0.5),
    ),
    "power": FlowParameters(
        opt=OptParams(leakage_recovery=1.2, vt_swap_bias=0.8,
                      clock_gating_efficiency=0.6, hold_effort=0.3),
        tradeoff=TradeoffWeights(timing=0.6, power=2.0),
        route=RouteParams(effort=0.7, layer_promotion=0.15),
        cts=CtsParams(max_cluster_size=6, buffer_drive=8),
    ),
}
RECIPE_NAMES = tuple(RECIPES)


def assert_results_identical(ref, got, tag=""):
    """Scalar vs batch FlowResult: ordered-item and pickle-byte equality."""
    assert ref.design == got.design, tag
    assert list(ref.qor.items()) == list(got.qor.items()), tag
    assert len(ref.snapshots) == len(got.snapshots), tag
    for want, have in zip(ref.snapshots, got.snapshots):
        assert want.stage == have.stage, tag
        assert list(want.metrics.items()) == list(have.metrics.items()), (
            f"{tag}: {want.stage}"
        )
    assert pickle.dumps(ref, 5) == pickle.dumps(got, 5), (
        f"{tag}: pickle bytes differ"
    )


# ----------------------------------------------------------------------
# Kernel level: run_flow_batch vs run_flow, no session involved.
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize(
        "design", [p.name for p in design_profiles()]
    )
    def test_width3_all_profiles(self, design):
        """Every shipped profile, one width-3 mixed-recipe stack."""
        triples = [(design, RECIPES[name], 1) for name in RECIPE_NAMES]
        refs = [run_flow(d, p, seed=s) for d, p, s in triples]
        gots = run_flow_batch(triples)
        for name, ref, got in zip(RECIPE_NAMES, refs, gots):
            assert_results_identical(ref, got, f"{design}/{name}")

    @pytest.mark.parametrize("width", (1, 8))
    @pytest.mark.parametrize("design", ("D6", "D10"))
    def test_other_widths(self, design, width):
        triples = [
            (design, RECIPES[RECIPE_NAMES[i % len(RECIPE_NAMES)]], 2)
            for i in range(width)
        ]
        refs = [run_flow(d, p, seed=s) for d, p, s in triples]
        gots = run_flow_batch(triples)
        assert len(gots) == width
        for i, (ref, got) in enumerate(zip(refs, gots)):
            assert_results_identical(ref, got, f"{design}/w{width}[{i}]")

    def test_mixed_profile_batch_reassembles_in_submission_order(self):
        triples = [
            ("D11", RECIPES["timing"], 0),
            ("D16", RECIPES["default"], 0),
            ("D11", RECIPES["power"], 0),
            ("D16", RECIPES["timing"], 0),
            ("D11", RECIPES["default"], 3),
        ]
        refs = [run_flow(d, p, seed=s) for d, p, s in triples]
        gots = run_flow_batch(triples)
        for i, (ref, got) in enumerate(zip(refs, gots)):
            assert_results_identical(ref, got, f"mixed[{i}]")

    def test_stats_accounting(self):
        stats = {}
        run_flow_batch(
            [("D10", RECIPES[name], 1) for name in RECIPE_NAMES],
            stats=stats,
        )
        assert stats["jobs"] == 3
        assert stats["calls"] == 1
        assert stats["max_width"] == 3


# ----------------------------------------------------------------------
# Session level: the batch_size door on RuntimeConfig.
# ----------------------------------------------------------------------
class TestSessionBatchEquivalence:
    @staticmethod
    def _jobs():
        profile = tiny_profile()
        return [
            (profile, RECIPES[name], seed)
            for seed in (0, 1)
            for name in RECIPE_NAMES
        ]

    @pytest.fixture(scope="class")
    def reference(self):
        with FlowSession(RuntimeConfig(workers=1)) as session:
            outcomes = session.evaluate(self._jobs())
        return [pickle.dumps(o.result, 5) for o in outcomes]

    @pytest.mark.parametrize("workers", (1, 4))
    @pytest.mark.parametrize("cached", (False, True))
    def test_bit_identical(self, reference, tmp_path, workers, cached):
        config = RuntimeConfig(
            workers=workers,
            batch_size=8,
            qor_cache_path=(
                str(tmp_path / f"qor-{workers}") if cached else None
            ),
        )
        with FlowSession(config) as session:
            got = session.evaluate(self._jobs())
            stats = session.stats()
        if workers == 1:
            # In-process transport: the very same bytes as the scalar
            # reference session.
            assert [pickle.dumps(o.result, 5) for o in got] == reference
        else:
            # Pool transport round-trips results through pickle, which
            # re-lays out the memo exactly as the scalar pool path does;
            # compare against a scalar session at the same worker count.
            with FlowSession(RuntimeConfig(workers=workers)) as scalar:
                want = scalar.evaluate(self._jobs())
            assert [pickle.dumps(o.result, 5) for o in got] == [
                pickle.dumps(o.result, 5) for o in want
            ]
        assert stats["batch_size"] == 8
        assert stats["batch_calls"] == 2          # one stack per seed
        assert stats["batch_grouped_jobs"] == 6
        assert stats["batch_max_width"] == 3

    def test_cache_hit_parity(self, tmp_path):
        jobs = self._jobs()
        sessions = {
            1: FlowSession(RuntimeConfig(
                batch_size=1, qor_cache_path=str(tmp_path / "scalar")
            )),
            8: FlowSession(RuntimeConfig(
                batch_size=8, qor_cache_path=str(tmp_path / "batch")
            )),
        }
        try:
            first = {
                k: s.evaluate(jobs) for k, s in sessions.items()
            }
            assert [pickle.dumps(o.result, 5) for o in first[1]] == \
                [pickle.dumps(o.result, 5) for o in first[8]]
            for session in sessions.values():
                before = session.cache.hits
                again = session.evaluate(jobs)
                assert session.cache.hits - before == len(jobs)
                assert all(o.cached for o in again)
            # A batch-warmed cache serves a scalar session and vice versa:
            # the keys and stored results are identical.
            crossed = FlowSession(RuntimeConfig(
                batch_size=1, qor_cache_path=str(tmp_path / "batch")
            ))
            try:
                assert all(o.cached for o in crossed.evaluate(jobs))
            finally:
                crossed.close()
        finally:
            for session in sessions.values():
                session.close()

    def test_fault_plan_forces_scalar_path(self):
        """At the executor layer a fault plan disables grouping entirely:
        fault-injected jobs always run the per-job scalar path, with
        outcomes identical to a batch_size=1 executor."""
        plan = FaultPlan(
            rate=0.6, kinds=(FaultKind.CRASH,), seed=17
        )
        profile = tiny_profile()
        jobs = [
            (profile, FlowParameters(opt=OptParams(vt_swap_bias=b)), 0)
            for b in (0.9, 1.0, 1.1, 1.2)
        ]
        outcomes = {}
        for batch_size in (1, 4):
            executor = ParallelFlowExecutor(
                workers=1, fault_plan=plan, seed=17,
                batch_size=batch_size,
            )
            try:
                outcomes[batch_size] = executor.run_batch(jobs)
                assert executor.batch_calls == 0
            finally:
                executor.close()
        for got, want in zip(outcomes[4], outcomes[1]):
            assert got.ok == want.ok
            if want.ok:
                assert got.result.qor == want.result.qor
            else:
                assert type(got.error) is type(want.error)
                assert str(got.error) == str(want.error)

    def test_group_failure_falls_back_to_scalar_errors(self):
        """A stacked evaluation that fails mid-flight re-runs its members
        through the scalar supervision path, reproducing each member's
        typed error exactly."""
        jobs = [(tiny_profile(), RECIPES[n], 0) for n in RECIPE_NAMES]
        reports = {}
        for batch_size in (1, 8):
            config = RuntimeConfig(batch_size=batch_size, min_snapshots=99)
            with FlowSession(config) as session:
                reports[batch_size] = session.evaluate(jobs)
        for got, want in zip(reports[8], reports[1]):
            assert not want.ok and not got.ok
            assert type(got.error) is CorruptQoR
            assert type(got.error) is type(want.error)
            assert str(got.error) == str(want.error)
            assert len(got.attempts) == len(want.attempts)


# ----------------------------------------------------------------------
# Knob validation: contradictory configurations are typed errors.
# ----------------------------------------------------------------------
class TestKnobRejection:
    @pytest.mark.parametrize("bad", (0, -1, 2.5, True, "8"))
    def test_invalid_batch_size(self, bad):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(batch_size=bad)

    def test_fault_plan_contradicts_batch(self):
        with pytest.raises(RuntimeConfigError, match="fault"):
            RuntimeConfig(batch_size=2, fault_plan=FaultPlan(rate=0.5))

    def test_deadline_contradicts_batch(self):
        with pytest.raises(RuntimeConfigError, match="deadline"):
            RuntimeConfig(batch_size=2, deadline_s=1.0)

    def test_custom_flow_fn_contradicts_batch(self):
        from test_parallel_executor import toy_flow

        with pytest.raises(RuntimeConfigError, match="flow_fn"):
            FlowSession(RuntimeConfig(batch_size=2), flow_fn=toy_flow)

    def test_injected_executor_contradicts_batch(self):
        with pytest.raises(RuntimeConfigError, match="batch_size"):
            FlowSession(
                RuntimeConfig(batch_size=2), executor=FlowExecutor()
            )

    def test_executor_layer_rejects_flow_fn(self):
        from test_parallel_executor import toy_flow

        with pytest.raises(ValueError, match="flow_fn"):
            ParallelFlowExecutor(batch_size=2, flow_fn=toy_flow)
        with pytest.raises(ValueError, match="batch_size"):
            ParallelFlowExecutor(batch_size=0)


# ----------------------------------------------------------------------
# CLI: --batch-size rides the shared runtime flag builder.
# ----------------------------------------------------------------------
class TestCliBatchFlag:
    @pytest.mark.parametrize("argv", (
        ["build-dataset", "--out", "x.pkl", "--batch-size", "8"],
        ["sweep", "D6", "--axis", "opt.vt_swap_bias=0.9,1.1",
         "--batch-size", "8"],
        ["evaluate", "--dataset", "d.pkl", "--model", "m.npz",
         "--batch-size", "8"],
        ["online", "D6", "--dataset", "d.pkl", "--batch-size", "8"],
    ))
    def test_flag_parses_and_maps(self, argv):
        from repro.cli import _runtime_from_args, build_parser

        args = build_parser().parse_args(argv)
        assert args.batch_size == 8
        assert _runtime_from_args(args).batch_size == 8

    def test_contradiction_is_typed(self):
        from repro.cli import _runtime_from_args, build_parser

        args = build_parser().parse_args(
            ["evaluate", "--dataset", "d.pkl", "--model", "m.npz",
             "--batch-size", "4", "--chaos-rate", "0.5"]
        )
        with pytest.raises(RuntimeConfigError):
            _runtime_from_args(args, fault_plan=FaultPlan(rate=0.5))


# ----------------------------------------------------------------------
# Observability: the batch simulator report section.
# ----------------------------------------------------------------------
class TestBatchReportSection:
    METRICS = {
        "flow_batch_calls_total": {
            "kind": "counter", "values": {"{}": 4}
        },
        "flow_batch_jobs_total": {
            "kind": "counter", "values": {"{}": 12}
        },
        "flow_batch_width": {
            "kind": "gauge", "values": {"{}": 3}
        },
    }

    def test_render_batch(self):
        from repro.observability import render_batch

        text = render_batch(self.METRICS)
        assert "stacked evaluations" in text
        assert "jobs in stacked evaluations" in text
        assert "widest stacked call" in text
        assert render_batch({}) == ""

    def test_session_stats_surface(self):
        with FlowSession(RuntimeConfig(batch_size=4)) as session:
            session.evaluate(
                [(tiny_profile(), RECIPES[n], 0) for n in RECIPE_NAMES]
            )
            stats = session.stats()
        assert stats["batch_calls"] == 1
        assert stats["batch_grouped_jobs"] == 3
        assert stats["batch_max_width"] == 3
        assert 0.0 <= stats["batch_padding_waste"] < 1.0
