"""Unit tests for the tracing core: spans, context, exporters, reports."""

import json
import threading

import pytest

from repro.observability import (
    InMemoryExporter,
    JsonlExporter,
    NOOP_SPAN,
    NoopExporter,
    Tracer,
    get_tracer,
    load_trace,
    render_trace_report,
    set_tracer,
    tracing,
)
from repro.runtime.clock import VirtualClock


class TestSpanLifecycle:
    def test_nested_spans_link_parent_ids(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_span() is outer
        records = {r.name: r for r in exporter.records()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None

    def test_timing_uses_injected_clock(self):
        clock = VirtualClock()
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=clock)
        with tracer.span("timed"):
            clock.advance(2.5)
        (record,) = exporter.records()
        assert record.duration_s == pytest.approx(2.5)

    def test_attributes_and_status(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        with tracer.span("attrs", design="D4") as span:
            span.set_attribute("seed", 7)
            span.set_attributes(k=5, phase="decode")
        (record,) = exporter.records()
        assert record.attributes == {
            "design": "D4", "seed": 7, "k": 5, "phase": "decode",
        }
        assert record.status == "ok" and record.error is None

    def test_exception_marks_span_error(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad input")
        (record,) = exporter.records()
        assert record.status == "error"
        assert record.error == "ValueError: bad input"

    def test_end_is_idempotent(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        span = tracer.span("once")
        span.end()
        span.end()
        assert len(exporter.records()) == 1

    def test_detached_span_parents_on_context_without_pushing(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        with tracer.span("request_loop") as outer:
            detached = tracer.start_span("request", request_id=3)
            # Detached spans never become the ambient context.
            assert tracer.current_span() is outer
            assert detached.parent_id == outer.span_id
        detached.end()  # may outlive the block that opened it
        names = [r.name for r in exporter.records()]
        assert names == ["request_loop", "request"]

    def test_abandoned_inner_spans_cannot_wedge_the_context(self):
        tracer = Tracer(exporter=None, clock=VirtualClock())
        outer = tracer.span("outer")
        tracer.span("abandoned")  # opened, never ended
        outer.end()
        assert tracer.current_span() is NOOP_SPAN

    def test_threads_get_independent_contexts(self):
        exporter = InMemoryExporter()
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        seen = {}

        def worker():
            with tracer.span("worker_root") as span:
                seen["parent_id"] = span.parent_id

        with tracer.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's stack is empty: its span is a root, not a
        # child of main_root.
        assert seen["parent_id"] is None


class TestDisabledTracer:
    def test_disabled_tracer_returns_the_shared_noop_span(self):
        tracer = Tracer(exporter=InMemoryExporter(), enabled=False)
        assert tracer.span("a") is NOOP_SPAN
        assert tracer.start_span("b") is NOOP_SPAN
        assert not NOOP_SPAN.enabled

    def test_noop_span_absorbs_the_full_api(self):
        with NOOP_SPAN as span:
            span.set_attribute("k", 1)
            span.set_attributes(a=2)
            span.record_exception(ValueError("x"))
            span.end()
        assert NOOP_SPAN.status == "ok"

    def test_global_tracer_disabled_by_default(self):
        assert not get_tracer().enabled

    def test_set_tracer_round_trip(self):
        replacement = Tracer(exporter=None)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)
        assert not get_tracer().enabled


class TestExporters:
    def test_ring_buffer_caps_capacity(self):
        exporter = InMemoryExporter(capacity=3)
        tracer = Tracer(exporter=exporter, clock=VirtualClock())
        for index in range(5):
            tracer.span(f"s{index}").end()
        assert [r.name for r in exporter.records()] == ["s2", "s3", "s4"]
        exporter.clear()
        assert exporter.records() == []

    def test_noop_exporter_drops_everything(self):
        tracer = Tracer(exporter=NoopExporter(), clock=VirtualClock())
        tracer.span("dropped").end()  # nothing to assert beyond "no crash"

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = VirtualClock()
        with JsonlExporter(path) as exporter:
            tracer = Tracer(exporter=exporter, clock=clock)
            with tracer.span("root", design="D4"):
                clock.advance(1.0)
                with tracer.span("child"):
                    clock.advance(0.5)
            exporter.export_metrics({"m": {"kind": "counter", "values": []}})
        trace = load_trace(path)
        assert [s.name for s in trace.spans] == ["child", "root"]
        (root,) = trace.roots()
        assert root.name == "root"
        assert [c.name for c in trace.children_of(root)] == ["child"]
        assert trace.metrics == {"m": {"kind": "counter", "values": []}}

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlExporter(path) as exporter:
            tracer = Tracer(exporter=exporter, clock=VirtualClock())
            tracer.span("a", note="with\nnewline").end()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["kind"] == "span"
        assert payload["attributes"]["note"] == "with\nnewline"

    def test_load_trace_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlExporter(path) as exporter:
            Tracer(exporter=exporter, clock=VirtualClock()).span("ok").end()
        with open(path, "a") as handle:
            handle.write('{"kind": "span", "name": "torn')  # crash mid-write
        trace = load_trace(path)
        assert [s.name for s in trace.spans] == ["ok"]

    def test_load_trace_rejects_corrupt_interior_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('not json\n{"kind": "metrics", "metrics": {}}\n')
        with pytest.raises(ValueError, match="invalid trace line"):
            load_trace(path)


class TestTracingContextManager:
    def test_tracing_records_and_restores(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with tracing(str(path)):
            assert get_tracer().enabled
            with get_tracer().span("unit"):
                pass
        assert not get_tracer().enabled
        trace = load_trace(path)
        assert [s.name for s in trace.spans] == ["unit"]
        # A final registry snapshot line is appended on exit.
        assert trace.metrics is not None

    def test_tracing_none_is_a_noop(self):
        with tracing(None):
            assert not get_tracer().enabled

    def test_report_renders(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with tracing(str(path)):
            with get_tracer().span("phase.outer"):
                with get_tracer().span("phase.inner"):
                    pass
        report = render_trace_report(load_trace(path))
        assert "phase.outer" in report
        assert "phase.inner" in report
        assert "spans" in report
