"""Cross-module property tests (hypothesis): physical and algorithmic
invariants that must hold for *any* valid input, not just the fixtures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob_value, step_log_probs
from repro.cts.tree import CtsParams, synthesize_clock_tree
from repro.insights.schema import INSIGHT_DIMS
from repro.netlist.generator import generate_netlist
from repro.placement.grid import PlacementGrid
from repro.placement.placer import PlacerParams, place
from repro.routing.groute import _diffuse
from repro.timing.constraints import default_constraints
from repro.timing.sta import run_sta
from repro.utils.rng import derive_rng

from conftest import tiny_profile


class TestRoutingDiffusionInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        move_fraction=st.floats(0.1, 0.8),
    )
    def test_diffusion_conserves_demand(self, seed, move_fraction):
        rng = derive_rng(seed, "diffuse")
        demand = rng.uniform(0, 10, size=(8, 8))
        capacity = rng.uniform(2, 6, size=(8, 8))
        total_before = demand.sum()
        _diffuse(demand, capacity, move_fraction)
        assert demand.sum() == pytest.approx(total_before, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_diffusion_never_increases_total_overflow(self, seed):
        rng = derive_rng(seed, "diffuse2")
        demand = rng.uniform(0, 10, size=(8, 8))
        capacity = rng.uniform(2, 6, size=(8, 8))
        overflow_before = np.maximum(0.0, demand - capacity).sum()
        _diffuse(demand, capacity, 0.45)
        overflow_after = np.maximum(0.0, demand - capacity).sum()
        assert overflow_after <= overflow_before + 1e-9


class TestStaPhysicalInvariants:
    @pytest.fixture(scope="class")
    def design(self):
        profile = tiny_profile("TPI", sim_gate_count=220, clock_tightness=1.1)
        netlist = generate_netlist(profile, seed=31)
        place(netlist, PlacerParams(), seed=31)
        tree = synthesize_clock_tree(netlist, CtsParams(), seed=31)
        return netlist, tree

    def test_slower_wires_never_help_setup(self, design):
        netlist, tree = design
        constraints = default_constraints(netlist)
        base = run_sta(netlist, constraints, tree)
        saved = {n.name: n.wire_delay_ps for n in netlist.nets.values()}
        try:
            for net in netlist.nets.values():
                net.wire_delay_ps *= 3.0
            slowed = run_sta(netlist, constraints, tree)
            assert slowed.wns_ps <= base.wns_ps + 1e-9
            assert slowed.tns_ps >= base.tns_ps - 1e-9
        finally:
            for net in netlist.nets.values():
                net.wire_delay_ps = saved[net.name]

    def test_uncertainty_hurts_both_checks(self, design):
        import dataclasses

        netlist, tree = design
        base_constraints = default_constraints(netlist)
        guarded = dataclasses.replace(
            base_constraints,
            clock_uncertainty_ps=base_constraints.clock_uncertainty_ps + 20.0,
        )
        base = run_sta(netlist, base_constraints, tree)
        hard = run_sta(netlist, guarded, tree)
        assert hard.wns_ps <= base.wns_ps + 1e-9
        assert hard.hold_wns_ps <= base.hold_wns_ps + 1e-9
        # Register endpoints shift by exactly the added uncertainty (primary
        # outputs are checked against an ideal capture and don't).
        for endpoint, slack in base.endpoint_slack_ps.items():
            if endpoint.startswith("PO:"):
                continue
            assert hard.endpoint_slack_ps[endpoint] == pytest.approx(
                slack - 20.0, abs=1e-6
            )
            assert hard.endpoint_hold_slack_ps[endpoint] == pytest.approx(
                base.endpoint_hold_slack_ps[endpoint] - 20.0, abs=1e-6
            )


class TestPolicyInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_step_probs_causal(self, seed):
        """log P(r_t | r_<t) must not depend on decisions after t."""
        model = InsightAlignModel(n_recipes=10, dim=16, seed=3)
        rng = derive_rng(seed, "causal")
        insight = rng.normal(size=(INSIGHT_DIMS,))
        decisions = rng.integers(0, 2, size=10)
        steps = step_log_probs(model, insight, decisions)
        mutated = decisions.copy()
        mutated[7:] = 1 - mutated[7:]
        mutated_steps = step_log_probs(model, insight, mutated)
        np.testing.assert_allclose(steps[:7], mutated_steps[:7], atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_log_probs_are_log_probabilities(self, seed):
        model = InsightAlignModel(n_recipes=10, dim=16, seed=3)
        rng = derive_rng(seed, "probs")
        insight = rng.normal(size=(INSIGHT_DIMS,))
        decisions = rng.integers(0, 2, size=10)
        value = sequence_log_prob_value(model, insight, decisions)
        assert value < 0.0
        assert np.isfinite(value)


class TestGridInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        width=st.floats(20.0, 200.0),
        bins=st.integers(4, 20),
        seed=st.integers(0, 100),
    )
    def test_density_total_area_conserved(self, width, bins, seed):
        grid = PlacementGrid.for_die(width, width, [], target_bins=bins)
        rng = derive_rng(seed, "grid")
        xs = rng.uniform(0, width, 60)
        ys = rng.uniform(0, width, 60)
        areas = rng.uniform(0.5, 3.0, 60)
        density = grid.density_map(xs, ys, areas, blockage_penalty=False)
        assert (density * grid.bin_area_um2).sum() == pytest.approx(
            areas.sum(), rel=1e-9
        )


class TestCtsInvariants:
    @settings(max_examples=6, deadline=None)
    @given(cluster=st.integers(4, 32), drive=st.sampled_from([2, 4, 8]))
    def test_cts_covers_all_sinks(self, cluster, drive):
        profile = tiny_profile("TCI", sim_gate_count=180, register_ratio=0.3)
        netlist = generate_netlist(profile, seed=5)
        place(netlist, PlacerParams(), seed=5)
        tree = synthesize_clock_tree(
            netlist,
            CtsParams(max_cluster_size=cluster, buffer_drive=drive),
            seed=5,
        )
        assert set(tree.latency_ps) == {
            c.name for c in netlist.sequential_cells()
        }
        assert min(tree.latency_ps.values()) > 0.0
