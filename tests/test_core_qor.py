"""Tests for the compound QoR score (paper eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.qor import DesignNormalizer, QoRIntention, compound_scores
from repro.errors import TrainingError


def _qors(power, tns):
    return [{"power_mw": p, "tns_ns": t} for p, t in zip(power, tns)]


class TestIntention:
    def test_default_matches_paper(self):
        intention = QoRIntention()
        weights = {name: (w, g) for name, w, g in intention.metrics}
        assert weights["power_mw"] == (0.7, False)
        assert weights["tns_ns"] == (0.3, False)

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            QoRIntention(metrics=())

    def test_negative_weight_raises(self):
        with pytest.raises(TrainingError):
            QoRIntention(metrics=(("power_mw", -0.5, False),))


class TestNormalizer:
    def test_zero_datapoints_raises(self):
        with pytest.raises(TrainingError):
            DesignNormalizer.fit([], QoRIntention())

    def test_constant_metric_no_blowup(self):
        norm = DesignNormalizer.fit(_qors([5.0, 5.0], [1.0, 2.0]), QoRIntention())
        score = norm.score({"power_mw": 5.0, "tns_ns": 1.5}, QoRIntention())
        assert np.isfinite(score)

    def test_lower_power_scores_higher(self):
        qors = _qors([1.0, 2.0, 3.0], [1.0, 1.0, 1.0])
        norm = DesignNormalizer.fit(qors, QoRIntention())
        low = norm.score(qors[0], QoRIntention())
        high = norm.score(qors[2], QoRIntention())
        assert low > high

    def test_maximize_direction(self):
        intention = QoRIntention(metrics=(("throughput", 1.0, True),))
        qors = [{"throughput": v} for v in (1.0, 2.0, 3.0)]
        norm = DesignNormalizer.fit(qors, intention)
        assert norm.score(qors[2], intention) > norm.score(qors[0], intention)


class TestCompoundScores:
    def test_per_design_zero_mean(self):
        scores = compound_scores({
            "A": _qors([1.0, 2.0, 3.0], [0.1, 0.2, 0.3]),
            "B": _qors([100.0, 200.0], [10.0, 20.0]),
        })
        for design, values in scores.items():
            assert abs(values.mean()) < 1e-9, design

    def test_scale_invariance_across_designs(self):
        # The same relative pattern at 1000x magnitude gets the same scores.
        pattern_power = [1.0, 2.0, 4.0]
        pattern_tns = [0.5, 0.1, 0.9]
        scores = compound_scores({
            "small": _qors(pattern_power, pattern_tns),
            "large": _qors(
                [p * 1000 for p in pattern_power],
                [t * 1000 for t in pattern_tns],
            ),
        })
        np.testing.assert_allclose(scores["small"], scores["large"], atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        power=st.lists(st.floats(0.1, 1e4), min_size=3, max_size=20),
        shift=st.floats(0.1, 100.0),
    )
    def test_affine_invariance(self, power, shift):
        tns = list(np.linspace(0, 10, len(power)))
        base = compound_scores({"d": _qors(power, tns)})["d"]
        shifted = compound_scores(
            {"d": _qors([p + shift for p in power], tns)}
        )["d"]
        np.testing.assert_allclose(base, shifted, atol=1e-6)

    def test_weights_steer_ranking(self):
        # Point 0: great power, bad tns.  Point 1: the reverse.
        qors = _qors([1.0, 10.0, 5.0], [10.0, 1.0, 5.0])
        power_heavy = QoRIntention(
            metrics=(("power_mw", 0.9, False), ("tns_ns", 0.1, False))
        )
        tns_heavy = QoRIntention(
            metrics=(("power_mw", 0.1, False), ("tns_ns", 0.9, False))
        )
        scores_p = compound_scores({"d": qors}, power_heavy)["d"]
        scores_t = compound_scores({"d": qors}, tns_heavy)["d"]
        assert np.argmax(scores_p) == 0
        assert np.argmax(scores_t) == 1
