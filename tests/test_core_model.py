"""Tests for the InsightAlign model (Table III) and sequence likelihoods."""

import numpy as np
import pytest

from repro.core.model import SOS_TOKEN, InsightAlignModel
from repro.core.policy import (
    sequence_log_prob,
    sequence_log_prob_value,
    step_log_probs,
)
from repro.errors import ModelError
from repro.insights.schema import INSIGHT_DIMS


@pytest.fixture(scope="module")
def model():
    return InsightAlignModel(seed=5)


@pytest.fixture(scope="module")
def insight():
    return np.random.default_rng(2).normal(size=(INSIGHT_DIMS,))


class TestArchitecture:
    def test_table3_dimensions(self, model):
        summary = model.architecture_summary()
        assert summary["decision_token_embedding"]["input"] == (40, 3)
        assert summary["decision_token_embedding"]["output"] == (40, 32)
        assert summary["insight_embedding"]["input"] == (1, 72)
        assert summary["insight_embedding"]["output"] == (1, 32)
        assert summary["transformer_decoder"]["output"] == (40, 1)
        assert summary["probabilistic"]["type"] == "Sigmoid x40"

    def test_sos_token_value(self):
        assert SOS_TOKEN == 2

    def test_bad_insight_shape(self, model):
        with pytest.raises(ModelError, match="insight shape"):
            model.logits(np.zeros(10))

    def test_bad_decisions(self, model, insight):
        with pytest.raises(ModelError, match="binary"):
            model.logits(insight, np.full(40, 2))
        with pytest.raises(ModelError, match="decisions shape"):
            model.logits(insight, np.zeros(20, dtype=np.int64))

    def test_probabilities_in_unit_interval(self, model, insight):
        probs = model.probabilities(insight)
        assert probs.shape == (40,)
        assert np.all((probs > 0) & (probs < 1))

    def test_bad_n_recipes(self):
        with pytest.raises(ModelError):
            InsightAlignModel(n_recipes=0)


class TestAutoregression:
    def test_causality(self, model, insight):
        """Changing decision t must not change logits at steps <= t."""
        base = model.logits(insight, np.zeros(40, dtype=np.int64)).numpy()
        flipped = np.zeros(40, dtype=np.int64)
        flipped[20] = 1
        modified = model.logits(insight, flipped).numpy()
        np.testing.assert_allclose(base[:21], modified[:21], atol=1e-12)
        assert not np.allclose(base[21:], modified[21:])

    def test_insight_conditioning(self, model, insight):
        other = insight + 1.0
        a = model.logits(insight).numpy()
        b = model.logits(other).numpy()
        assert not np.allclose(a, b)

    def test_batched_equals_single(self, model, insight):
        rng = np.random.default_rng(0)
        decisions = rng.integers(0, 2, size=(5, 40))
        insights = np.stack([insight + i for i in range(5)])
        batched = model.batched_logits(insights, decisions).numpy()
        for row in range(5):
            single = model.logits(insights[row], decisions[row]).numpy()
            np.testing.assert_allclose(single, batched[row], atol=1e-10)

    def test_batched_shape_errors(self, model, insight):
        with pytest.raises(ModelError):
            model.batched_logits(insight, np.zeros((1, 40), dtype=np.int64))


class TestSequenceLikelihood:
    def test_eq3_sums_step_logprobs(self, model, insight):
        rng = np.random.default_rng(1)
        decisions = rng.integers(0, 2, size=40)
        total = sequence_log_prob_value(model, insight, decisions)
        steps = step_log_probs(model, insight, decisions)
        assert total == pytest.approx(steps.sum(), abs=1e-9)

    def test_log_prob_is_negative(self, model, insight):
        decisions = np.zeros(40, dtype=np.int64)
        assert sequence_log_prob_value(model, insight, decisions) < 0

    def test_complementary_probs_sum_to_one(self, model, insight):
        """At each step P(1) + P(0) = 1 under the same prefix."""
        decisions = np.zeros(40, dtype=np.int64)
        logits = model.logits(insight, decisions).numpy()
        p1 = 1 / (1 + np.exp(-logits))
        steps_zero = step_log_probs(model, insight, decisions)
        np.testing.assert_allclose(np.exp(steps_zero), 1 - p1, atol=1e-9)

    def test_gradient_flows(self, model, insight):
        decisions = np.ones(40, dtype=np.int64)
        model.zero_grad()
        loss = -sequence_log_prob(model, insight, decisions)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_distribution_normalizes_over_sequences(self):
        """Sum of P(R) over all 2^n sequences equals 1 (tiny n)."""
        small = InsightAlignModel(n_recipes=6, dim=16, seed=9)
        insight = np.random.default_rng(4).normal(size=(INSIGHT_DIMS,))
        total = 0.0
        for code in range(2 ** 6):
            bits = [(code >> k) & 1 for k in range(6)]
            total += np.exp(sequence_log_prob_value(small, insight, bits))
        assert total == pytest.approx(1.0, abs=1e-8)
