"""Tests for insight-space design similarity."""

import numpy as np
import pytest

from repro.errors import InsightError
from repro.insights.similarity import (
    cosine_similarity,
    nearest_designs,
    similarity_matrix,
)


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_opposite(self):
        v = np.array([1.0, -2.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(InsightError):
            cosine_similarity(np.zeros(3), np.zeros(4))


class TestMatrix:
    def test_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(0)
        insights = {f"D{i}": rng.normal(size=8) for i in range(5)}
        names, matrix = similarity_matrix(insights)
        assert names == sorted(insights)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_real_designs_cluster_sensibly(self, mini_dataset):
        """Similar small 45nm designs (D10, D11) should be mutually closer
        than either is to the 28nm MCU (D6)."""
        insights = {d: mini_dataset.insight_for(d) for d in mini_dataset.designs()}
        sim = {
            pair: cosine_similarity(insights[pair[0]], insights[pair[1]])
            for pair in (("D10", "D11"), ("D10", "D6"), ("D11", "D6"))
        }
        assert sim[("D10", "D11")] >= min(sim[("D10", "D6")], sim[("D11", "D6")])


class TestNearest:
    def test_orders_by_similarity(self):
        insights = {
            "A": np.array([1.0, 0.0]),
            "B": np.array([0.7, 0.7]),
            "C": np.array([0.0, 1.0]),
        }
        ranked = nearest_designs(np.array([1.0, 0.1]), insights, k=3)
        assert [name for name, _ in ranked] == ["A", "B", "C"]

    def test_k_bounds(self):
        insights = {"A": np.ones(2)}
        assert len(nearest_designs(np.ones(2), insights, k=5)) == 1
        with pytest.raises(InsightError):
            nearest_designs(np.ones(2), insights, k=0)
