"""Persistent QoR result cache: keys, storage, and call-site integration."""

import pytest

from conftest import tiny_profile

from repro.core.dataset import build_offline_dataset
from repro.flow.parameters import FlowParameters, OptParams
from repro.flow.runner import run_flow
from repro.flow.sweep import sweep
from repro.runtime import (
    FaultKind,
    FaultPlan,
    FlowJob,
    ParallelFlowExecutor,
    QoRCache,
    RuntimeConfig,
    qor_cache_key,
)

from test_parallel_executor import toy_flow


class TestCacheKey:
    def test_key_is_stable_and_canonical(self):
        params = FlowParameters(opt=OptParams(vt_swap_bias=1.25))
        key = qor_cache_key("D6", params, seed=3)
        assert key == qor_cache_key("D6", params, seed=3)
        # Equal parameter objects hash identically even when rebuilt.
        again = FlowParameters(opt=OptParams(vt_swap_bias=1.25))
        assert key == qor_cache_key("D6", again, seed=3)

    def test_key_resolves_profiles_to_names(self):
        # A profile object and its name address the same cache slot.
        profile = tiny_profile()
        params = FlowParameters()
        by_profile = qor_cache_key(profile, params, seed=0)
        assert len(by_profile) == 64  # sha256 hex
        assert by_profile != qor_cache_key("D6", params, seed=0)

    def test_key_separates_design_seed_and_params(self):
        params = FlowParameters()
        base = qor_cache_key("D6", params, seed=0)
        assert base != qor_cache_key("D10", params, seed=0)
        assert base != qor_cache_key("D6", params, seed=1)
        assert base != qor_cache_key(
            "D6", FlowParameters(opt=OptParams(vt_swap_bias=1.3)), seed=0
        )


class TestQoRCacheStore:
    def test_put_get_round_trip(self, tmp_path):
        profile = tiny_profile()
        result = run_flow(profile, FlowParameters(), seed=5)
        cache = QoRCache(tmp_path / "qor")
        assert cache.get(profile, FlowParameters(), 5) is None
        cache.put(profile, FlowParameters(), 5, result)
        hit = cache.get(profile, FlowParameters(), 5)
        assert hit is not None
        assert hit.qor == result.qor
        assert [s.metrics for s in hit.snapshots] == \
            [s.metrics for s in result.snapshots]
        info = cache.info()
        assert info["entries"] == 1
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["bytes"] > 0

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        profile = tiny_profile()
        result = run_flow(profile, FlowParameters(), seed=1)
        cache = QoRCache(tmp_path / "qor")
        cache.put(profile, FlowParameters(), 1, result)
        (entry,) = list((tmp_path / "qor").rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        assert cache.get(profile, FlowParameters(), 1) is None
        assert not entry.exists()  # evicted, next put re-creates it
        cache.put(profile, FlowParameters(), 1, result)
        assert cache.get(profile, FlowParameters(), 1) is not None

    def test_clear_and_info(self, tmp_path):
        cache = QoRCache(tmp_path / "qor")
        result = run_flow(tiny_profile(), FlowParameters(), seed=0)
        for seed in range(3):
            cache.put(tiny_profile(), FlowParameters(), seed, result)
        assert cache.info()["entries"] == 3
        assert cache.clear() == 3
        assert cache.info()["entries"] == 0


class TestExecutorIntegration:
    def test_warm_batch_is_served_from_cache(self, tmp_path):
        profile = tiny_profile()
        jobs = [
            FlowJob(profile, FlowParameters(opt=OptParams(
                vt_swap_bias=1.0 + 0.1 * i)), seed=2)
            for i in range(3)
        ]
        path = tmp_path / "qor"
        with ParallelFlowExecutor(workers=1, cache=path) as cold:
            first = cold.run_batch(jobs)
        assert all(r.ok and not r.cached for r in first)
        with ParallelFlowExecutor(workers=1, cache=path) as warm:
            second = warm.run_batch(jobs)
            stats = warm.stats()
        for a, b in zip(first, second):
            assert b.cached
            assert b.attempts == []  # no flow ran at all
            assert b.result.qor == a.result.qor
        assert stats["cache"]["hits"] == len(jobs)

    def test_fault_injected_runs_are_never_cached(self, tmp_path):
        plan = FaultPlan(rate=1.0, kinds=(FaultKind.CRASH,), seed=11)
        path = tmp_path / "qor"
        with ParallelFlowExecutor(
            workers=1, flow_fn=toy_flow, cache=path, fault_plan=plan
        ) as executor:
            reports = executor.run_batch([FlowJob("D6")])
        assert not reports[0].ok
        assert QoRCache(path).info()["entries"] == 0

    def test_cached_results_round_trip_exactly(self, tmp_path):
        # Cached FlowResults must round-trip exactly — they feed the same
        # dataset/insight code paths as fresh ones.
        profile = tiny_profile()
        result = run_flow(profile, FlowParameters(), seed=9)
        cache = QoRCache(tmp_path / "qor")
        cache.put(profile, FlowParameters(), 9, result)
        hit = cache.get(profile, FlowParameters(), 9)
        assert hit.design == result.design
        assert hit.qor == result.qor
        assert [(s.stage, s.metrics) for s in hit.snapshots] == \
            [(s.stage, s.metrics) for s in result.snapshots]


class TestCallSites:
    def test_sweep_parallel_and_cached_matches_serial(self, tmp_path):
        profile = tiny_profile()
        axes = {"opt.vt_swap_bias": [0.8, 1.0, 1.2],
                "placer.effort": [0.8, 1.0]}
        serial = sweep(profile, axes, seed=4)
        path = str(tmp_path / "qor")
        parallel = sweep(profile, axes, seed=4,
                         runtime=RuntimeConfig(workers=2, qor_cache_path=path))
        cached = sweep(profile, axes, seed=4,
                       runtime=RuntimeConfig(workers=1, qor_cache_path=path))
        assert parallel.grid == serial.grid
        assert parallel.qors == serial.qors
        assert cached.qors == serial.qors

    @pytest.mark.parametrize("processes", (1, 2))
    def test_offline_dataset_identical_at_any_worker_count(
        self, tmp_path, processes
    ):
        kwargs = dict(designs=["D6"], sets_per_design=3, seed=5)
        reference = build_offline_dataset(
            runtime=RuntimeConfig(workers=1), **kwargs
        )
        dataset = build_offline_dataset(
            runtime=RuntimeConfig(
                workers=processes,
                qor_cache_path=str(tmp_path / f"qor{processes}"),
            ),
            **kwargs,
        )
        assert len(dataset.points) == len(reference.points)
        for a, b in zip(reference.points, dataset.points):
            assert a.design == b.design
            assert a.recipe_set == b.recipe_set
            assert a.qor == b.qor
        import numpy as np

        np.testing.assert_array_equal(
            dataset.insights["D6"].values, reference.insights["D6"].values
        )
