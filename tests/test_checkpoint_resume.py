"""Crash-safe checkpoints: atomic writes, resume bit-identity, CLI flags."""

import os
import pickle

import numpy as np
import pytest

from repro.core.alignment import AlignmentConfig, AlignmentTrainer
from repro.core.dataset import DataPoint, OfflineDataset
from repro.errors import CheckpointError
from repro.flow.runner import REQUIRED_QOR_KEYS
from repro.insights.extractor import InsightVector
from repro.insights.schema import INSIGHT_DIMS
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.serialization import load_state, save_state
from repro.runtime import (
    TrainingCheckpoint,
    atomic_pickle,
    load_checkpoint,
    save_checkpoint,
)


def synthetic_dataset(seed=0, designs=("A", "B"), points_per_design=24):
    """A tiny archive with random-but-deterministic QoR (no flow runs)."""
    rng = np.random.default_rng(seed)
    points, insights = [], {}
    for design in designs:
        insights[design] = InsightVector(
            design, rng.normal(size=(INSIGHT_DIMS,)), {}
        )
        for _ in range(points_per_design):
            bits = tuple(int(b) for b in rng.integers(0, 2, size=40))
            qor = {key: float(rng.uniform(0.5, 2.0))
                   for key in REQUIRED_QOR_KEYS}
            points.append(DataPoint(design, bits, qor))
    return OfflineDataset(points=points, insights=insights, seed=seed)


class TestAtomicPickle:
    def test_roundtrip_and_no_stray_tmp_files(self, tmp_path):
        target = tmp_path / "state.pkl"
        atomic_pickle({"x": 1}, target)
        with open(target, "rb") as handle:
            assert pickle.load(handle) == {"x": 1}
        assert os.listdir(tmp_path) == ["state.pkl"]

    def test_crash_mid_save_preserves_previous_file(self, tmp_path, monkeypatch):
        target = tmp_path / "state.pkl"
        atomic_pickle({"generation": 1}, target)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(pickle, "dump", explode)
        with pytest.raises(OSError):
            atomic_pickle({"generation": 2}, target)
        monkeypatch.undo()
        with open(target, "rb") as handle:
            assert pickle.load(handle) == {"generation": 1}
        assert os.listdir(tmp_path) == ["state.pkl"]


class TestAtomicModelSave:
    def test_crash_mid_save_preserves_previous_weights(self, tmp_path, monkeypatch):
        module = Linear(4, 3, seed=0)
        target = tmp_path / "model.npz"
        save_state(module, target)
        original = dict(np.load(target))

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", explode)
        with pytest.raises(OSError):
            save_state(Linear(4, 3, seed=9), target)
        monkeypatch.undo()
        reread = dict(np.load(target))
        assert sorted(reread) == sorted(original)
        for name in original:
            np.testing.assert_array_equal(reread[name], original[name])
        assert os.listdir(tmp_path) == ["model.npz"]

    def test_roundtrip_unchanged(self, tmp_path):
        module = Linear(5, 2, seed=3)
        target = tmp_path / "model.npz"
        save_state(module, target)
        clone = Linear(5, 2, seed=4)
        load_state(clone, target)
        for (_, a), (_, b) in zip(module.named_parameters(),
                                  clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)


class TestCheckpointFile:
    def make_checkpoint(self, step=2):
        return TrainingCheckpoint(
            kind="alignment",
            step=step,
            model_state={"w": np.arange(4.0)},
            optimizer_state={"kind": "adam"},
            rng_state=np.random.default_rng(0).bit_generator.state,
            payload={"note": "hello"},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ck.pkl"
        save_checkpoint(self.make_checkpoint(), path)
        loaded = load_checkpoint(path, expected_kind="alignment")
        assert loaded.step == 2
        assert loaded.payload["note"] == "hello"
        np.testing.assert_array_equal(loaded.model_state["w"], np.arange(4.0))

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.pkl")

    def test_wrong_kind_is_rejected(self, tmp_path):
        path = tmp_path / "ck.pkl"
        save_checkpoint(self.make_checkpoint(), path)
        with pytest.raises(CheckpointError, match="alignment"):
            load_checkpoint(path, expected_kind="online")

    def test_garbage_file_is_typed(self, tmp_path):
        path = tmp_path / "ck.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_foreign_pickle_is_rejected(self, tmp_path):
        path = tmp_path / "ck.pkl"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(CheckpointError, match="not a training checkpoint"):
            load_checkpoint(path)


class TestOptimizerState:
    def test_adam_resume_is_bit_identical(self):
        def fresh():
            module = Linear(6, 4, seed=1)
            return module, Adam(module.parameters(), lr=1e-2)

        def step(module, optimizer, value):
            for param in module.parameters():
                param.grad = np.full_like(param.data, value)
            optimizer.step()
            optimizer.zero_grad()

        # Uninterrupted: 4 steps.
        module_a, opt_a = fresh()
        for value in (0.1, -0.2, 0.3, -0.4):
            step(module_a, opt_a, value)

        # Interrupted after 2 steps, state carried through a state_dict.
        module_b, opt_b = fresh()
        for value in (0.1, -0.2):
            step(module_b, opt_b, value)
        saved_opt = opt_b.state_dict()
        saved_weights = {n: t.data.copy()
                         for n, t in module_b.named_parameters()}

        module_c, opt_c = fresh()
        for name, tensor in module_c.named_parameters():
            tensor.data = saved_weights[name].copy()
        opt_c.load_state_dict(saved_opt)
        for value in (0.3, -0.4):
            step(module_c, opt_c, value)

        for (_, a), (_, c) in zip(module_a.named_parameters(),
                                  module_c.named_parameters()):
            np.testing.assert_array_equal(a.data, c.data)

    def test_kind_mismatch_rejected(self):
        module = Linear(3, 3, seed=0)
        optimizer = Adam(module.parameters())
        with pytest.raises(ValueError, match="adam"):
            optimizer.load_state_dict({"kind": "sgd"})

    def test_shape_mismatch_rejected(self):
        module = Linear(3, 3, seed=0)
        optimizer = Adam(module.parameters())
        state = optimizer.state_dict()
        state["m"][0] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            optimizer.load_state_dict(state)


class TestAlignmentResume:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        """Killing mid-training and resuming reproduces the exact weights."""
        dataset = synthetic_dataset(seed=5)
        ckpt = tmp_path / "align.ck"
        common = dict(pairs_per_design=40, batch_size=64, seed=7)

        model_a, history_a = AlignmentTrainer(
            AlignmentConfig(epochs=5, **common)
        ).train(dataset)

        AlignmentTrainer(
            AlignmentConfig(epochs=2, checkpoint_path=str(ckpt), **common)
        ).train(dataset)
        model_c, history_c = AlignmentTrainer(
            AlignmentConfig(epochs=5, resume_from=str(ckpt), **common)
        ).train(dataset)

        state_a, state_c = model_a.state_dict(), model_c.state_dict()
        assert sorted(state_a) == sorted(state_c)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_c[name])
        assert history_a.epoch_loss == history_c.epoch_loss
        assert history_a.probe_loss == history_c.probe_loss

    def test_resume_with_different_seed_is_rejected(self, tmp_path):
        dataset = synthetic_dataset(seed=5)
        ckpt = tmp_path / "align.ck"
        AlignmentTrainer(AlignmentConfig(
            epochs=1, pairs_per_design=40, batch_size=64, seed=7,
            checkpoint_path=str(ckpt),
        )).train(dataset)
        with pytest.raises(CheckpointError, match="seed"):
            AlignmentTrainer(AlignmentConfig(
                epochs=3, pairs_per_design=40, batch_size=64, seed=8,
                resume_from=str(ckpt),
            )).train(dataset)

    def test_checkpoint_written_on_cadence(self, tmp_path):
        dataset = synthetic_dataset(seed=5)
        ckpt = tmp_path / "align.ck"
        AlignmentTrainer(AlignmentConfig(
            epochs=4, pairs_per_design=40, batch_size=64, seed=7,
            checkpoint_path=str(ckpt), checkpoint_every=2,
        )).train(dataset)
        loaded = load_checkpoint(ckpt, expected_kind="alignment")
        assert loaded.step == 3  # last completed epoch
        assert len(loaded.payload["epoch_loss"]) == 4


class TestCliFlags:
    def test_align_accepts_checkpoint_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "align", "--dataset", "d.pkl", "--out", "m.npz",
            "--checkpoint", "ck.pkl", "--checkpoint-every", "3",
            "--resume", "old.pkl",
        ])
        assert args.checkpoint == "ck.pkl"
        assert args.checkpoint_every == 3
        assert args.resume == "old.pkl"
