"""Batched clock-tree synthesis over N lanes of one compiled design.

The H-tree recursion is inherently per-lane — each lane's placement (and
``max_cluster_size``) shapes a different topology — but everything around it
is amortized across the batch: the buffer-cell lookup, the sink name/cap
tables (gathered once from the compiled design's canonical arrays), and the
per-lane sink position gathers from the stacked placement state.  The
balancing pass and its RNG draw run per lane on the lane's own derived
stream, exactly as the scalar path does, so latencies are bit-identical.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cts.tree import ClockTree, CtsParams, _balance, _TreeBuilder
from repro.errors import FlowError
from repro.netlist.compiled import CompiledDesign, LaneState
from repro.techlib.cells import CellFunction
from repro.utils.rng import derive_rng


def synthesize_clock_tree_batch(
    design: CompiledDesign,
    lanes: Sequence[LaneState],
    params_list: Sequence[CtsParams],
    seed: int = 0,
) -> List[ClockTree]:
    """Build one clock tree per lane (placement must have run on every lane)."""
    netlist0 = lanes[0].netlist
    if netlist0.clock is None:
        raise FlowError(f"{netlist0.name}: no clock defined; cannot run CTS")
    S = design.S
    if S == 0:
        raise FlowError(
            f"{netlist0.name}: clock {netlist0.clock.net_name} has no sinks"
        )
    node = netlist0.library.node
    names = list(design.seq_names)
    # Pristine DFF sizing at CTS time: input caps are shared across lanes.
    sink_caps = np.array(
        [netlist0.cells[name].cell_type.input_cap_ff for name in names]
    )
    source = np.asarray(netlist0.clock.source_xy, dtype=np.float64)
    buffer_cells = {}
    for params in params_list:
        drive = params.buffer_drive if params.buffer_drive in (1, 2, 4, 8) else 4
        if drive not in buffer_cells:
            buffer_cells[drive] = next(
                c for c in netlist0.library.variants(CellFunction.CLKBUF)
                if c.drive == drive
            )

    trees: List[ClockTree] = []
    for b, lane in enumerate(lanes):
        params = params_list[b]
        rng = derive_rng(seed, "cts", lane.netlist.name)
        drive = params.buffer_drive if params.buffer_drive in (1, 2, 4, 8) else 4
        buffer_cell = buffer_cells[drive]
        positions = np.array(
            [lane.netlist.cells[name].placed() for name in names]
        )
        builder = _TreeBuilder(
            node=node,
            buffer_cell=buffer_cell,
            max_cluster=max(2, params.max_cluster_size),
        )
        latencies = np.zeros(S)
        builder.build(source, np.arange(S), positions, sink_caps, 0, 0.0, latencies)
        latencies = _balance(latencies, params, rng)
        latency_ps = {name: float(lat) for name, lat in zip(names, latencies)}
        trees.append(ClockTree(
            sink_names=list(names),
            latency_ps=latency_ps,
            buffer_count=builder.buffer_count,
            tree_depth=builder.max_depth,
            wirelength_um=builder.wirelength_um,
            total_buffer_cap_ff=builder.buffer_count * buffer_cell.input_cap_ff,
            total_wire_cap_ff=builder.wirelength_um * node.wire_cap_ff_per_um,
        ))
    return trees
