"""H-tree clock-tree synthesis over placed flip-flops.

The tree is built by recursive geometric bisection (alternating the cut
axis), creating a buffer at every internal node.  Insertion delay per sink is
the sum of buffer delays and Elmore wire delays along its root-to-leaf path;
skew is the spread of insertion delays.  A post-pass balances delays toward
the mean, modelling the delay-buffer insertion real CTS engines perform, with
effectiveness governed by :attr:`CtsParams.balance_effort` and the achievable
floor by :attr:`CtsParams.target_skew_ps`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import FlowError
from repro.netlist.netlist import Netlist
from repro.techlib.cells import CellFunction
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class CtsParams:
    """Clock-tree knobs (the paper's Table II "Clock tree" recipe family).

    Attributes:
        max_cluster_size: Sinks per leaf buffer; smaller = deeper tree,
            more buffers, lower local skew, more clock power.
        buffer_drive: Drive strength (2/4/8) of inserted clock buffers;
            stronger = lower latency and skew, more power.
        target_skew_ps: Skew floor the balancer aims for.
        balance_effort: 0..2; how hard the balancer works (runtime/power
            cost in exchange for skew reduction).
        useful_skew_gain: 0..1; fraction of available capture-side slack
            stolen via intentional skew on setup-critical sinks (helps setup
            timing, risks hold).
    """

    max_cluster_size: int = 16
    buffer_drive: int = 4
    target_skew_ps: float = 12.0
    balance_effort: float = 1.0
    useful_skew_gain: float = 0.0


@dataclass
class ClockTree:
    """Synthesized clock tree and its electrical summary."""

    sink_names: List[str]
    latency_ps: Dict[str, float]
    buffer_count: int
    tree_depth: int
    wirelength_um: float
    total_buffer_cap_ff: float
    total_wire_cap_ff: float
    useful_skew_ps: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_latency_ps(self) -> float:
        if not self.latency_ps:
            return 0.0
        return float(np.mean(list(self.latency_ps.values())))

    @property
    def global_skew_ps(self) -> float:
        if not self.latency_ps:
            return 0.0
        values = list(self.latency_ps.values())
        return float(max(values) - min(values))


def synthesize_clock_tree(
    netlist: Netlist, params: CtsParams, seed: int = 0
) -> ClockTree:
    """Build the clock tree for ``netlist`` (placement must have run)."""
    if netlist.clock is None:
        raise FlowError(f"{netlist.name}: no clock defined; cannot run CTS")
    sinks = netlist.sequential_cells()
    if not sinks:
        raise FlowError(f"{netlist.name}: clock {netlist.clock.net_name} has no sinks")
    rng = derive_rng(seed, "cts", netlist.name)
    node = netlist.library.node
    drive = params.buffer_drive if params.buffer_drive in (1, 2, 4, 8) else 4
    buffer_cell = next(
        c for c in netlist.library.variants(CellFunction.CLKBUF) if c.drive == drive
    )

    positions = np.array([cell.placed() for cell in sinks])
    names = [cell.name for cell in sinks]
    sink_caps = np.array([cell.cell_type.input_cap_ff for cell in sinks])

    builder = _TreeBuilder(
        node=node,
        buffer_cell=buffer_cell,
        max_cluster=max(2, params.max_cluster_size),
    )
    source = np.asarray(netlist.clock.source_xy, dtype=np.float64)
    latencies = np.zeros(len(sinks))
    builder.build(source, np.arange(len(sinks)), positions, sink_caps, 0, 0.0, latencies)

    latencies = _balance(latencies, params, rng)
    latency_ps = {name: float(lat) for name, lat in zip(names, latencies)}
    return ClockTree(
        sink_names=names,
        latency_ps=latency_ps,
        buffer_count=builder.buffer_count,
        tree_depth=builder.max_depth,
        wirelength_um=builder.wirelength_um,
        total_buffer_cap_ff=builder.buffer_count * buffer_cell.input_cap_ff,
        total_wire_cap_ff=builder.wirelength_um * node.wire_cap_ff_per_um,
    )


class _TreeBuilder:
    """Recursive bisection H-tree construction with Elmore delays."""

    def __init__(self, node, buffer_cell, max_cluster: int) -> None:
        self.node = node
        self.buffer_cell = buffer_cell
        self.max_cluster = max_cluster
        self.buffer_count = 0
        self.max_depth = 0
        self.wirelength_um = 0.0

    def build(
        self,
        driver_xy: np.ndarray,
        indices: np.ndarray,
        positions: np.ndarray,
        sink_caps: np.ndarray,
        depth: int,
        arrival_ps: float,
        latencies: np.ndarray,
    ) -> None:
        self.max_depth = max(self.max_depth, depth)
        centroid = positions[indices].mean(axis=0)
        segment_um = float(np.abs(driver_xy - centroid).sum())
        self.wirelength_um += segment_um
        wire_delay = self._wire_delay_ps(segment_um)

        if len(indices) <= self.max_cluster:
            # Leaf buffer at the centroid drives the sinks directly.
            self.buffer_count += 1
            load = float(sink_caps[indices].sum())
            local_wire = float(
                np.abs(positions[indices] - centroid).sum(axis=1).mean()
            ) if len(indices) > 1 else 2.0
            self.wirelength_um += local_wire * len(indices)
            load += local_wire * len(indices) * self.node.wire_cap_ff_per_um
            buffer_delay = self.buffer_cell.delay_ps(load)
            for index in indices:
                stub_um = float(np.abs(positions[index] - centroid).sum())
                latencies[index] = (
                    arrival_ps + wire_delay + buffer_delay
                    + self._wire_delay_ps(stub_um)
                )
            return

        # Internal buffer at the centroid drives two child subtrees.
        self.buffer_count += 1
        axis = depth % 2
        order = np.argsort(positions[indices, axis], kind="stable")
        half = len(indices) // 2
        left, right = indices[order[:half]], indices[order[half:]]
        # Load seen by this buffer: two child buffer inputs + child segments.
        child_wire = sum(
            float(np.abs(centroid - positions[child].mean(axis=0)).sum())
            for child in (left, right)
        )
        load = (
            2.0 * self.buffer_cell.input_cap_ff
            + child_wire * self.node.wire_cap_ff_per_um
        )
        buffer_delay = self.buffer_cell.delay_ps(load)
        arrival = arrival_ps + wire_delay + buffer_delay
        for child in (left, right):
            self.build(
                centroid, child, positions, sink_caps, depth + 1, arrival, latencies
            )

    def _wire_delay_ps(self, length_um: float) -> float:
        return (
            0.5 * self.node.wire_res_ohm_per_um * self.node.wire_cap_ff_per_um
            * length_um ** 2 / 1000.0
        )


def _balance(latencies: np.ndarray, params: CtsParams, rng) -> np.ndarray:
    """Pull latencies toward the mean, floored by the achievable target skew.

    Models delay-buffer padding: effort 1.0 removes ~70% of the imbalance,
    but the residual can never drop below ``target_skew_ps`` (process
    variation / placement limits), and a small random residue is added so
    balancing is not magically exact.
    """
    if latencies.size <= 1:
        return latencies
    mean = latencies.mean()
    shrink = float(np.clip(0.7 * params.balance_effort, 0.0, 0.97))
    balanced = mean + (latencies - mean) * (1.0 - shrink)
    spread = balanced.max() - balanced.min()
    target = max(1.0, params.target_skew_ps)
    if spread < target:
        # Cannot do better than the target floor: re-inflate around the mean.
        scale = target / max(spread, 1e-9)
        balanced = mean + (balanced - mean) * scale
    balanced = balanced + rng.normal(0.0, 0.05 * target, size=latencies.shape)
    # Balancing inserts delay, never removes it: keep max latency monotone.
    return balanced + max(0.0, latencies.max() - balanced.max()) * 0.3
