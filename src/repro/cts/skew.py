"""Skew analysis over a synthesized clock tree."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.cts.tree import ClockTree


@dataclass
class SkewReport:
    """Clock-distribution quality metrics.

    ``harmful_skew_paths`` counts launch/capture pairs where the capture
    flop's clock arrives *earlier* than the launch flop's by more than the
    threshold — skew that directly erodes setup margin (the paper's Table I
    "critical paths with harmful clock skew" insight).
    """

    global_skew_ps: float
    local_skew_p95_ps: float
    mean_latency_ps: float
    max_latency_ps: float
    harmful_skew_paths: int
    checked_paths: int

    @property
    def harmful_fraction(self) -> float:
        if self.checked_paths == 0:
            return 0.0
        return self.harmful_skew_paths / self.checked_paths


def analyze_skew(
    tree: ClockTree,
    reg_pairs: Iterable[Tuple[str, str]],
    harmful_threshold_ps: float = 5.0,
) -> SkewReport:
    """Summarize skew; ``reg_pairs`` are (launch_ff, capture_ff) path pairs."""
    values = np.array([tree.latency_ps[name] for name in tree.sink_names])
    pairs = list(reg_pairs)
    harmful = 0
    local_skews = []
    for launch, capture in pairs:
        lat_l = tree.latency_ps.get(launch)
        lat_c = tree.latency_ps.get(capture)
        if lat_l is None or lat_c is None:
            continue
        skew = lat_c - lat_l  # negative = capture clock early = setup loss
        local_skews.append(abs(skew))
        if skew < -harmful_threshold_ps:
            harmful += 1
    return SkewReport(
        global_skew_ps=float(values.max() - values.min()) if values.size else 0.0,
        local_skew_p95_ps=(
            float(np.percentile(local_skews, 95)) if local_skews else 0.0
        ),
        mean_latency_ps=float(values.mean()) if values.size else 0.0,
        max_latency_ps=float(values.max()) if values.size else 0.0,
        harmful_skew_paths=harmful,
        checked_paths=len(pairs),
    )
