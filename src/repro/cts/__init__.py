"""Clock-tree synthesis: recursive H-tree construction, skew and latency.

CTS builds a balanced H-tree over the flip-flop positions, inserts clock
buffers level by level, and reports insertion latency, global/local skew and
clock-network power inputs.  Its knobs (target skew, buffer drive, sink
cluster size, useful-skew aggressiveness) mirror the paper's "adjust
clock-tree synthesis hyperparameters for tradeoffs among timing, skew and
latency" recipe family (Table II).
"""

from repro.cts.tree import CtsParams, ClockTree, synthesize_clock_tree
from repro.cts.skew import SkewReport, analyze_skew

__all__ = [
    "CtsParams",
    "ClockTree",
    "synthesize_clock_tree",
    "SkewReport",
    "analyze_skew",
]
