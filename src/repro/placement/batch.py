"""Stacked force-directed placement over N lanes of one compiled design.

``place_batch`` runs the scalar placer's iteration loop on ``(B, n, 2)``
position stacks: the elementwise force math (attraction step, spreading
push, annealing, clipping) is evaluated once for all lanes, while the
scatter/gather ops that must preserve per-bin accumulation order
(``np.add.at`` centroids, density maps, RUDY refreshes) run per lane on the
lane's slice — ``ufunc.at`` is sequential in index order, so per-lane calls
reproduce the scalar bits exactly.

Lanes differ only in :class:`PlacerParams` (and therefore iteration count);
a lane whose iteration budget is exhausted is *frozen* — masked out of every
update rather than padded through the math — and the frozen lane-iterations
are reported as padding waste.  Legalization, row snapping and wirelength
annotation reuse the scalar helpers verbatim per lane, consuming the lane's
own RNG stream exactly where the scalar placer would.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netlist.compiled import CompiledDesign, LaneState
from repro.placement.congestion import (
    classify_congestion,
    congestion_summary,
    rudy_map_fast,
)
from repro.placement.grid import PlacementGrid
from repro.placement.placer import (
    _CHECKPOINT_FRACTIONS,
    _CHECKPOINT_NAMES,
    PlacementResult,
    PlacerParams,
    _annotate_wirelengths,
    _boxes_fast,
    _cluster_seeds,
    _initial_positions,
    _routing_supply_per_bin,
)
from repro.utils.rng import derive_rng

_RING_OFFSETS: Dict[int, list] = {}


def _ring_offsets(radius: int) -> list:
    """Chebyshev-ring offsets in the scalar scan order (dr outer, dc inner)."""
    cached = _RING_OFFSETS.get(radius)
    if cached is None:
        cached = [
            (dr, dc)
            for dr in range(-radius, radius + 1)
            for dc in range(-radius, radius + 1)
            if max(abs(dr), abs(dc)) == radius
        ]
        _RING_OFFSETS[radius] = cached
    return cached


def _nearest_slack_bin_fast(load, capacity, r, c, min_slack, bins_y, bins_x):
    """``placer._nearest_slack_bin`` over plain-Python rows: same bin, bit
    for bit (IEEE doubles either way), without per-element ndarray overhead.
    """
    for radius in range(1, max(bins_y, bins_x)):
        best = None
        best_slack = min_slack
        for dr, dc in _ring_offsets(radius):
            rr, cc = r + dr, c + dc
            if not (0 <= rr < bins_y and 0 <= cc < bins_x):
                continue
            slack = capacity[rr][cc] - load[rr][cc]
            if slack >= best_slack:
                best_slack = slack
                best = (rr, cc)
        if best is not None:
            return best
    return None


def _legalize_fast(positions, grid: PlacementGrid, areas, width, height, rng):
    """``placer._legalize`` with the spill bookkeeping on Python floats.

    Every spill decision, RNG draw and snap matches the scalar helper; the
    load/capacity grids are materialized to nested lists so the ring search
    and the drain loop run without ndarray scalar-indexing overhead.
    """
    positions = positions.copy()
    free = grid.bin_area_um2 * np.maximum(0.02, 1.0 - grid.blockage_fraction)
    capacity = free * 1.05
    cx, cy = grid.bin_centers()
    bins_y, bins_x = grid.bins_y, grid.bins_x
    cap_rows = capacity.tolist()
    area_list = areas.tolist()

    for _ in range(5):
        rows, cols = grid.bin_indices(positions[:, 0], positions[:, 1])
        load = np.zeros((bins_y, bins_x))
        np.add.at(load, (rows, cols), areas)
        if np.all(load <= capacity * 1.02):
            break
        load_rows = load.tolist()
        cells_in_bin: Dict = {}
        for index, (r, c) in enumerate(zip(rows.tolist(), cols.tolist())):
            cells_in_bin.setdefault((r, c), []).append(index)
        order = sorted(
            cells_in_bin,
            key=lambda rc: load_rows[rc[0]][rc[1]] - cap_rows[rc[0]][rc[1]],
            reverse=True,
        )
        for (r, c) in order:
            if load_rows[r][c] <= cap_rows[r][c]:
                continue
            movers = cells_in_bin[(r, c)]
            movers.sort(key=lambda i: area_list[i])  # pop() moves biggest first
            while load_rows[r][c] > cap_rows[r][c] and movers:
                cell = movers.pop()
                target = _nearest_slack_bin_fast(
                    load_rows, cap_rows, r, c, area_list[cell], bins_y, bins_x
                )
                if target is None:
                    break
                tr, tc = target
                load_rows[r][c] -= area_list[cell]
                load_rows[tr][tc] += area_list[cell]
                jitter = rng.normal(0.0, 0.2, size=2)
                positions[cell, 0] = cx[tr, tc] + jitter[0] * grid.bin_width_um
                positions[cell, 1] = cy[tr, tc] + jitter[1] * grid.bin_height_um
        positions = np.clip(positions, 0.0, [width, height])
    row_pitch = max(0.2, height / 200.0)
    rows, _ = grid.bin_indices(positions[:, 0], positions[:, 1])
    positions[:, 1] = np.round(positions[:, 1] / row_pitch) * row_pitch
    positions[:, 1] = np.clip(
        positions[:, 1],
        rows * grid.bin_height_um,
        (rows + 1) * grid.bin_height_um - 1e-9,
    )
    return np.clip(positions, 0.0, [width, height])


def place_batch(
    design: CompiledDesign,
    lanes: Sequence[LaneState],
    params_list: Sequence[PlacerParams],
    seed: int = 0,
    stats: Optional[Dict[str, int]] = None,
) -> List[PlacementResult]:
    """Place every lane's netlist in-place; one :class:`PlacementResult` each."""
    B = len(lanes)
    netlist0 = lanes[0].netlist
    n = len(design.p_names)
    width, height = netlist0.die_width_um, netlist0.die_height_um
    target_bins = int(np.clip(np.sqrt(n) / 2.2, 4, 16))
    grid = PlacementGrid.for_die(width, height, netlist0.blockages, target_bins)
    areas = design.p_area
    supply = _routing_supply_per_bin(netlist0, grid)

    rngs = [derive_rng(seed, "placer", lane.netlist.name) for lane in lanes]
    cells_per_lane = [
        [lane.netlist.cells[name] for name in design.p_names] for lane in lanes
    ]
    positions = np.stack([
        _initial_positions(cells_per_lane[b], lanes[b].netlist, rngs[b])
        for b in range(B)
    ])
    cluster_seeds = _cluster_seeds(cells_per_lane[0], netlist0, rngs[0])

    pin_cell = design.pin_cell
    pin_net = design.pin_net
    net_sizes = design.p_net_sizes
    n_nets = len(net_sizes)
    net_weights = [
        (1.0 + p.timing_net_weight * design.p_net_crit) / np.sqrt(net_sizes - 1)
        for p in params_list
    ]
    inv_net_sizes = 1.0 / np.maximum(1, net_sizes)
    steiner_factor = 1.0 + 0.18 * np.log2(np.maximum(2, net_sizes) / 2.0)

    iters = [max(8, int(round(36 * p.effort))) for p in params_list]
    checkpoints = [
        [max(1, int(round(f * iters[b]))) for f in _CHECKPOINT_FRACTIONS]
        for b in range(B)
    ]
    results = [
        PlacementResult(grid=grid, total_hpwl_um=0.0, peak_density=0.0)
        for _ in range(B)
    ]

    cell_weight_sums = np.empty((B, n))
    for b in range(B):
        sums = np.zeros(n)
        np.add.at(sums, pin_cell, net_weights[b][pin_net])
        cell_weight_sums[b] = np.maximum(sums, 1e-9)

    if netlist0.blockages:
        blk_gy, blk_gx = np.gradient(grid.blockage_fraction)
    cong_field = np.zeros((B, grid.bins_y, grid.bins_x))
    max_iter = max(iters)
    for iteration in range(1, max_iter + 1):
        act = [b for b in range(B) if iteration <= iters[b]]
        if stats is not None:
            stats["lane_steps"] = stats.get("lane_steps", 0) + len(act)
            stats["frozen_steps"] = stats.get("frozen_steps", 0) + (B - len(act))
        k = len(act)
        sub = positions[act]
        progress = [iteration / iters[b] for b in act]
        prog = np.array(progress)[:, None, None]

        centroids = np.zeros((k, n_nets, 2))
        for j in range(k):
            np.add.at(centroids[j], pin_net, sub[j][pin_cell])
        centroids *= inv_net_sizes[None, :, None]
        target = np.zeros((k, n, 2))
        for j, b in enumerate(act):
            np.add.at(
                target[j], pin_cell,
                centroids[j][pin_net] * net_weights[b][pin_net, None],
            )
        target /= cell_weight_sums[act][:, :, None]

        step = 0.55 * (1.0 - 0.5 * prog)
        new_positions = sub + step * (target - sub)

        for j, b in enumerate(act):
            cluster_gain = params_list[b].cluster_attraction * max(
                0.0, 1.0 - 2.5 * progress[j]
            )
            if cluster_gain > 0.0:
                new_positions[j] += cluster_gain * 0.3 * (
                    cluster_seeds - new_positions[j]
                )

        density = np.empty((k, grid.bins_y, grid.bins_x))
        for j in range(k):
            density[j] = grid.density_map(sub[j][:, 0], sub[j][:, 1], areas)
        dtargets = np.array(
            [params_list[b].density_target for b in act]
        )[:, None, None]
        overflow = np.maximum(0.0, density - dtargets)
        if iteration % 5 == 0 or iteration == 1:
            for j, b in enumerate(act):
                boxes, lengths = _boxes_fast(
                    sub[j], pin_cell, pin_net, n_nets, steiner_factor
                )
                rudy = rudy_map_fast(grid, boxes, lengths, supply)
                cong_field[b] = np.maximum(0.0, rudy - 0.8)
        spreads = np.array(
            [params_list[b].spread_strength for b in act]
        )[:, None, None]
        overflow = overflow + spreads * 0.5 * cong_field[act]
        gy, gx = np.gradient(overflow, axis=(1, 2))
        rows, cols = grid.bin_indices(
            new_positions[:, :, 0], new_positions[:, :, 1]
        )
        lane_ix = np.arange(k)[:, None]
        push = spreads[:, :, 0] * (0.5 + np.array(progress)[:, None])
        new_positions[:, :, 0] -= push * gx[lane_ix, rows, cols] * grid.bin_width_um
        new_positions[:, :, 1] -= push * gy[lane_ix, rows, cols] * grid.bin_height_um

        if netlist0.blockages:
            new_positions[:, :, 0] -= 2.0 * blk_gx[rows, cols] * grid.bin_width_um
            new_positions[:, :, 1] -= 2.0 * blk_gy[rows, cols] * grid.bin_height_um

        for j, b in enumerate(act):
            temperature = (
                params_list[b].perturbation * 0.02 * width
                * (1.0 - progress[j]) ** 2
            )
            if temperature > 0.0:
                new_positions[j] += rngs[b].normal(0.0, temperature, size=(n, 2))

        positions[act] = np.clip(new_positions, 0.0, [width, height])

        for b in act:
            if iteration in checkpoints[b]:
                name = _CHECKPOINT_NAMES[checkpoints[b].index(iteration)]
                boxes, lengths = _boxes_fast(
                    positions[b], pin_cell, pin_net, n_nets, steiner_factor
                )
                snapshot = congestion_summary(
                    rudy_map_fast(grid, boxes, lengths, supply)
                )
                results[b].congestion_checkpoints[name] = snapshot
                results[b].congestion_levels[name] = classify_congestion(
                    snapshot["peak"]
                )

    for b in range(B):
        final = _legalize_fast(positions[b], grid, areas, width, height, rngs[b])
        positions[b] = final
        for cell, xy in zip(cells_per_lane[b], final):
            cell.position = (float(xy[0]), float(xy[1]))
        results[b].iterations_run = iters[b]
        boxes, lengths = _boxes_fast(final, pin_cell, pin_net, n_nets, steiner_factor)
        results[b].total_hpwl_um = _annotate_wirelengths(
            lanes[b].netlist, design.p_net_names, lengths
        )
        density = grid.density_map(
            final[:, 0], final[:, 1], areas, blockage_penalty=False
        )
        results[b].peak_density = float(density.max())
        results[b].final_congestion = congestion_summary(
            rudy_map_fast(grid, boxes, lengths, supply)
        )
        results[b].congestion_levels["final"] = classify_congestion(
            results[b].final_congestion["peak"]
        )
        lanes[b].refresh_wire_state()
    return results
