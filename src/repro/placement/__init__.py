"""Placement engine: force-directed global placement + density/congestion maps.

The placer is intentionally a *fast model* of an analytic placer: cells are
pulled toward their net centroids (wirelength force), pushed out of dense
bins (spreading force), and attracted to their logical cluster seed
(locality).  Its knobs — effort, spreading strength, timing-net weighting,
density target — are the levers the recipe catalog moves, and its trajectory
(per-checkpoint congestion) feeds the Table-I "congestion level during
placement step X" insights.
"""

from repro.placement.grid import PlacementGrid
from repro.placement.placer import PlacerParams, PlacementResult, place
from repro.placement.congestion import rudy_map, congestion_overflow

__all__ = [
    "PlacementGrid",
    "PlacerParams",
    "PlacementResult",
    "place",
    "rudy_map",
    "congestion_overflow",
]
