"""Force-directed global placement with density spreading and legalization.

The algorithm alternates wirelength attraction (cells move toward the
centroid of their nets) with density spreading (cells flow down the gradient
of the bin-density map) and blockage repulsion, annealing noise as it goes —
the classic analytic-placement force balance, reduced to its essentials so a
full placement of ~2,000 cells takes a few milliseconds.

Checkpoints at fixed progress fractions record congestion snapshots; those
snapshots are the raw material of the "congestion level during placement
step X" insights (paper Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.placement.congestion import (
    classify_congestion,
    congestion_summary,
    rudy_map_fast,
)
from repro.placement.grid import PlacementGrid
from repro.utils.rng import derive_rng

_CHECKPOINT_FRACTIONS = (0.25, 0.60, 1.00)
_CHECKPOINT_NAMES = ("early", "mid", "late")


@dataclass(frozen=True)
class PlacerParams:
    """Tunable placement knobs (the levers recipes move).

    Attributes:
        effort: Iteration budget multiplier; > 1 refines further.
        spread_strength: Density-spreading force gain.  Higher relieves
            congestion at some wirelength cost.
        timing_net_weight: Extra attraction on timing-critical (deep-level)
            nets; shortens critical paths but bunches cells.
        cluster_attraction: Pull toward logical-cluster seeds early in the
            schedule; improves locality, can worsen hotspots.
        density_target: Bin density above which spreading kicks in.
        perturbation: Annealed random jitter; escapes local minima but adds
            variance.
    """

    effort: float = 1.0
    spread_strength: float = 1.0
    timing_net_weight: float = 0.5
    cluster_attraction: float = 0.6
    density_target: float = 0.9
    perturbation: float = 1.0


@dataclass
class PlacementResult:
    """Placement outputs consumed by later stages and by insight analyzers."""

    grid: PlacementGrid
    total_hpwl_um: float
    peak_density: float
    congestion_checkpoints: Dict[str, Dict[str, float]] = field(default_factory=dict)
    congestion_levels: Dict[str, str] = field(default_factory=dict)
    final_congestion: Dict[str, float] = field(default_factory=dict)
    displacement_um: float = 0.0
    iterations_run: int = 0

    @property
    def peak_congestion(self) -> float:
        return self.final_congestion.get("peak", 0.0)


def place(netlist: Netlist, params: PlacerParams, seed: int = 0) -> PlacementResult:
    """Place ``netlist`` in-place and return placement statistics."""
    rng = derive_rng(seed, "placer", netlist.name)
    cells = [c for c in netlist.cells.values() if not c.is_clock_cell]
    names = [c.name for c in cells]
    index_of = {name: i for i, name in enumerate(names)}
    n = len(cells)
    width, height = netlist.die_width_um, netlist.die_height_um
    # Grid resolution scales with design size so a bin always holds several
    # cells — a bin smaller than one flop could never legalize.
    target_bins = int(np.clip(np.sqrt(n) / 2.2, 4, 16))
    grid = PlacementGrid.for_die(width, height, netlist.blockages, target_bins)
    areas = np.array([c.area_um2 for c in cells])

    positions = _initial_positions(cells, netlist, rng)
    cluster_seeds = _cluster_seeds(cells, netlist, rng)

    pin_cell, pin_net, net_sizes, net_weights, net_names = _build_connectivity(
        netlist, index_of, params
    )
    n_nets = len(net_sizes)
    inv_net_sizes = 1.0 / np.maximum(1, net_sizes)
    steiner_factor = 1.0 + 0.18 * np.log2(np.maximum(2, net_sizes) / 2.0)

    iterations = max(8, int(round(36 * params.effort)))
    checkpoints = [max(1, int(round(f * iterations))) for f in _CHECKPOINT_FRACTIONS]
    result = PlacementResult(grid=grid, total_hpwl_um=0.0, peak_density=0.0)

    supply = _routing_supply_per_bin(netlist, grid)
    cell_weight_sums = np.zeros(n)
    np.add.at(cell_weight_sums, pin_cell, net_weights[pin_net])
    cell_weight_sums = np.maximum(cell_weight_sums, 1e-9)

    for iteration in range(1, iterations + 1):
        progress = iteration / iterations
        # --- wirelength attraction: move toward weighted net centroids.
        centroids = np.zeros((n_nets, 2))
        np.add.at(centroids, pin_net, positions[pin_cell])
        centroids *= inv_net_sizes[:, None]
        target = np.zeros((n, 2))
        np.add.at(target, pin_cell, centroids[pin_net] * net_weights[pin_net, None])
        target /= cell_weight_sums[:, None]

        step = 0.55 * (1.0 - 0.5 * progress)
        new_positions = positions + step * (target - positions)

        # --- cluster attraction, annealed away after the first third.
        cluster_gain = params.cluster_attraction * max(0.0, 1.0 - 2.5 * progress)
        if cluster_gain > 0.0:
            new_positions += cluster_gain * 0.3 * (cluster_seeds - new_positions)

        # --- density spreading: descend the smoothed density gradient.
        density = grid.density_map(positions[:, 0], positions[:, 1], areas)
        overflow = np.maximum(0.0, density - params.density_target)
        # Routing-congestion field, refreshed every few iterations and applied
        # persistently, so spread_strength relieves *routing* hotspots too.
        if iteration % 5 == 0 or iteration == 1:
            boxes, lengths = _boxes_fast(positions, pin_cell, pin_net, n_nets, steiner_factor)
            rudy = rudy_map_fast(grid, boxes, lengths, supply)
            cong_field = np.maximum(0.0, rudy - 0.8)
        overflow = overflow + params.spread_strength * 0.5 * cong_field
        gy, gx = np.gradient(overflow)
        rows, cols = grid.bin_indices(new_positions[:, 0], new_positions[:, 1])
        push = params.spread_strength * (0.5 + progress)
        new_positions[:, 0] -= push * gx[rows, cols] * grid.bin_width_um
        new_positions[:, 1] -= push * gy[rows, cols] * grid.bin_height_um

        # --- blockage repulsion.
        if netlist.blockages:
            by, bx = np.gradient(grid.blockage_fraction)
            new_positions[:, 0] -= 2.0 * bx[rows, cols] * grid.bin_width_um
            new_positions[:, 1] -= 2.0 * by[rows, cols] * grid.bin_height_um

        # --- annealed perturbation.
        temperature = params.perturbation * 0.02 * width * (1.0 - progress) ** 2
        if temperature > 0.0:
            new_positions += rng.normal(0.0, temperature, size=(n, 2))

        positions = np.clip(new_positions, 0.0, [width, height])

        if iteration in checkpoints:
            name = _CHECKPOINT_NAMES[checkpoints.index(iteration)]
            boxes, lengths = _boxes_fast(positions, pin_cell, pin_net, n_nets, steiner_factor)
            snapshot = congestion_summary(rudy_map_fast(grid, boxes, lengths, supply))
            result.congestion_checkpoints[name] = snapshot
            result.congestion_levels[name] = classify_congestion(snapshot["peak"])

    positions = _legalize(positions, grid, areas, width, height, rng)
    for cell, xy in zip(cells, positions):
        cell.position = (float(xy[0]), float(xy[1]))

    result.iterations_run = iterations
    boxes, lengths = _boxes_fast(positions, pin_cell, pin_net, n_nets, steiner_factor)
    result.total_hpwl_um = _annotate_wirelengths(netlist, net_names, lengths)
    density = grid.density_map(
        positions[:, 0], positions[:, 1], areas, blockage_penalty=False
    )
    result.peak_density = float(density.max())
    result.final_congestion = congestion_summary(
        rudy_map_fast(grid, boxes, lengths, supply)
    )
    result.congestion_levels["final"] = classify_congestion(
        result.final_congestion["peak"]
    )
    return result


def _boxes_fast(
    positions: np.ndarray,
    pin_cell: np.ndarray,
    pin_net: np.ndarray,
    n_nets: int,
    steiner_factor: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-net bounding boxes + Steiner-corrected lengths."""
    xs = positions[pin_cell, 0]
    ys = positions[pin_cell, 1]
    xmin = np.full(n_nets, np.inf)
    ymin = np.full(n_nets, np.inf)
    xmax = np.full(n_nets, -np.inf)
    ymax = np.full(n_nets, -np.inf)
    np.minimum.at(xmin, pin_net, xs)
    np.minimum.at(ymin, pin_net, ys)
    np.maximum.at(xmax, pin_net, xs)
    np.maximum.at(ymax, pin_net, ys)
    boxes = np.column_stack([xmin, ymin, xmax, ymax])
    hpwl = (xmax - xmin) + (ymax - ymin)
    return boxes, hpwl * steiner_factor


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _initial_positions(cells, netlist: Netlist, rng) -> np.ndarray:
    """Scatter cells near their cluster seed to start from a sane topology."""
    width, height = netlist.die_width_um, netlist.die_height_um
    clusters = np.array([c.cluster for c in cells])
    unique = np.unique(clusters)
    grid_side = int(np.ceil(np.sqrt(len(unique))))
    seeds = {}
    for rank, cluster in enumerate(unique):
        gx, gy = rank % grid_side, rank // grid_side
        seeds[cluster] = (
            (gx + 0.5) / grid_side * width,
            (gy + 0.5) / grid_side * height,
        )
    positions = np.array([seeds[c] for c in clusters], dtype=np.float64)
    positions += rng.normal(0.0, 0.08 * width, size=positions.shape)
    return np.clip(positions, 0.0, [width, height])


def _cluster_seeds(cells, netlist: Netlist, rng) -> np.ndarray:
    width, height = netlist.die_width_um, netlist.die_height_um
    clusters = np.array([c.cluster for c in cells])
    unique = np.unique(clusters)
    grid_side = int(np.ceil(np.sqrt(len(unique))))
    seeds = {}
    for rank, cluster in enumerate(unique):
        gx, gy = rank % grid_side, rank // grid_side
        seeds[cluster] = (
            (gx + 0.5) / grid_side * width,
            (gy + 0.5) / grid_side * height,
        )
    return np.array([seeds[c] for c in clusters], dtype=np.float64)


def _build_connectivity(
    netlist: Netlist, index_of: Dict[str, int], params: PlacerParams
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[str]]:
    """Flatten net membership to (pin_cell, pin_net) arrays with net weights."""
    pin_cell: List[int] = []
    pin_net: List[int] = []
    net_sizes: List[int] = []
    net_weights: List[float] = []
    net_names: List[str] = []
    max_level = max((c.level for c in netlist.cells.values()), default=1) or 1
    net_index = 0
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        members = []
        if net.driver is not None and net.driver in index_of:
            members.append(index_of[net.driver])
        for sink, pin in net.sinks:
            if pin >= 0 and sink in index_of:
                members.append(index_of[sink])
        if len(members) < 2:
            continue
        driver_level = (
            netlist.cells[net.driver].level if net.driver in netlist.cells else 0
        )
        criticality = driver_level / max_level
        weight = (1.0 + params.timing_net_weight * criticality) / np.sqrt(len(members) - 1)
        for member in members:
            pin_cell.append(member)
            pin_net.append(net_index)
        net_sizes.append(len(members))
        net_weights.append(weight)
        net_names.append(net.name)
        net_index += 1
    return (
        np.asarray(pin_cell, dtype=np.int64),
        np.asarray(pin_net, dtype=np.int64),
        np.asarray(net_sizes, dtype=np.int64),
        np.asarray(net_weights, dtype=np.float64),
        net_names,
    )


def _routing_supply_per_bin(netlist: Netlist, grid: PlacementGrid) -> float:
    """Track-length supply per bin from the node's routing pitch.

    Assumes ~6 usable routing layers; the global router shares this model.
    """
    pitch = netlist.library.node.track_pitch_um
    tracks_per_layer = grid.bin_width_um / pitch
    usable_layers = 6.0
    return tracks_per_layer * usable_layers * grid.bin_height_um * 0.5


def _legalize(positions, grid: PlacementGrid, areas, width, height, rng) -> np.ndarray:
    """Spill cells out of over-capacity bins into the nearest bins with slack.

    A gradient step cannot empty the hottest bin (the gradient vanishes at a
    local maximum), so legalization explicitly moves surplus cells, nearest
    slack bin first.
    """
    positions = positions.copy()
    free = grid.bin_area_um2 * np.maximum(0.02, 1.0 - grid.blockage_fraction)
    capacity = free * 1.05
    cx, cy = grid.bin_centers()

    for _ in range(5):
        rows, cols = grid.bin_indices(positions[:, 0], positions[:, 1])
        load = np.zeros((grid.bins_y, grid.bins_x))
        np.add.at(load, (rows, cols), areas)
        if np.all(load <= capacity * 1.02):
            break
        cells_in_bin: Dict[Tuple[int, int], List[int]] = {}
        for index, (r, c) in enumerate(zip(rows, cols)):
            cells_in_bin.setdefault((int(r), int(c)), []).append(index)
        order = sorted(
            cells_in_bin,
            key=lambda rc: load[rc] - capacity[rc],
            reverse=True,
        )
        for (r, c) in order:
            if load[r, c] <= capacity[r, c]:
                continue
            movers = cells_in_bin[(r, c)]
            movers.sort(key=lambda i: areas[i])  # pop() moves biggest first
            while load[r, c] > capacity[r, c] and movers:
                cell = movers.pop()
                # Only spill into a bin that can actually absorb the cell,
                # otherwise the move just relocates the overflow.
                target = _nearest_slack_bin(load, capacity, r, c, areas[cell])
                if target is None:
                    break
                tr, tc = target
                load[r, c] -= areas[cell]
                load[tr, tc] += areas[cell]
                jitter = rng.normal(0.0, 0.2, size=2)
                positions[cell, 0] = cx[tr, tc] + jitter[0] * grid.bin_width_um
                positions[cell, 1] = cy[tr, tc] + jitter[1] * grid.bin_height_um
        positions = np.clip(positions, 0.0, [width, height])
    # Snap to site rows (pitch scaled to keep ~200 rows on any die).  The
    # snap is clamped to each cell's legalized bin: rounding can carry a
    # boundary cell across a bin edge, silently re-filling a bin (e.g. a
    # fully-blocked one) the spill loop just emptied.
    row_pitch = max(0.2, height / 200.0)
    rows, _ = grid.bin_indices(positions[:, 0], positions[:, 1])
    positions[:, 1] = np.round(positions[:, 1] / row_pitch) * row_pitch
    positions[:, 1] = np.clip(
        positions[:, 1],
        rows * grid.bin_height_um,
        (rows + 1) * grid.bin_height_um - 1e-9,
    )
    return np.clip(positions, 0.0, [width, height])


def _nearest_slack_bin(load, capacity, r, c, min_slack):
    """Closest bin (ring search) with at least ``min_slack`` free capacity."""
    bins_y, bins_x = load.shape
    for radius in range(1, max(bins_y, bins_x)):
        best = None
        best_slack = min_slack
        for dr in range(-radius, radius + 1):
            for dc in range(-radius, radius + 1):
                if max(abs(dr), abs(dc)) != radius:
                    continue
                rr, cc = r + dr, c + dc
                if not (0 <= rr < bins_y and 0 <= cc < bins_x):
                    continue
                slack = capacity[rr, cc] - load[rr, cc]
                if slack >= best_slack:
                    best_slack = slack
                    best = (rr, cc)
        if best is not None:
            return best
    return None


def _annotate_wirelengths(
    netlist: Netlist, net_names: List[str], lengths: np.ndarray
) -> float:
    """Write Steiner-corrected wire lengths / RC onto nets; return total."""
    node = netlist.library.node
    length_of = dict(zip(net_names, lengths))
    total = 0.0
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        net.wire_length_um = float(length_of.get(net.name, 2.0))
        total += net.wire_length_um
        net.wire_cap_ff = net.wire_length_um * node.wire_cap_ff_per_um
        net.wire_delay_ps = (
            0.5 * node.wire_res_ohm_per_um * node.wire_cap_ff_per_um
            * net.wire_length_um ** 2 / 1000.0
        )
    return total
