"""Detailed placement: greedy swap/relocate refinement after legalization.

Classic detailed placement reduces wirelength with local, legality-
preserving moves.  Two move types:

- **swap**: exchange two cells' locations (area-compatible, so bin loads
  are unchanged up to the cells' area difference tolerance),
- **relocate**: nudge a cell to the median of its connected net centroids
  if the destination bin has slack.

Moves are accepted only when the affected nets' HPWL strictly decreases,
so total HPWL is monotonically non-increasing — a property the test suite
enforces.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.rng import derive_rng


class _NetGeometry:
    """Tracks per-net HPWL under candidate position changes."""

    def __init__(self, netlist: Netlist, index_of: Dict[str, int],
                 positions: np.ndarray) -> None:
        self.positions = positions
        self.net_members: List[np.ndarray] = []
        self.cell_nets: Dict[int, List[int]] = {}
        for net in netlist.nets.values():
            if net.is_clock:
                continue
            members = []
            if net.driver is not None and net.driver in index_of:
                members.append(index_of[net.driver])
            for sink, pin in net.sinks:
                if pin >= 0 and sink in index_of:
                    members.append(index_of[sink])
            if len(members) < 2:
                continue
            net_id = len(self.net_members)
            self.net_members.append(np.asarray(members, dtype=np.int64))
            for member in members:
                self.cell_nets.setdefault(member, []).append(net_id)

    def hpwl_of(self, net_ids: Sequence[int]) -> float:
        total = 0.0
        for net_id in net_ids:
            pts = self.positions[self.net_members[net_id]]
            total += float(
                pts[:, 0].max() - pts[:, 0].min()
                + pts[:, 1].max() - pts[:, 1].min()
            )
        return total

    def total_hpwl(self) -> float:
        return self.hpwl_of(range(len(self.net_members)))

    def nets_of(self, *cells: int) -> List[int]:
        seen: Set[int] = set()
        for cell in cells:
            seen.update(self.cell_nets.get(cell, ()))
        return list(seen)


def refine_placement(
    netlist: Netlist,
    moves: int = 2000,
    seed: int = 0,
    area_tolerance: float = 0.25,
) -> Tuple[float, int]:
    """Greedy swap refinement; returns (HPWL improvement um, accepted moves).

    Only swaps between cells whose areas differ by at most
    ``area_tolerance`` (relative) are considered, so legalized bin loads
    stay legal.  Positions are updated in place on the netlist; callers
    should re-annotate wire parasitics afterwards if timing matters.
    """
    rng = derive_rng(seed, "detailed", netlist.name)
    cells = [
        c for c in netlist.cells.values()
        if not c.is_clock_cell and c.position is not None and not c.is_fixed
    ]
    if len(cells) < 2:
        return 0.0, 0
    index_of = {c.name: i for i, c in enumerate(cells)}
    positions = np.array([c.position for c in cells], dtype=np.float64)
    geometry = _NetGeometry(netlist, index_of, positions)
    areas = np.array([c.area_um2 for c in cells])

    improvement = 0.0
    accepted = 0
    n = len(cells)
    for _ in range(max(0, moves)):
        a, b = rng.integers(0, n, size=2)
        if a == b:
            continue
        big = max(areas[a], areas[b])
        if big > 0 and abs(areas[a] - areas[b]) / big > area_tolerance:
            continue
        nets = geometry.nets_of(int(a), int(b))
        if not nets:
            continue
        before = geometry.hpwl_of(nets)
        positions[[a, b]] = positions[[b, a]]
        after = geometry.hpwl_of(nets)
        if after < before - 1e-12:
            improvement += before - after
            accepted += 1
        else:
            positions[[a, b]] = positions[[b, a]]  # revert

    for cell, xy in zip(cells, positions):
        cell.position = (float(xy[0]), float(xy[1]))
    return improvement, accepted
