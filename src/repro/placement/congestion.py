"""Routing-demand estimation (RUDY) over the placement grid.

RUDY (Rectangular Uniform wire DensitY) spreads each net's estimated
wirelength uniformly over its bounding box; dividing by per-bin routing
supply gives a congestion ratio where > 1.0 means demand exceeds capacity.
This is the signal both the placer's congestion-driven spreading and the
Table-I "congestion level during placement step X" insight consume.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.placement.grid import PlacementGrid


def net_bounding_boxes(
    net_pins: Sequence[np.ndarray],
) -> np.ndarray:
    """Per-net bounding boxes as rows ``(xmin, ymin, xmax, ymax)``."""
    boxes = np.empty((len(net_pins), 4))
    for index, pins in enumerate(net_pins):
        boxes[index, 0] = pins[:, 0].min()
        boxes[index, 1] = pins[:, 1].min()
        boxes[index, 2] = pins[:, 0].max()
        boxes[index, 3] = pins[:, 1].max()
    return boxes


def rudy_map(
    grid: PlacementGrid,
    boxes: np.ndarray,
    wirelengths_um: np.ndarray,
    supply_um_per_bin: float,
) -> np.ndarray:
    """RUDY congestion ratio per bin.

    Args:
        grid: Placement grid.
        boxes: ``(n_nets, 4)`` bounding boxes.
        wirelengths_um: Estimated wirelength per net (HPWL-based).
        supply_um_per_bin: Routing supply (track-length) per bin; shrunk by
            blockages.

    Returns:
        ``(bins_y, bins_x)`` demand/supply ratio.
    """
    demand = np.zeros((grid.bins_y, grid.bins_x))
    bw, bh = grid.bin_width_um, grid.bin_height_um
    for (xmin, ymin, xmax, ymax), length in zip(boxes, wirelengths_um):
        if length <= 0.0:
            continue
        c0 = int(np.clip(xmin / bw, 0, grid.bins_x - 1))
        c1 = int(np.clip(xmax / bw, 0, grid.bins_x - 1))
        r0 = int(np.clip(ymin / bh, 0, grid.bins_y - 1))
        r1 = int(np.clip(ymax / bh, 0, grid.bins_y - 1))
        span = (r1 - r0 + 1) * (c1 - c0 + 1)
        demand[r0:r1 + 1, c0:c1 + 1] += length / span
    supply = supply_um_per_bin * np.maximum(0.05, 1.0 - 0.8 * grid.blockage_fraction)
    return demand / supply


def rudy_map_fast(
    grid: PlacementGrid,
    boxes: np.ndarray,
    wirelengths_um: np.ndarray,
    supply_um_per_bin: float,
) -> np.ndarray:
    """Vectorized RUDY via a 2-D difference array (O(nets + bins^2)).

    Equivalent to :func:`rudy_map` but without the per-net Python loop; used
    in the placer's inner loop.
    """
    if len(boxes) == 0:
        supply = supply_um_per_bin * np.maximum(0.05, 1.0 - 0.8 * grid.blockage_fraction)
        return np.zeros((grid.bins_y, grid.bins_x)) / supply
    bw, bh = grid.bin_width_um, grid.bin_height_um
    c0 = np.clip((boxes[:, 0] / bw).astype(np.int64), 0, grid.bins_x - 1)
    c1 = np.clip((boxes[:, 2] / bw).astype(np.int64), 0, grid.bins_x - 1)
    r0 = np.clip((boxes[:, 1] / bh).astype(np.int64), 0, grid.bins_y - 1)
    r1 = np.clip((boxes[:, 3] / bh).astype(np.int64), 0, grid.bins_y - 1)
    span = (r1 - r0 + 1) * (c1 - c0 + 1)
    value = np.where(wirelengths_um > 0, wirelengths_um / span, 0.0)
    diff = np.zeros((grid.bins_y + 1, grid.bins_x + 1))
    np.add.at(diff, (r0, c0), value)
    np.add.at(diff, (r0, c1 + 1), -value)
    np.add.at(diff, (r1 + 1, c0), -value)
    np.add.at(diff, (r1 + 1, c1 + 1), value)
    demand = diff.cumsum(axis=0).cumsum(axis=1)[: grid.bins_y, : grid.bins_x]
    supply = supply_um_per_bin * np.maximum(0.05, 1.0 - 0.8 * grid.blockage_fraction)
    return demand / supply


def congestion_overflow(congestion: np.ndarray, threshold: float = 1.0) -> float:
    """Total demand exceeding supply, summed over overflowed bins."""
    return float(np.maximum(0.0, congestion - threshold).sum())


def congestion_summary(congestion: np.ndarray) -> Dict[str, float]:
    """Peak / mean / hotspot statistics used by insights and reports."""
    flat = congestion.ravel()
    return {
        "peak": float(flat.max()) if flat.size else 0.0,
        "mean": float(flat.mean()) if flat.size else 0.0,
        "p95": float(np.percentile(flat, 95)) if flat.size else 0.0,
        "overflow": congestion_overflow(congestion),
        "hotspot_fraction": float((flat > 1.0).mean()) if flat.size else 0.0,
    }


def classify_congestion(peak: float) -> str:
    """Map peak congestion to the paper's {low, medium, high} insight range."""
    if peak < 0.8:
        return "low"
    if peak < 1.15:
        return "medium"
    return "high"
