"""Placement grid: bins the die, tracks cell-area density and blockages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class PlacementGrid:
    """A regular bin grid over the die.

    Attributes:
        width_um / height_um: Die extents.
        bins_x / bins_y: Grid resolution.
        blockage_fraction: Per-bin fraction of area covered by macros,
            shape ``(bins_y, bins_x)``.
    """

    width_um: float
    height_um: float
    bins_x: int
    bins_y: int
    blockage_fraction: np.ndarray

    @classmethod
    def for_die(
        cls,
        width_um: float,
        height_um: float,
        blockages: List[Tuple[float, float, float, float]],
        target_bins: int = 16,
    ) -> "PlacementGrid":
        """Build a grid with ~``target_bins`` bins per side, rasterizing macros."""
        bins_x = max(4, target_bins)
        bins_y = max(4, target_bins)
        fraction = np.zeros((bins_y, bins_x))
        bin_w = width_um / bins_x
        bin_h = height_um / bins_y
        for (bx, by, bw, bh) in blockages:
            for iy in range(bins_y):
                for ix in range(bins_x):
                    x0, y0 = ix * bin_w, iy * bin_h
                    overlap_w = max(0.0, min(x0 + bin_w, bx + bw) - max(x0, bx))
                    overlap_h = max(0.0, min(y0 + bin_h, by + bh) - max(y0, by))
                    fraction[iy, ix] += (overlap_w * overlap_h) / (bin_w * bin_h)
        np.clip(fraction, 0.0, 1.0, out=fraction)
        return cls(width_um, height_um, bins_x, bins_y, fraction)

    @property
    def bin_width_um(self) -> float:
        return self.width_um / self.bins_x

    @property
    def bin_height_um(self) -> float:
        return self.height_um / self.bins_y

    @property
    def bin_area_um2(self) -> float:
        return self.bin_width_um * self.bin_height_um

    def bin_indices(self, xs: np.ndarray, ys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map coordinates to (row, col) bin indices, clipped to the die."""
        cols = np.clip((xs / self.bin_width_um).astype(np.int64), 0, self.bins_x - 1)
        rows = np.clip((ys / self.bin_height_um).astype(np.int64), 0, self.bins_y - 1)
        return rows, cols

    def density_map(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        areas: np.ndarray,
        blockage_penalty: bool = True,
    ) -> np.ndarray:
        """Cell-area density per bin.

        Density 1.0 means the bin's free (non-macro) area is fully used.
        With ``blockage_penalty`` (the default, used as the spreading field),
        heavily-blocked bins get a constant bump so the force field always
        pushes cells off macros; pass ``False`` for reporting.
        """
        rows, cols = self.bin_indices(xs, ys)
        used = np.zeros((self.bins_y, self.bins_x))
        np.add.at(used, (rows, cols), areas)
        # Clamp free area so fully-blocked bins keep density finite.
        free = self.bin_area_um2 * np.maximum(0.05, 1.0 - self.blockage_fraction)
        density = used / free
        if blockage_penalty:
            density = density + np.where(self.blockage_fraction > 0.9, 3.0, 0.0)
        return density

    def bin_centers(self) -> Tuple[np.ndarray, np.ndarray]:
        """Mesh of bin-center coordinates (cx, cy), each (bins_y, bins_x)."""
        cx = (np.arange(self.bins_x) + 0.5) * self.bin_width_um
        cy = (np.arange(self.bins_y) + 0.5) * self.bin_height_um
        return np.meshgrid(cx, cy)
