"""repro.distributed — actor/learner execution of the online loop.

The package splits the online fine-tuning loop of
:mod:`repro.core.online` across processes: N **actors**, each owning a
:class:`~repro.runtime.session.FlowSession`, evaluate proposed recipe
sets and stream ``(insight, recipe set, QoR, policy version)`` experience
records over private pipes to one **learner**, which runs the existing
margin-DPO + PPO update and broadcasts fresh weight versions back.
Membership is elastic: dead actors respawn under a budget with their lost
tasks re-dispatched deterministically, and a budget-dry pool degrades to
supervised in-process execution.

Entry points:

- :class:`DistributedConfig` — frozen, validated knobs; compose it into
  :class:`~repro.core.online.OnlineConfig` as ``distributed=``.
- :class:`DistributedOnlineFineTuner` — the learner; drop-in for
  :class:`~repro.core.online.OnlineFineTuner`.  Sync mode is
  bit-identical to the serial loop (checkpoint bytes included); async
  mode trades that for wall-clock under a ``max_policy_lag`` staleness
  bound.
- :func:`fine_tuner_for` — picks the right tuner for a config.

Only the config is imported eagerly — the learner/actor machinery (and
its multiprocessing imports) loads on first attribute access, so
``OnlineConfig(distributed=...)`` validation stays cheap and cycle-free.
"""

from __future__ import annotations

from repro.distributed.config import MODES, DistributedConfig

__all__ = [
    "MODES",
    "DistributedConfig",
    "DistributedOnlineFineTuner",
    "fine_tuner_for",
    "ActorPool",
    "ActorSpec",
    "propose_one",
    "ExperienceQueue",
    "ExperienceRecord",
]

_LAZY = {
    "DistributedOnlineFineTuner": "repro.distributed.learner",
    "fine_tuner_for": "repro.distributed.learner",
    "ActorPool": "repro.distributed.actor",
    "ActorSpec": "repro.distributed.actor",
    "propose_one": "repro.distributed.actor",
    "ExperienceQueue": "repro.distributed.experience",
    "ExperienceRecord": "repro.distributed.experience",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
