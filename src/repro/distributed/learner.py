"""The distributed learner: the online loop over an elastic actor pool.

:class:`DistributedOnlineFineTuner` subclasses the serial
:class:`~repro.core.online.OnlineFineTuner` and replaces *where flows
run*, never *what the loop computes*:

**Sync mode** inherits the serial ``run()`` wholesale — proposing, the
margin-DPO + PPO update, insight refresh, records and checkpoints all
stay learner-side, in the serial order — and overrides only
``_evaluate``: each iteration's K proposals are dispatched over the actor
pool and reassembled by batch index.  Because actors key per-job
randomness on that index (``evaluate_at``), and a lost task is re-issued
with an incremented dispatch count that perturbs only fault streams, the
trajectory is **bit-identical to the serial loop at any actor count —
checkpoint bytes included** (arriving QoR dicts are re-keyed with the
interned literals so pickle's memo layout matches the in-process run;
see :func:`repro.runtime.checkpoint.intern_keys`).

**Async mode** runs a version-stamped experience loop: actors hold a
policy replica, propose with ``(seed, task id, dispatch)``-keyed
sampling, evaluate, and stream experience records back; the learner folds
arrival-ordered batches of K through the *same* update body the serial
loop uses (:meth:`OnlineFineTuner._absorb`), bumps the policy version,
and broadcasts fresh weights.  Records older than ``max_policy_lag``
versions are dropped (counted) and their proposal slot re-issued, so
model updates never consume arbitrarily stale experience.

Elastic membership in both modes: actor death is absorbed by respawn
under ``max_actor_respawns`` — the lost task re-dispatched with
``dispatch + 1`` — and past the budget the learner degrades to supervised
in-process execution (or raises
:class:`~repro.errors.WorkerPoolError` when ``degrade_to_serial`` is
off).  No experience record is ever lost to a death: a record sent
before the kill is drained from the dead actor's pipe, and anything
in flight is re-issued.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.online import OnlineFineTuner, OnlineResult, _LoopState
from repro.core.qor import QoRIntention
from repro.errors import TrainingError, WorkerPoolError
from repro.insights.extractor import InsightExtractor
from repro.netlist.profiles import get_profile
from repro.nn.optim import Adam
from repro.observability import get_registry, get_tracer
from repro.runtime.checkpoint import intern_keys
from repro.runtime.session import FlowJob
from repro.utils.rng import derive_rng

from repro.distributed.actor import ActorPool, ActorSpec, propose_one
from repro.distributed.experience import ExperienceQueue, ExperienceRecord

#: Task-id stride between sync iterations (keeps ids globally unique
#: without the learner tracking a counter through the inherited loop).
_SYNC_STRIDE = 1 << 20


class DistributedOnlineFineTuner(OnlineFineTuner):
    """Actor/learner execution of the online fine-tuning loop.

    Args:
        config: An :class:`~repro.core.online.OnlineConfig` whose
            ``distributed`` field carries the validated
            :class:`~repro.distributed.config.DistributedConfig`.
        flow_fn: Tool invocation override; must be picklable (module
            level) — it ships to every actor process.
    """

    def __init__(self, config, flow_fn=None) -> None:
        if config.distributed is None:
            raise TrainingError(
                "DistributedOnlineFineTuner needs config.distributed "
                "(a repro.distributed.DistributedConfig); for the "
                "in-process loop use OnlineFineTuner"
            )
        super().__init__(config, flow_fn=flow_fn)
        self.dist = config.distributed
        self._pool: Optional[ActorPool] = None
        self._spec: Optional[ActorSpec] = None
        self._queue = ExperienceQueue()
        self._sync_state: Optional[tuple] = None
        self._local_only = False
        self._pool_spawned = 0
        self._pool_restarts = 0
        self._records_total = 0
        self._reissued = 0
        self._dropped = 0
        self._broadcasts = 0

    # ------------------------------------------------------------------
    def actor_stats(self) -> Dict[str, object]:
        """Membership and experience-stream counters for this run."""
        out: Dict[str, object] = {
            "mode": self.dist.mode,
            "actors": self.dist.actors,
            "actors_live": (
                self._pool.live_count() if self._pool is not None else 0
            ),
            "spawned": self._pool_spawned,
            "restarts": self._pool_restarts,
            "records_total": self._records_total,
            "reissued": self._reissued,
            "dropped_stale": self._dropped,
            "broadcasts": self._broadcasts,
            "degraded": self._local_only,
        }
        return out

    def close(self) -> None:
        self._shutdown_pool()
        super().close()

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool_spawned = self._pool.stats()["spawned"]
            self._pool_restarts = self._pool.stats()["restarts"]
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    def run(
        self,
        model,
        dataset,
        design: str,
        intention: QoRIntention = QoRIntention(),
        verbose: bool = False,
    ) -> OnlineResult:
        dist = self.dist
        tracer = get_tracer()
        with tracer.span(
            "online.learner",
            mode=dist.mode,
            actors=dist.actors,
            design=str(design),
        ):
            try:
                if dist.mode == "async":
                    return self._run_async(
                        model, dataset, design, intention, verbose
                    )
                self._spec = self._make_spec(design, dataset.seed)
                return super().run(model, dataset, design, intention,
                                   verbose)
            finally:
                self._shutdown_pool()

    def _make_spec(self, design, dataset_seed: int,
                   model_shape: Optional[Tuple[int, int, int]] = None
                   ) -> ActorSpec:
        # Actors evaluate one job at a time in-process (workers=1) and
        # trace-quiet (concurrent writers would interleave the JSONL
        # trace); everything else — policy, deadlines, cache, fault plan,
        # seed — is the learner's own runtime, so per-index streams match
        # the serial loop exactly.
        runtime = self.config.resolved_runtime().replace(
            workers=1, trace=False
        )
        return ActorSpec(
            runtime=runtime,
            design=str(design),
            dataset_seed=dataset_seed,
            base_seed=self.config.seed,
            flow_fn=self._flow_fn,
            model_shape=model_shape,
            kill_rate=self.dist.kill_rate,
            kill_seed=self.dist.kill_seed,
        )

    def _ensure_pool(self) -> Optional[ActorPool]:
        if self._local_only:
            return None
        if self._pool is None:
            self._pool = ActorPool(
                self._spec,
                actors=self.dist.actors,
                max_respawns=self.dist.max_actor_respawns,
                start_method=self.dist.start_method,
                on_spawn=self._push_sync_state,
            )
        return self._pool

    def _push_sync_state(self, member) -> None:
        """Seed a (re)spawned actor with the latest broadcast state —
        its FIFO command queue guarantees the sync lands before any
        task dispatched afterwards."""
        if self._sync_state is not None:
            member.task_queue.put(("sync",) + self._sync_state)

    def _degrade(self, pool: ActorPool, unfinished: int) -> None:
        """Respawn budget is dry: fail fast or fall back in-process."""
        if not self.dist.degrade_to_serial:
            self._shutdown_pool()
            self._local_only = True
            raise WorkerPoolError(
                f"actor pool exhausted its respawn budget "
                f"({self.dist.max_actor_respawns}) and degrade_to_serial "
                f"is off; {unfinished} task(s) unfinished"
            )
        self._shutdown_pool()
        self._local_only = True

    # ------------------------------------------------------------------
    # Sync mode: the inherited serial loop, evaluation fanned out.
    # ------------------------------------------------------------------
    def _evaluate(self, design, params_list, seed, iteration=0):
        dist = self.dist
        k = len(params_list)
        reports: List[Optional[object]] = [None] * k
        backlog: Deque[Tuple[int, int]] = deque(
            (index, 0) for index in range(k)
        )
        pending: Dict[int, Tuple[int, int]] = {}
        tracer = get_tracer()
        registry = get_registry()
        remaining = k
        pool = self._ensure_pool()
        while remaining:
            if pool is None:
                # Degraded (or budget-dry from a previous iteration):
                # finish through the learner's own session — same
                # index/dispatch keying, so outcomes are unchanged.
                while backlog:
                    index, dispatch = backlog.popleft()
                    if reports[index] is not None:
                        continue
                    reports[index] = self._session.evaluate_at(
                        FlowJob(design, params_list[index], seed),
                        index=index, dispatch=dispatch,
                    )
                    remaining -= 1
                break
            for member in pool.idle():
                if not backlog:
                    break
                index, dispatch = backlog.popleft()
                task_id = iteration * _SYNC_STRIDE + index
                pending[task_id] = (index, dispatch)
                pool.dispatch(member, (
                    "evaluate", task_id, index, None,
                    params_list[index], dispatch,
                ))
            for record in pool.collect(dist.poll_s):
                self._queue.push(record)
            while self._queue:
                record = self._queue.pop()
                info = pending.pop(record.task_id, None)
                if info is None:
                    continue  # task already recovered elsewhere
                index, dispatch = info
                with tracer.span(
                    "online.actor",
                    actor=record.actor_id,
                    task=record.task_id,
                    dispatch=record.dispatch,
                ):
                    report = record.report
                    if report.ok:
                        # Pipe transit broke key-string sharing; restore
                        # the canonical objects so checkpoint bytes match
                        # the serial run.
                        intern_keys(report.result.qor)
                    reports[index] = report
                    remaining -= 1
                    self._records_total += 1
            for command in pool.reap():
                info = pending.pop(command[1], None)
                if info is None:
                    continue
                index, dispatch = info
                self._reissued += 1
                registry.counter(
                    "online_experience_reissued_total",
                    "proposals re-issued after their actor died",
                ).inc()
                backlog.appendleft((index, dispatch + 1))
            if pool.degraded:
                # Recover everything still outstanding; re-running a
                # task in-process with the same (index, dispatch) yields
                # the identical report a surviving actor would have sent.
                for index, dispatch in pending.values():
                    backlog.appendleft((index, dispatch))
                pending.clear()
                self._degrade(pool, remaining)
                pool = None
        return reports

    # ------------------------------------------------------------------
    # Async mode: version-stamped experience loop with bounded staleness.
    # ------------------------------------------------------------------
    def _run_async(self, model, dataset, design, intention,
                   verbose) -> OnlineResult:
        cfg = self.config
        dist = self.dist
        if cfg.min_successes < 0:
            raise TrainingError(
                f"min_successes must be >= 0, got {cfg.min_successes}"
            )
        if cfg.checkpoint_every < 1:
            raise TrainingError(
                f"checkpoint_every must be >= 1, got {cfg.checkpoint_every}"
            )
        rng = derive_rng(cfg.seed, "online", design)
        extractor = InsightExtractor()
        profile = get_profile(design)
        normalizer = dataset.normalizer_for(design, intention)
        insight = dataset.insight_for(design).copy()
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
        observed: List[Tuple[Tuple[int, ...], float]] = []
        seen: set = set()
        result = OnlineResult(design=design)
        best_overall: Tuple[float, Optional[Dict[str, float]]] = (
            -np.inf, None,
        )
        start_iteration = 0
        if cfg.resume_from:
            start_iteration, insight, best_overall = self._restore(
                model, optimizer, rng, design, observed, seen, result
            )
        state = _LoopState(
            design=design, model=model, optimizer=optimizer, rng=rng,
            insight=insight, observed=observed, seen=seen, result=result,
            best_overall=best_overall, normalizer=normalizer,
            intention=intention, extractor=extractor, profile=profile,
            verbose=verbose,
        )
        self._spec = self._make_spec(
            design, dataset.seed,
            model_shape=(model.n_recipes, model.dim, model.insight_dims),
        )
        version = start_iteration
        self._set_sync_state(version, model, state)
        tracer = get_tracer()
        registry = get_registry()
        lag_gauge = registry.gauge(
            "online_policy_lag",
            "staleness (in versions) of the last consumed record",
        )
        iteration = start_iteration
        next_task = start_iteration * cfg.k
        window = dist.window(cfg.k)
        backlog: Deque[Tuple[int, int]] = deque()
        pending: Dict[int, int] = {}
        buffer: List[ExperienceRecord] = []

        with tracer.span(
            "online.run",
            design=design,
            iterations=cfg.iterations,
            k=cfg.k,
            seed=cfg.seed,
        ):
            while iteration < cfg.iterations:
                needed = (cfg.iterations - iteration) * cfg.k - len(buffer)
                pool = self._ensure_pool()
                if pool is not None:
                    for member in pool.idle():
                        if len(pending) >= min(window, needed):
                            break
                        if backlog:
                            task_id, dispatch = backlog.popleft()
                        else:
                            task_id, dispatch = next_task, 0
                            next_task += 1
                        pending[task_id] = dispatch
                        pool.dispatch(
                            member, ("propose", task_id, dispatch)
                        )
                    for record in pool.collect(dist.poll_s):
                        if record.task_id not in pending:
                            continue
                        del pending[record.task_id]
                        with tracer.span(
                            "online.actor",
                            actor=record.actor_id,
                            task=record.task_id,
                            dispatch=record.dispatch,
                            version=record.policy_version,
                        ):
                            self._queue.push(record)
                    for command in pool.reap():
                        dispatch = pending.pop(command[1], None)
                        if dispatch is None:
                            continue
                        self._reissued += 1
                        registry.counter(
                            "online_experience_reissued_total",
                            "proposals re-issued after their actor died",
                        ).inc()
                        backlog.appendleft((command[1], dispatch + 1))
                    if pool.degraded:
                        for task_id, dispatch in pending.items():
                            backlog.appendleft((task_id, dispatch))
                        pending.clear()
                        self._degrade(pool, needed)
                        pool = None
                if pool is None:
                    # In-process fallback: same task keying, the
                    # learner's current replica proposing.
                    while len(buffer) + len(self._queue) < cfg.k:
                        if backlog:
                            task_id, dispatch = backlog.popleft()
                        else:
                            task_id, dispatch = next_task, 0
                            next_task += 1
                        self._queue.push(self._produce_local(
                            state, dataset.seed, buffer, task_id,
                            dispatch, version,
                        ))
                while self._queue:
                    record = self._queue.pop()
                    self._records_total += 1
                    lag = version - record.policy_version
                    lag_gauge.set(max(lag, 0))
                    if lag > dist.max_policy_lag:
                        # Too stale to learn from: drop it, spend a fresh
                        # proposal slot instead.
                        self._dropped += 1
                        registry.counter(
                            "online_experience_dropped_total",
                            "experience dropped for exceeding "
                            "max_policy_lag",
                        ).inc()
                        backlog.append((next_task, 0))
                        next_task += 1
                        continue
                    if record.report.ok:
                        intern_keys(record.report.result.qor)
                    buffer.append(record)
                while len(buffer) >= cfg.k and iteration < cfg.iterations:
                    batch = buffer[:cfg.k]
                    del buffer[:cfg.k]
                    with tracer.span(
                        "online.iteration", iteration=iteration
                    ) as iter_span:
                        record = self._absorb(
                            state, iteration,
                            [r.recipe_set for r in batch],
                            [r.report for r in batch],
                        )
                        iter_span.set_attributes(
                            survivors=len(record.recipe_sets),
                            failures=len(record.failures),
                            updated=record.updated,
                            best_score=record.best_score_so_far,
                        )
                    iteration += 1
                    version += 1
                    self._set_sync_state(version, model, state)
                    if self._pool is not None:
                        self._broadcasts += self._pool.broadcast(
                            ("sync",) + self._sync_state
                        )
                        registry.counter(
                            "online_weight_broadcasts_total",
                            "policy-version broadcasts to actors",
                        ).inc()
        result.model = model
        return result

    def _set_sync_state(self, version: int, model,
                        state: _LoopState) -> None:
        self._sync_state = (
            version,
            model.state_dict(),
            np.asarray(state.insight).copy(),
            sorted(state.seen),
        )

    def _produce_local(self, state: _LoopState, dataset_seed: int,
                       buffer: List[ExperienceRecord], task_id: int,
                       dispatch: int, version: int) -> ExperienceRecord:
        """One degraded-mode experience record, produced in-process with
        the same ``(task id, dispatch)`` keying an actor would use."""
        from repro.recipes.apply import apply_recipe_set
        from repro.recipes.catalog import default_catalog

        seen = state.seen | {rec.recipe_set for rec in buffer}
        bits = propose_one(
            state.model, state.insight, seen, self.config.seed,
            task_id, dispatch,
        )
        params = apply_recipe_set(list(bits), default_catalog())
        report = self._session.evaluate_at(
            FlowJob(state.design, params, dataset_seed),
            index=task_id, dispatch=dispatch,
        )
        return ExperienceRecord(
            task_id=task_id, actor_id=-1, dispatch=dispatch,
            policy_version=version, recipe_set=bits, report=report,
            insight=np.asarray(state.insight).copy(),
        )


def fine_tuner_for(config, flow_fn=None, executor=None) -> OnlineFineTuner:
    """The right tuner for ``config``: distributed when
    ``config.distributed`` is set, the in-process serial loop otherwise."""
    if config.distributed is not None:
        if executor is not None:
            raise TrainingError(
                "an injected executor cannot cross actor processes; "
                "drop executor= or config.distributed"
            )
        return DistributedOnlineFineTuner(config, flow_fn=flow_fn)
    return OnlineFineTuner(config, executor=executor, flow_fn=flow_fn)
