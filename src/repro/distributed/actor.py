"""Actor processes and the elastic actor pool.

One **actor** owns a :class:`~repro.runtime.session.FlowSession` and
serves tasks from a private command queue: ``evaluate`` a recipe set the
learner proposed (sync mode), or ``propose`` one itself against its local
policy replica and then evaluate it (async mode).  Every completion is
one synchronous send of an :class:`~repro.distributed.experience.
ExperienceRecord` over a result pipe private to that actor — the PR 6
supervisor IPC discipline, so an actor killed at any instant can neither
lose a record it already sent nor wedge its siblings.

Determinism is carried by the task, not the process: per-job randomness
keys on the learner-assigned global task index
(:meth:`FlowSession.evaluate_at`), and async proposal sampling keys on
``(base seed, task id, dispatch)`` — whichever actor serves a task, alive
or respawned, produces the same record.

:class:`ActorPool` is the learner-side membership manager: per-actor
``SimpleQueue`` + ``Pipe`` pairs, death detection by liveness + pipe EOF,
respawn under ``max_actor_respawns`` with lost-task recovery, and weight
broadcast.  Actor death is routine, not exceptional.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import multiprocessing
import multiprocessing.connection

import numpy as np

from repro.observability import get_registry
from repro.observability.trace import Tracer, set_tracer
from repro.runtime.parallel import _RemoteError
from repro.runtime.session import FlowJob, FlowSession, RuntimeConfig
from repro.utils.rng import derive_rng

from repro.distributed.experience import ExperienceRecord

#: Exit code of a chaos-killed actor (distinct from real crashes).
KILL_EXIT_CODE = 17

#: Sampling temperature of async actor proposals (the serial loop's
#: exploration temperature — see ``OnlineFineTuner._propose``).
PROPOSE_TEMPERATURE = 1.3

#: Bound on rejection-sampling attempts when deduplicating a proposal
#: against the already-seen set (mirrors the serial loop's bound).
PROPOSE_ATTEMPTS = 60


@dataclass(frozen=True)
class ActorSpec:
    """Everything an actor process needs, all picklable.

    ``model_shape`` is ``(n_recipes, dim, insight_dims)`` for async
    actors, which hold a policy replica to propose with; ``None`` for
    sync actors, which only evaluate what the learner sends.
    """

    runtime: RuntimeConfig
    design: str
    dataset_seed: int
    base_seed: int
    flow_fn: Optional[Callable] = None
    model_shape: Optional[Tuple[int, int, int]] = None
    kill_rate: float = 0.0
    kill_seed: int = 0


def propose_one(model, insight, seen, base_seed: int, task_id: int,
                dispatch: int) -> Tuple[int, ...]:
    """Sample one recipe set for global proposal ``task_id``.

    Keyed by ``(base_seed, task_id, dispatch)`` — not by call order or
    process — so a re-issued task samples a fresh proposal and a
    respawned actor reproduces exactly what its predecessor would have.
    Used identically by async actors and by the learner's degraded
    in-process path.  Rejection-samples against ``seen`` up to the serial
    loop's attempt bound, then accepts a duplicate rather than spin.
    """
    from repro.core.beam import sample_decode

    rng = derive_rng(base_seed, "online-actor", int(task_id), int(dispatch))
    bits: Tuple[int, ...] = ()
    for _ in range(PROPOSE_ATTEMPTS):
        bits = sample_decode(
            model, insight, rng, temperature=PROPOSE_TEMPERATURE
        ).recipe_set
        if bits not in seen:
            return bits
    return bits


def _actor_main(actor_id: int, spawn: int, spec: ActorSpec,
                task_queue, result_conn) -> None:
    """Main of one actor process.

    Serves commands until the ``None`` sentinel:

    - ``("evaluate", task_id, index, bits, params, dispatch)`` — run the
      flow at batch position ``index`` and send the record (sync mode).
    - ``("propose", task_id, dispatch)`` — sample a recipe set from the
      local replica, evaluate it at global index ``task_id``, send the
      record (async mode).
    - ``("sync", version, model_state, insight, seen)`` — install new
      weights/insight/dedup state broadcast by the learner.

    Runs trace-quiet (several processes appending to one JSONL trace
    would interleave); the learner emits the ``online.actor`` spans.
    Chaos rehearsal: with ``kill_rate`` set, each work command first
    draws from a ``(kill_seed, actor_id, spawn)`` stream and may
    ``os._exit`` — the hard, mid-task death the membership layer exists
    to absorb.
    """
    set_tracer(Tracer(exporter=None, enabled=False))
    kill_rng = derive_rng(spec.kill_seed, "actor-kill", actor_id, spawn)
    session = FlowSession(spec.runtime, flow_fn=spec.flow_fn)
    model = None
    insight: Optional[np.ndarray] = None
    version = 0
    seen: set = set()
    if spec.model_shape is not None:
        from repro.core.model import InsightAlignModel

        n_recipes, dim, insight_dims = spec.model_shape
        model = InsightAlignModel(
            n_recipes=n_recipes, dim=dim, insight_dims=insight_dims, seed=0
        )
    try:
        while True:
            command = task_queue.get()
            if command is None:
                return
            kind = command[0]
            if kind == "sync":
                _, version, model_state, new_insight, seen_list = command
                if model is not None and model_state is not None:
                    model.load_state_dict(model_state)
                if new_insight is not None:
                    insight = np.asarray(new_insight)
                seen = set(seen_list)
                continue
            if spec.kill_rate > 0 and \
                    float(kill_rng.random()) < spec.kill_rate:
                os._exit(KILL_EXIT_CODE)
            try:
                if kind == "evaluate":
                    _, task_id, index, bits, params, dispatch = command
                    report = session.evaluate_at(
                        FlowJob(spec.design, params, spec.dataset_seed),
                        index=index, dispatch=dispatch,
                    )
                    record = ExperienceRecord(
                        task_id=task_id, actor_id=actor_id,
                        dispatch=dispatch, policy_version=version,
                        recipe_set=bits, report=report,
                    )
                elif kind == "propose":
                    _, task_id, dispatch = command
                    from repro.recipes.apply import apply_recipe_set
                    from repro.recipes.catalog import default_catalog

                    bits = propose_one(
                        model, insight, seen, spec.base_seed,
                        task_id, dispatch,
                    )
                    params = apply_recipe_set(list(bits), default_catalog())
                    report = session.evaluate_at(
                        FlowJob(spec.design, params, spec.dataset_seed),
                        index=task_id, dispatch=dispatch,
                    )
                    record = ExperienceRecord(
                        task_id=task_id, actor_id=actor_id,
                        dispatch=dispatch, policy_version=version,
                        recipe_set=bits, report=report,
                        insight=None if insight is None else insight.copy(),
                    )
                else:
                    raise ValueError(f"unknown actor command {kind!r}")
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as err:  # noqa: BLE001 - shipped to learner
                result_conn.send(_RemoteError(err))
                continue
            result_conn.send(record)
    finally:
        session.close()


class _ActorMember:
    """One live actor: process + private channels + its in-flight task."""

    __slots__ = ("id", "spawn", "process", "task_queue", "result_recv",
                 "inflight")

    def __init__(self, actor_id: int, spawn: int, process, task_queue,
                 result_recv) -> None:
        self.id = actor_id
        self.spawn = spawn
        self.process = process
        self.task_queue = task_queue
        self.result_recv = result_recv
        # The full command currently running on this actor, or None.
        self.inflight: Optional[tuple] = None


class ActorPool:
    """Elastic membership over N actor processes.

    The contract with the learner:

    - :meth:`collect` returns every record actors have finished, in
      arrival order; a dead actor's pipe is drained before its EOF, so a
      record sent before death is never lost.
    - :meth:`reap` detects dead members, returns their lost in-flight
      commands (for the learner to re-issue with ``dispatch + 1``), and
      respawns replacements while ``max_actor_respawns`` allows; past the
      budget :attr:`degraded` latches and membership stops healing.
    - :meth:`broadcast` fans a command to every live member; each
      member's ``SimpleQueue`` is FIFO, so a freshly-spawned actor always
      installs the sync state pushed by ``on_spawn`` before it serves any
      task.
    """

    def __init__(
        self,
        spec: ActorSpec,
        actors: int,
        max_respawns: int,
        start_method: Optional[str] = None,
        on_spawn: Optional[Callable[["_ActorMember"], None]] = None,
    ) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._spec = spec
        self.actors = int(actors)
        self.max_respawns = int(max_respawns)
        self._on_spawn = on_spawn
        self._members: dict[int, _ActorMember] = {}
        self._next_id = 0
        self._spawns = 0
        self.respawns = 0
        self.degraded = False
        for _ in range(self.actors):
            self._spawn()
        self._update_live_gauge()

    # -- membership ----------------------------------------------------
    def _spawn(self) -> _ActorMember:
        actor_id = self._next_id
        self._next_id += 1
        spawn = self._spawns
        self._spawns += 1
        task_queue = self._ctx.SimpleQueue()
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_actor_main,
            args=(actor_id, spawn, self._spec, task_queue, result_send),
            daemon=True,
        )
        process.start()
        # The actor now holds the only writer: death surfaces as EOF.
        result_send.close()
        member = _ActorMember(actor_id, spawn, process, task_queue,
                              result_recv)
        self._members[actor_id] = member
        if self._on_spawn is not None:
            self._on_spawn(member)
        return member

    def _discard(self, member: _ActorMember, kill: bool = False) -> None:
        self._members.pop(member.id, None)
        if kill and member.process.is_alive():
            member.process.kill()
        member.process.join()
        try:
            member.result_recv.close()
        except OSError:
            pass

    def live_count(self) -> int:
        return sum(
            1 for m in self._members.values() if m.process.is_alive()
        )

    def _update_live_gauge(self) -> None:
        get_registry().gauge(
            "online_actors_live", "live online-loop actor processes"
        ).set(self.live_count())

    def idle(self) -> List[_ActorMember]:
        """Live members with no task in flight, in stable id order."""
        return [
            member for _, member in sorted(self._members.items())
            if member.inflight is None and member.process.is_alive()
        ]

    # -- traffic -------------------------------------------------------
    def dispatch(self, member: _ActorMember, command: tuple) -> None:
        member.task_queue.put(command)
        member.inflight = command

    def broadcast(self, command: tuple) -> int:
        """Send ``command`` to every live member; returns the fan-out."""
        count = 0
        for member in self._members.values():
            if member.process.is_alive():
                try:
                    member.task_queue.put(command)
                    count += 1
                except (OSError, ValueError):
                    pass
        return count

    def collect(self, timeout: float) -> List[ExperienceRecord]:
        """Every record currently available (one brief blocking wait).

        Re-raises non-flow exceptions an actor shipped back.  Clears the
        producing member's in-flight slot when the record answers it.
        """
        out: List[ExperienceRecord] = []
        by_conn = {
            member.result_recv: member for member in self._members.values()
        }
        if not by_conn:
            return out
        ready = multiprocessing.connection.wait(
            list(by_conn), timeout=timeout
        )
        for conn in ready:
            member = by_conn[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    item = conn.recv()
                except (EOFError, OSError):
                    break  # dead actor; reap() handles the membership
                if isinstance(item, _RemoteError):
                    raise item.error
                if member.inflight is not None \
                        and member.inflight[1] == item.task_id:
                    member.inflight = None
                out.append(item)
        return out

    def reap(self) -> List[tuple]:
        """Detect dead members; heal membership; return lost commands.

        Each death consumes one respawn from the budget.  Past the
        budget, :attr:`degraded` latches (the learner decides whether to
        finish in-process or raise) — lost commands are returned either
        way so no task silently disappears.
        """
        lost: List[tuple] = []
        registry = get_registry()
        for member in list(self._members.values()):
            if member.process.is_alive():
                continue
            if member.inflight is not None:
                lost.append(member.inflight)
            self._discard(member)
            if self.respawns < self.max_respawns:
                self.respawns += 1
                registry.counter(
                    "online_actor_restarts_total",
                    "actor processes respawned after death",
                ).inc()
                self._spawn()
            elif not self.degraded:
                self.degraded = True
                registry.counter(
                    "online_pool_degraded_total",
                    "actor pools that exhausted their respawn budget",
                ).inc()
        if lost or self.degraded:
            self._update_live_gauge()
        return lost

    # -- shutdown ------------------------------------------------------
    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Sentinel + bounded join, then kill stragglers (idempotent)."""
        import time

        for member in self._members.values():
            if member.process.is_alive():
                try:
                    member.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout_s
        for member in self._members.values():
            member.process.join(max(0.0, deadline - time.monotonic()))
        for member in self._members.values():
            if member.process.is_alive():
                member.process.kill()
                member.process.join()
            try:
                member.result_recv.close()
            except OSError:
                pass
        self._members.clear()
        self._update_live_gauge()

    def stats(self) -> dict:
        return {
            "actors": self.actors,
            "live": self.live_count(),
            "spawned": self._spawns,
            "restarts": self.respawns,
            "degraded": self.degraded,
        }
