"""``DistributedConfig`` — frozen, validated actor/learner knobs.

One typed object declares everything the distributed online loop may do:
how many actor processes evaluate proposals, whether the learner runs the
deterministic synchronous schedule or the bounded-staleness asynchronous
one, how much actor death the elastic membership absorbs before degrading,
and the seeded chaos-kill rehearsal knobs.  It composes into
:class:`~repro.core.online.OnlineConfig` as ``distributed=`` exactly the
way :class:`~repro.runtime.session.RuntimeConfig` composes as ``runtime=``
— invalid combinations raise a typed
:class:`~repro.errors.RuntimeConfigError` before any process spawns.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass
from typing import Optional

from repro.errors import RuntimeConfigError

#: The two learner schedules (see docs/distributed.md).
MODES = ("sync", "async")


@dataclass(frozen=True)
class DistributedConfig:
    """Actor/learner execution knobs for the online fine-tuning loop.

    Args:
        actors: Actor processes evaluating proposals.  ``1`` in ``sync``
            mode is the determinism anchor: bit-identical to the serial
            :class:`~repro.core.online.OnlineFineTuner`, checkpoint bytes
            included.
        mode: ``"sync"`` — the learner proposes, actors only evaluate,
            every iteration is a barrier; bit-identical to serial at any
            actor count.  ``"async"`` — actors propose *and* evaluate
            against their last-synced policy replica; the learner updates
            from experience records in arrival order, bounded by
            ``max_policy_lag``.
        max_policy_lag: Async only — the oldest policy version whose
            experience the learner still accepts, as a distance from the
            current version.  Records older than that are dropped
            (counted) and their proposal slot re-issued.
        max_actor_respawns: Actor deaths the pool absorbs — each one
            respawning a warm replacement and re-dispatching the lost
            task with an incremented dispatch count — before membership
            stops healing and the loop degrades.
        queue_capacity: Async only — cap on proposals in flight at once
            (issued but not yet folded into an update).  ``None`` derives
            ``k * (max_policy_lag + 1)``, the largest window that cannot
            overrun the staleness bound by itself.
        degrade_to_serial: When the respawn budget runs dry, finish the
            run in-process through the learner's own session (default)
            instead of raising :class:`~repro.errors.WorkerPoolError`.
        kill_rate: Chaos rehearsal — per-task probability that an actor
            process exits hard (``os._exit``) instead of serving the
            task, drawn from a stream seeded by
            ``(kill_seed, actor id, spawn count)``.
        kill_seed: Seed of the chaos-kill stream.
        start_method: Multiprocessing start method override (``None``
            prefers ``fork`` so actors inherit the warm netlist cache).
        poll_s: Learner poll interval while waiting on actor pipes.
    """

    actors: int = 1
    mode: str = "sync"
    max_policy_lag: int = 1
    max_actor_respawns: int = 8
    queue_capacity: Optional[int] = None
    degrade_to_serial: bool = True
    kill_rate: float = 0.0
    kill_seed: int = 0
    start_method: Optional[str] = None
    poll_s: float = 0.02

    def __post_init__(self) -> None:
        if not isinstance(self.actors, int) or isinstance(self.actors, bool) \
                or self.actors < 1:
            raise RuntimeConfigError(
                f"actors must be an int >= 1, got {self.actors!r}"
            )
        if self.mode not in MODES:
            raise RuntimeConfigError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if not isinstance(self.max_policy_lag, int) \
                or isinstance(self.max_policy_lag, bool) \
                or self.max_policy_lag < 0:
            raise RuntimeConfigError(
                f"max_policy_lag must be a non-negative int, "
                f"got {self.max_policy_lag!r}"
            )
        if not isinstance(self.max_actor_respawns, int) \
                or isinstance(self.max_actor_respawns, bool) \
                or self.max_actor_respawns < 0:
            raise RuntimeConfigError(
                f"max_actor_respawns must be a non-negative int, "
                f"got {self.max_actor_respawns!r}"
            )
        if self.queue_capacity is not None and (
            not isinstance(self.queue_capacity, int)
            or isinstance(self.queue_capacity, bool)
            or self.queue_capacity < 1
        ):
            raise RuntimeConfigError(
                f"queue_capacity must be an int >= 1 or None, "
                f"got {self.queue_capacity!r}"
            )
        if not isinstance(self.degrade_to_serial, bool):
            raise RuntimeConfigError(
                f"degrade_to_serial must be a bool, got "
                f"{type(self.degrade_to_serial).__name__}"
            )
        if not isinstance(self.kill_rate, (int, float)) \
                or isinstance(self.kill_rate, bool) \
                or not 0.0 <= float(self.kill_rate) <= 1.0:
            raise RuntimeConfigError(
                f"kill_rate must be a probability in [0, 1], "
                f"got {self.kill_rate!r}"
            )
        if not isinstance(self.kill_seed, int) \
                or isinstance(self.kill_seed, bool):
            raise RuntimeConfigError(
                f"kill_seed must be an int, got {self.kill_seed!r}"
            )
        if self.start_method is not None and (
            self.start_method not in multiprocessing.get_all_start_methods()
        ):
            raise RuntimeConfigError(
                f"unknown start_method {self.start_method!r}; available: "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        if not isinstance(self.poll_s, (int, float)) \
                or isinstance(self.poll_s, bool) or not self.poll_s > 0:
            raise RuntimeConfigError(
                f"poll_s must be positive, got {self.poll_s!r}"
            )

    def replace(self, **overrides) -> "DistributedConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def window(self, k: int) -> int:
        """The async in-flight proposal cap for batch size ``k``."""
        if self.queue_capacity is not None:
            return self.queue_capacity
        return max(1, int(k)) * (self.max_policy_lag + 1)
