"""Experience records and the learner-side arrival queue.

One :class:`ExperienceRecord` is the unit of actor → learner traffic: the
recipe set that was evaluated, the full supervised
:class:`~repro.runtime.executor.FlowRunReport` (QoR on success, the typed
failure otherwise), the insight vector the proposal was conditioned on,
and the policy version the proposing replica was running — the field the
async learner's staleness bound (``max_policy_lag``) is enforced against.

:class:`ExperienceQueue` is the learner's arrival buffer.  It is a plain
in-process FIFO — the *transport* is the per-actor pipes, which the pool
drains into this queue — kept as its own type so depth is observable
(``online_experience_queue_depth``) and arrival accounting lives in one
place.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

import numpy as np

from repro.observability import get_registry
from repro.runtime.executor import FlowRunReport


@dataclass
class ExperienceRecord:
    """One evaluated proposal, as shipped over an actor's result pipe.

    Attributes:
        task_id: Learner-assigned global proposal index.  It keys the
            per-job randomness (``evaluate_at(index=task_id)``) and, with
            ``dispatch``, the proposal-sampling stream — so a re-issued
            task reproduces deterministically on whichever actor picks
            it up.
        actor_id: The actor that produced the record.
        dispatch: Prior dispatch attempts of this task (owners that died
            holding it).
        policy_version: The producing replica's policy version at
            proposal time; the async staleness bound compares it to the
            learner's current version.
        recipe_set: The proposed/evaluated recipe-selection bits.
        report: The supervised evaluation outcome (``report.ok`` /
            ``report.result`` / ``report.error``).
        insight: The insight vector the proposal was conditioned on
            (``None`` in sync mode, where the learner proposed).
    """

    task_id: int
    actor_id: int
    dispatch: int
    policy_version: int
    recipe_set: Tuple[int, ...]
    report: FlowRunReport
    insight: Optional[np.ndarray] = None


@dataclass
class ExperienceQueue:
    """FIFO of experience records awaiting the learner, depth-gauged."""

    _items: Deque[ExperienceRecord] = field(default_factory=deque)

    def _gauge(self) -> None:
        get_registry().gauge(
            "online_experience_queue_depth",
            "experience records buffered at the learner",
        ).set(len(self._items))

    def push(self, record: ExperienceRecord) -> None:
        self._items.append(record)
        get_registry().counter(
            "online_experience_records_total",
            "experience records received from actors",
        ).inc()
        self._gauge()

    def pop(self) -> ExperienceRecord:
        record = self._items.popleft()
        self._gauge()
        return record

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
