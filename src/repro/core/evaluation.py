"""Evaluation utilities: convergence curves, regret, evaluations-to-target.

Shared by the runtime-performance bench and useful for any tuner
comparison: all tuning methods (and InsightAlign's own offline-then-online
loop) reduce to a sequence of (recipe set, score) evaluations, so their
*sample efficiency* is comparable as best-so-far curves over evaluation
count — the honest proxy for the paper's "runtime performance" claim, since
flow evaluations dominate wall-clock in real deployments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TrainingError


def best_so_far(scores: Sequence[float]) -> np.ndarray:
    """Running maximum of a score sequence."""
    array = np.asarray(list(scores), dtype=np.float64)
    if array.size == 0:
        return array
    return np.maximum.accumulate(array)


def simple_regret(scores: Sequence[float], optimum: float) -> np.ndarray:
    """Per-evaluation simple regret vs. a known/best-known optimum."""
    return optimum - best_so_far(scores)


def evaluations_to_target(
    scores: Sequence[float], target: float
) -> Optional[int]:
    """1-based index of the first evaluation reaching ``target``; None if never."""
    curve = best_so_far(scores)
    hits = np.flatnonzero(curve >= target)
    return int(hits[0]) + 1 if hits.size else None


def area_under_curve(scores: Sequence[float]) -> float:
    """Mean of the best-so-far curve — higher = faster convergence."""
    curve = best_so_far(scores)
    if curve.size == 0:
        raise TrainingError("cannot integrate an empty curve")
    return float(curve.mean())


def align_curves(
    curves: Dict[str, Sequence[float]], length: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Pad/truncate best-so-far curves to a common length (pad = last value)."""
    processed = {name: best_so_far(values) for name, values in curves.items()}
    if length is None:
        length = max((c.size for c in processed.values()), default=0)
    out = {}
    for name, curve in processed.items():
        if curve.size == 0:
            raise TrainingError(f"curve {name!r} is empty")
        if curve.size >= length:
            out[name] = curve[:length]
        else:
            pad = np.full(length - curve.size, curve[-1])
            out[name] = np.concatenate([curve, pad])
    return out


def summarize_convergence(
    curves: Dict[str, Sequence[float]], target: float
) -> List[Dict[str, object]]:
    """Per-method summary rows: final best, AUC, evaluations-to-target."""
    rows = []
    for name, values in curves.items():
        rows.append({
            "method": name,
            "final_best": float(best_so_far(values)[-1]),
            "auc": area_under_curve(values),
            "evals_to_target": evaluations_to_target(values, target),
        })
    rows.sort(key=lambda r: -r["final_best"])
    return rows
