"""InsightAlign core: model, alignment, beam search, online fine-tuning.

This package implements the paper's contribution on top of the simulated
EDA substrate:

- :mod:`repro.core.qor` — compound QoR score (eq. 4).
- :mod:`repro.core.model` — the decoder-only recipe LM (Table III).
- :mod:`repro.core.policy` — teacher-forced sequence likelihoods (eq. 3).
- :mod:`repro.core.dpo` — DPO (eq. 1) and margin-based DPO (eq. 2).
- :mod:`repro.core.ppo` — the PPO surrogate used in online fine-tuning.
- :mod:`repro.core.alignment` — Algorithm 1's ALIGNMENTTRAIN.
- :mod:`repro.core.beam` — Algorithm 1's BEAMSEARCH.
- :mod:`repro.core.dataset` — offline (insight, recipe set, QoR) archive.
- :mod:`repro.core.crossval` — the k-fold zero-shot evaluation (Table IV).
- :mod:`repro.core.online` — closed-loop online fine-tuning (Fig. 6/7).
- :mod:`repro.core.recommender` — high-level facade.
"""

from repro.core.qor import QoRIntention, compound_scores
from repro.core.model import InsightAlignModel
from repro.core.dataset import DataPoint, OfflineDataset, build_offline_dataset
from repro.core.recommender import InsightAlign

__all__ = [
    "QoRIntention",
    "compound_scores",
    "InsightAlignModel",
    "DataPoint",
    "OfflineDataset",
    "build_offline_dataset",
    "InsightAlign",
]
