"""Online fine-tuning — closed-loop adaptation (paper Section III.G, Fig. 6/7).

Each iteration: the policy proposes K = 5 *new* recipe sets (beam search
over the current policy, skipping sets already evaluated), the flow runs
them, and the model updates from the fresh QoR feedback with margin-based
DPO (pairs drawn from everything observed on this design so far) plus the
PPO clipped surrogate (advantages = centered batch scores).  Insights are
refreshed from the best run of each iteration, so the conditioning context
tracks the design as the paper describes ("additional insights are
gathered, providing a progressively generalized view of the design").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.beam import beam_search, sample_decode
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob, sequence_log_prob_value
from repro.core.ppo import advantages_from_scores, ppo_loss
from repro.core.qor import DesignNormalizer, QoRIntention
from repro.errors import TrainingError
from repro.flow.runner import run_flow
from repro.insights.extractor import InsightExtractor
from repro.netlist.profiles import get_profile
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.recipes.apply import apply_recipe_set
from repro.recipes.catalog import default_catalog
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class OnlineConfig:
    """Hyperparameters of the online fine-tuning loop (K = 5, as the paper)."""

    iterations: int = 10
    k: int = 5
    learning_rate: float = 1e-3
    lam: float = 2.0
    ppo_weight: float = 0.5
    ppo_clip: float = 0.2
    dpo_pairs_per_update: int = 48
    grad_clip: float = 5.0
    insight_refresh: float = 0.3
    explore_samples: int = 1
    seed: int = 0


@dataclass
class IterationRecord:
    """Everything one online iteration produced (Fig. 6/7 raw data)."""

    iteration: int
    recipe_sets: List[Tuple[int, ...]]
    qors: List[Dict[str, float]]
    scores: List[float]
    best_score_so_far: float
    avg_top5_so_far: float
    best_power_so_far: float
    best_tns_so_far: float


@dataclass
class OnlineResult:
    """Full fine-tuning trajectory for one design."""

    design: str
    records: List[IterationRecord] = field(default_factory=list)
    model: Optional[InsightAlignModel] = None

    def trajectory(self, key: str) -> np.ndarray:
        return np.array([getattr(r, key) for r in self.records])

    @property
    def all_points(self) -> List[Tuple[int, Dict[str, float], float]]:
        """(iteration, qor, score) for every evaluated recipe set (Fig. 7)."""
        out = []
        for record in self.records:
            for qor, score in zip(record.qors, record.scores):
                out.append((record.iteration, qor, score))
        return out


class OnlineFineTuner:
    """Runs the closed-loop fine-tuning of an aligned model on one design."""

    def __init__(self, config: OnlineConfig = OnlineConfig()) -> None:
        self.config = config

    def run(
        self,
        model: InsightAlignModel,
        dataset: OfflineDataset,
        design: str,
        intention: QoRIntention = QoRIntention(),
        verbose: bool = False,
    ) -> OnlineResult:
        cfg = self.config
        rng = derive_rng(cfg.seed, "online", design)
        catalog = default_catalog()
        extractor = InsightExtractor()
        profile = get_profile(design)
        normalizer = dataset.normalizer_for(design, intention)
        insight = dataset.insight_for(design).copy()
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)

        observed: List[Tuple[Tuple[int, ...], float]] = []
        seen: set = set()
        result = OnlineResult(design=design)
        best_overall: Tuple[float, Optional[Dict[str, float]]] = (-np.inf, None)

        for iteration in range(cfg.iterations):
            proposals = self._propose(model, insight, seen, rng)
            qors: List[Dict[str, float]] = []
            scores: List[float] = []
            best_run = None
            best_run_score = -np.inf
            for bits in proposals:
                params = apply_recipe_set(list(bits), catalog)
                flow = run_flow(design, params, seed=dataset.seed)
                score = normalizer.score(flow.qor, intention)
                qors.append(dict(flow.qor))
                scores.append(score)
                observed.append((bits, score))
                seen.add(bits)
                if score > best_run_score:
                    best_run_score = score
                    best_run = flow
                if score > best_overall[0]:
                    best_overall = (score, dict(flow.qor))

            self._update(model, optimizer, insight, proposals, scores, observed, rng)

            if cfg.insight_refresh > 0 and best_run is not None:
                fresh = extractor.extract(best_run, profile).values
                insight = (
                    (1.0 - cfg.insight_refresh) * insight
                    + cfg.insight_refresh * fresh
                )

            record = self._record(
                iteration, proposals, qors, scores, observed, best_overall[1]
            )
            result.records.append(record)
            if verbose:
                print(
                    f"{design} iter {iteration}: best so far "
                    f"{record.best_score_so_far:.3f} "
                    f"avg-top5 {record.avg_top5_so_far:.3f}"
                )
        result.model = model
        return result

    # ------------------------------------------------------------------
    def _propose(self, model, insight, seen, rng) -> List[Tuple[int, ...]]:
        """K fresh recipe sets: beam first, sampling for the remainder."""
        cfg = self.config
        picks: List[Tuple[int, ...]] = []
        for candidate in beam_search(model, insight, beam_width=4 * cfg.k):
            if candidate.recipe_set not in seen and candidate.recipe_set not in picks:
                picks.append(candidate.recipe_set)
            if len(picks) >= cfg.k - cfg.explore_samples:
                break
        attempts = 0
        while len(picks) < cfg.k and attempts < 60:
            candidate = sample_decode(model, insight, rng, temperature=1.3)
            attempts += 1
            if candidate.recipe_set in seen or candidate.recipe_set in picks:
                continue
            picks.append(candidate.recipe_set)
        if not picks:
            raise TrainingError("online loop could not propose any new recipe set")
        return picks

    def _update(self, model, optimizer, insight, proposals, scores, observed, rng):
        """One update: margin-DPO over observed pairs + PPO on the batch."""
        cfg = self.config
        old_log_probs = [
            sequence_log_prob_value(model, insight, bits) for bits in proposals
        ]
        # --- margin-DPO on pairs drawn from everything observed so far.
        losses = []
        if len(observed) >= 2:
            count = min(cfg.dpo_pairs_per_update, len(observed) * 2)
            for _ in range(count):
                i, j = rng.integers(0, len(observed), size=2)
                (bits_i, score_i), (bits_j, score_j) = observed[int(i)], observed[int(j)]
                if abs(score_i - score_j) < 1e-6:
                    continue
                if score_i < score_j:
                    bits_i, bits_j = bits_j, bits_i
                    score_i, score_j = score_j, score_i
                gap = (
                    sequence_log_prob(model, insight, bits_i)
                    - sequence_log_prob(model, insight, bits_j)
                )
                margin = cfg.lam * (score_i - score_j)
                losses.append((Tensor(np.array(margin)) - gap).clip_min(0.0))
        # --- PPO on the current batch.
        if cfg.ppo_weight > 0 and len(proposals) >= 2:
            advantages = advantages_from_scores(scores)
            for bits, old_lp, adv in zip(proposals, old_log_probs, advantages):
                losses.append(
                    ppo_loss(model, insight, bits, old_lp, float(adv),
                             clip_epsilon=cfg.ppo_clip) * cfg.ppo_weight
                )
        if not losses:
            return
        total = losses[0]
        for item in losses[1:]:
            total = total + item
        loss = total / float(len(losses))
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), cfg.grad_clip)
        optimizer.step()

    def _record(
        self, iteration, proposals, qors, scores, observed, best_qor
    ) -> IterationRecord:
        all_scores = np.array([s for _, s in observed])
        top5 = np.sort(all_scores)[-5:]
        return IterationRecord(
            iteration=iteration,
            recipe_sets=list(proposals),
            qors=qors,
            scores=scores,
            best_score_so_far=float(all_scores.max()),
            avg_top5_so_far=float(top5.mean()),
            best_power_so_far=float(best_qor["power_mw"]),
            best_tns_so_far=float(best_qor["tns_ns"]),
        )
