"""Online fine-tuning — closed-loop adaptation (paper Section III.G, Fig. 6/7).

Each iteration: the policy proposes K = 5 *new* recipe sets (beam search
over the current policy, skipping sets already evaluated), the flow runs
them, and the model updates from the fresh QoR feedback with margin-based
DPO (pairs drawn from everything observed on this design so far) plus the
PPO clipped surrogate (advantages = centered batch scores).  Insights are
refreshed from the best run of each iteration, so the conditioning context
tracks the design as the paper describes ("additional insights are
gathered, providing a progressively generalized view of the design").

Fault tolerance: every flow invocation goes through a
:class:`~repro.runtime.executor.FlowExecutor` (deadline + bounded retries +
typed errors).  A recipe set whose evaluation still fails is recorded in
the iteration's :class:`FlowFailure` list, logged with its typed cause, and
excluded from the DPO/PPO batch — the iteration proceeds with the
surviving K' < K runs.  If fewer than ``min_successes`` survive, the model
update (and insight refresh) for that iteration is skipped entirely rather
than learning from a degenerate batch.  With ``checkpoint_path`` set, the
full loop state is atomically persisted every ``checkpoint_every``
iterations and ``resume_from`` continues a killed run bit-identically.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.beam import beam_search, sample_decode
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob, sequence_log_prob_value
from repro.core.ppo import advantages_from_scores, ppo_loss
from repro.core.qor import QoRIntention
from repro.errors import TrainingError
from repro.insights.extractor import InsightExtractor
from repro.netlist.profiles import get_profile
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.observability import get_registry, get_tracer
from repro.recipes.apply import apply_recipe_set
from repro.recipes.catalog import default_catalog
from repro.runtime.executor import FlowExecutor
from repro.runtime.parallel import FlowJob
from repro.runtime.session import (
    FlowSession,
    RuntimeConfig,
    warn_legacy_runtime_kwargs,
)
from repro.utils.rng import derive_rng

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class OnlineConfig:
    """Hyperparameters of the online fine-tuning loop (K = 5, as the paper)."""

    iterations: int = 10
    k: int = 5
    learning_rate: float = 1e-3
    lam: float = 2.0
    ppo_weight: float = 0.5
    ppo_clip: float = 0.2
    dpo_pairs_per_update: int = 48
    grad_clip: float = 5.0
    insight_refresh: float = 0.3
    explore_samples: int = 1
    seed: int = 0
    # Fault tolerance: an iteration updates the model only when at least
    # ``min_successes`` of its K evaluations survived the executor.
    min_successes: int = 1
    # Crash safety: atomic checkpoint of the full loop state (model,
    # optimizer, RNG, observed runs, records) every N iterations, and
    # bit-identical resume from such a file.
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    resume_from: Optional[str] = None
    # How the K proposals of each iteration are evaluated: workers, QoR
    # cache, retry policy, trace toggle — one validated RuntimeConfig for
    # the loop's FlowSession.  None means the sequential in-process
    # default (bit-identical to any worker count for the same seeds).
    runtime: Optional[RuntimeConfig] = None
    # Actor/learner execution of the loop itself: actor count, sync vs
    # bounded-staleness async, elastic-membership budgets — a validated
    # repro.distributed.DistributedConfig.  None (default) runs the loop
    # in-process; a non-None value is honored by
    # repro.distributed.DistributedOnlineFineTuner (constructing the
    # plain serial tuner with one is a configuration error).
    distributed: Optional["DistributedConfig"] = None  # noqa: F821
    # Deprecated: pre-session spellings of the two most common runtime
    # knobs.  Use ``runtime=RuntimeConfig(workers=..., qor_cache_path=...)``.
    flow_workers: int = 1
    qor_cache_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.distributed is not None:
            # Imported lazily: repro.distributed composes *this* config,
            # so an eager import would be circular.
            from repro.distributed.config import DistributedConfig

            if not isinstance(self.distributed, DistributedConfig):
                raise TrainingError(
                    f"distributed must be a DistributedConfig or None, "
                    f"got {type(self.distributed).__name__}"
                )
        legacy = {}
        if self.flow_workers != 1:
            legacy["flow_workers"] = self.flow_workers
        if self.qor_cache_path is not None:
            legacy["qor_cache_path"] = self.qor_cache_path
        if legacy:
            warn_legacy_runtime_kwargs("OnlineConfig", **legacy)
            if self.runtime is not None:
                raise TrainingError(
                    "pass runtime=RuntimeConfig(...) or the deprecated "
                    "flow_workers/qor_cache_path kwargs, not both"
                )

    def resolved_runtime(self) -> RuntimeConfig:
        """The loop's effective :class:`RuntimeConfig` (folding in any
        deprecated ``flow_workers`` / ``qor_cache_path`` values)."""
        if self.runtime is not None:
            return self.runtime
        return RuntimeConfig(
            workers=self.flow_workers,
            qor_cache_path=self.qor_cache_path,
            seed=self.seed,
        )


@dataclass
class FlowFailure:
    """One recipe-set evaluation the executor gave up on."""

    iteration: int
    recipe_set: Tuple[int, ...]
    error_type: str
    message: str
    attempts: int


@dataclass
class IterationRecord:
    """Everything one online iteration produced (Fig. 6/7 raw data).

    ``recipe_sets`` / ``qors`` / ``scores`` hold only the *surviving*
    evaluations (aligned by index); failed ones land in ``failures``.
    """

    iteration: int
    recipe_sets: List[Tuple[int, ...]]
    qors: List[Dict[str, float]]
    scores: List[float]
    best_score_so_far: float
    avg_top5_so_far: float
    best_power_so_far: float
    best_tns_so_far: float
    failures: List[FlowFailure] = field(default_factory=list)
    updated: bool = True


@dataclass
class OnlineResult:
    """Full fine-tuning trajectory for one design."""

    design: str
    records: List[IterationRecord] = field(default_factory=list)
    model: Optional[InsightAlignModel] = None

    def trajectory(self, key: str) -> np.ndarray:
        return np.array([getattr(r, key) for r in self.records])

    @property
    def all_points(self) -> List[Tuple[int, Dict[str, float], float]]:
        """(iteration, qor, score) for every evaluated recipe set (Fig. 7)."""
        out = []
        for record in self.records:
            for qor, score in zip(record.qors, record.scores):
                out.append((record.iteration, qor, score))
        return out

    @property
    def failures(self) -> List[FlowFailure]:
        """Every failed evaluation across the whole run, in order."""
        out: List[FlowFailure] = []
        for record in self.records:
            out.extend(record.failures)
        return out


@dataclass
class _LoopState:
    """The mutable state one online run threads through its iterations.

    Bundled so the iteration-absorption step (:meth:`OnlineFineTuner._absorb`)
    has a single override-friendly signature — the distributed async learner
    reuses the exact serial accounting/update/checkpoint body against
    experience batches that arrived out of proposal order.
    """

    design: str
    model: InsightAlignModel
    optimizer: Adam
    rng: np.random.Generator
    insight: np.ndarray
    observed: List[Tuple[Tuple[int, ...], float]]
    seen: set
    result: OnlineResult
    best_overall: Tuple[float, Optional[Dict[str, float]]]
    normalizer: object
    intention: QoRIntention
    extractor: InsightExtractor
    profile: object
    verbose: bool = False


class OnlineFineTuner:
    """Runs the closed-loop fine-tuning of an aligned model on one design.

    Every flow invocation goes through one :class:`FlowSession` built
    from ``config.runtime`` (workers, QoR cache, retry policy, trace
    toggle); each iteration's K proposals are a single
    ``session.evaluate`` batch — bit-identical results at any worker
    count, K-way concurrent wall-clock when workers allow.

    ``executor`` remains the test-oriented escape hatch: a fully-built
    :class:`FlowExecutor` (closures, virtual clocks, wrapped fault
    injectors) that the session runs every job through sequentially,
    exactly as before the session layer existed.
    """

    def __init__(
        self,
        config: OnlineConfig = OnlineConfig(),
        executor: Optional[FlowExecutor] = None,
        flow_fn: Optional[Callable] = None,
    ) -> None:
        if config.distributed is not None and type(self) is OnlineFineTuner:
            raise TrainingError(
                "config.distributed is set; use "
                "repro.distributed.DistributedOnlineFineTuner (or "
                "repro.distributed.fine_tuner_for) to honor it"
            )
        self.config = config
        self._flow_fn = flow_fn
        if executor is not None:
            self._session = FlowSession(
                config.runtime or RuntimeConfig(),
                flow_fn=flow_fn,
                executor=executor,
            )
        else:
            self._session = FlowSession(
                config.resolved_runtime(), flow_fn=flow_fn
            )

    @property
    def session(self) -> FlowSession:
        """The loop's flow-evaluation session."""
        return self._session

    def close(self) -> None:
        """Release the session's worker pool, if one was started."""
        self._session.close()

    def __enter__(self) -> "OnlineFineTuner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(
        self,
        model: InsightAlignModel,
        dataset: OfflineDataset,
        design: str,
        intention: QoRIntention = QoRIntention(),
        verbose: bool = False,
    ) -> OnlineResult:
        cfg = self.config
        if cfg.min_successes < 0:
            raise TrainingError(
                f"min_successes must be >= 0, got {cfg.min_successes}"
            )
        if cfg.checkpoint_every < 1:
            raise TrainingError(
                f"checkpoint_every must be >= 1, got {cfg.checkpoint_every}"
            )
        rng = derive_rng(cfg.seed, "online", design)
        catalog = default_catalog()
        extractor = InsightExtractor()
        profile = get_profile(design)
        normalizer = dataset.normalizer_for(design, intention)
        insight = dataset.insight_for(design).copy()
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)

        observed: List[Tuple[Tuple[int, ...], float]] = []
        seen: set = set()
        result = OnlineResult(design=design)
        best_overall: Tuple[float, Optional[Dict[str, float]]] = (-np.inf, None)
        start_iteration = 0
        if cfg.resume_from:
            start_iteration, insight, best_overall = self._restore(
                model, optimizer, rng, design, observed, seen, result
            )

        state = _LoopState(
            design=design, model=model, optimizer=optimizer, rng=rng,
            insight=insight, observed=observed, seen=seen, result=result,
            best_overall=best_overall, normalizer=normalizer,
            intention=intention, extractor=extractor, profile=profile,
            verbose=verbose,
        )
        tracer = get_tracer()
        with tracer.span(
            "online.run",
            design=design,
            iterations=cfg.iterations,
            k=cfg.k,
            seed=cfg.seed,
        ):
            for iteration in range(start_iteration, cfg.iterations):
                with tracer.span(
                    "online.iteration", iteration=iteration
                ) as iter_span:
                    proposals = self._propose(model, state.insight, seen, rng)
                    params_list = [
                        apply_recipe_set(list(bits), catalog)
                        for bits in proposals
                    ]
                    with tracer.span(
                        "online.evaluate", proposals=len(proposals)
                    ):
                        reports = self._evaluate(
                            design, params_list, dataset.seed,
                            iteration=iteration,
                        )
                    record = self._absorb(state, iteration, proposals,
                                          reports)
                    iter_span.set_attributes(
                        survivors=len(record.recipe_sets),
                        failures=len(record.failures),
                        updated=record.updated,
                        best_score=record.best_score_so_far,
                    )
        result.model = model
        return result

    def _absorb(self, state: _LoopState, iteration: int, proposals,
                reports) -> IterationRecord:
        """Fold one iteration's evaluated proposals into the loop state.

        Everything after evaluation lives here — survivor/failure triage,
        the margin-DPO + PPO update, the insight refresh, the iteration
        record, metrics and the checkpoint — so the serial loop and the
        distributed async learner (whose batches are experience records
        reassembled from actor pipes) share one accounting body, RNG draw
        for RNG draw.
        """
        cfg = self.config
        tracer = get_tracer()
        registry = get_registry()
        design = state.design
        survivors: List[Tuple[int, ...]] = []
        qors: List[Dict[str, float]] = []
        scores: List[float] = []
        failures: List[FlowFailure] = []
        best_run = None
        best_run_score = -np.inf
        for bits, report in zip(proposals, reports):
            state.seen.add(bits)
            if not report.ok:
                error = report.error
                failures.append(FlowFailure(
                    iteration=iteration,
                    recipe_set=bits,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=len(report.attempts),
                ))
                registry.counter(
                    "online_flow_failures_total",
                    "failed evaluations in the online loop",
                ).inc(type=type(error).__name__)
                logger.warning(
                    "%s iter %d: recipe set evaluation failed "
                    "after %d attempt(s) with %s: %s",
                    design, iteration, len(report.attempts),
                    type(error).__name__, error,
                )
                continue
            flow = report.result
            score = state.normalizer.score(flow.qor, state.intention)
            survivors.append(bits)
            qors.append(dict(flow.qor))
            scores.append(score)
            state.observed.append((bits, score))
            if score > best_run_score:
                best_run_score = score
                best_run = flow
            if score > state.best_overall[0]:
                state.best_overall = (score, dict(flow.qor))

        updated = len(survivors) >= max(1, cfg.min_successes)
        if updated:
            with tracer.span(
                "online.update", survivors=len(survivors)
            ):
                self._update(
                    state.model, state.optimizer, state.insight,
                    survivors, scores, state.observed, state.rng,
                )
            if cfg.insight_refresh > 0 and best_run is not None:
                fresh = state.extractor.extract(
                    best_run, state.profile
                ).values
                state.insight = (
                    (1.0 - cfg.insight_refresh) * state.insight
                    + cfg.insight_refresh * fresh
                )
        else:
            logger.warning(
                "%s iter %d: only %d/%d evaluations survived "
                "(min_successes=%d), skipping the model update",
                design, iteration, len(survivors), len(proposals),
                cfg.min_successes,
            )

        record = self._record(
            iteration, survivors, qors, scores, state.observed,
            state.best_overall[1],
        )
        record.failures = failures
        record.updated = updated
        state.result.records.append(record)
        registry.counter(
            "online_iterations_total", "online iterations run"
        ).inc()
        if np.isfinite(record.best_score_so_far):
            registry.gauge(
                "online_best_score",
                "best QoR score observed so far",
            ).set(record.best_score_so_far)
        if np.isfinite(record.avg_top5_so_far):
            registry.gauge(
                "online_avg_top5",
                "mean of the top-5 QoR scores so far",
            ).set(record.avg_top5_so_far)
        if cfg.checkpoint_path and (
            (iteration + 1) % cfg.checkpoint_every == 0
            or iteration + 1 == cfg.iterations
        ):
            self._checkpoint(
                state.model, state.optimizer, state.rng, design,
                iteration, state.observed, state.seen, state.insight,
                state.best_overall, state.result,
            )
        if state.verbose:
            print(
                f"{design} iter {iteration}: best so far "
                f"{record.best_score_so_far:.3f} "
                f"avg-top5 {record.avg_top5_so_far:.3f} "
                f"({len(survivors)}/{len(proposals)} runs ok)"
            )
        return record

    # ------------------------------------------------------------------
    def _evaluate(self, design, params_list, seed, iteration=0):
        """Evaluate one iteration's proposals as a single session batch
        (outcomes come back in proposal order).

        ``iteration`` is unused here — per-job randomness is keyed by
        batch index alone, as it always was — but the distributed
        subclass needs it to label dispatches, so the override point
        carries it.
        """
        del iteration
        return self._session.evaluate(
            [FlowJob(design, params, seed) for params in params_list]
        )

    # ------------------------------------------------------------------
    def _checkpoint(self, model, optimizer, rng, design, iteration,
                    observed, seen, insight, best_overall, result) -> None:
        """Atomically persist the full loop state at an iteration boundary."""
        from repro.runtime.checkpoint import TrainingCheckpoint, save_checkpoint

        save_checkpoint(
            TrainingCheckpoint(
                kind="online",
                step=iteration,
                model_state=model.state_dict(),
                optimizer_state=optimizer.state_dict(),
                rng_state=rng.bit_generator.state,
                payload={
                    "design": design,
                    "seed": self.config.seed,
                    "observed": list(observed),
                    "seen": sorted(seen),
                    "insight": np.asarray(insight).copy(),
                    "best_overall": best_overall,
                    "records": list(result.records),
                },
            ),
            self.config.checkpoint_path,
        )

    def _restore(self, model, optimizer, rng, design, observed, seen, result):
        """Load ``resume_from`` into the live loop state (bit-identical)."""
        from repro.errors import CheckpointError
        from repro.runtime.checkpoint import intern_keys, load_checkpoint

        cfg = self.config
        checkpoint = load_checkpoint(cfg.resume_from, expected_kind="online")
        payload = checkpoint.payload
        if payload.get("design") != design:
            raise CheckpointError(
                f"checkpoint is for design {payload.get('design')!r}, "
                f"cannot resume fine-tuning on {design!r}"
            )
        saved_seed = payload.get("seed")
        if saved_seed is not None and saved_seed != cfg.seed:
            raise CheckpointError(
                f"checkpoint was tuned with seed {saved_seed}, "
                f"config has seed {cfg.seed}; resuming would diverge"
            )
        try:
            model.load_state_dict(checkpoint.model_state)
        except (KeyError, ValueError) as err:
            raise CheckpointError(
                f"checkpoint weights do not fit this model: {err}"
            ) from err
        optimizer.load_state_dict(checkpoint.optimizer_state)
        rng.bit_generator.state = checkpoint.rng_state
        observed[:] = [
            (tuple(bits), float(score)) for bits, score in payload["observed"]
        ]
        seen.clear()
        seen.update(tuple(bits) for bits in payload["seen"])
        result.records[:] = payload.get("records", [])
        # astype (not .copy()) so the restored array re-acquires numpy's
        # interned dtype — unpickled arrays carry a fresh dtype instance,
        # which would change the next checkpoint's pickle bytes.
        insight = np.asarray(payload["insight"])
        insight = insight.astype(insight.dtype.str, copy=True)
        best_score, best_qor = payload["best_overall"]
        # Unpickled QoR dicts carry fresh key-string objects; re-key them
        # with the interned literals so the *next* checkpoint this run
        # writes pickles byte-identically to an uninterrupted run's.
        for record in result.records:
            for qor in record.qors:
                intern_keys(qor)
        if best_qor is not None:
            intern_keys(best_qor)
        return checkpoint.step + 1, insight, (best_score, best_qor)

    # ------------------------------------------------------------------
    def _propose(self, model, insight, seen, rng) -> List[Tuple[int, ...]]:
        """K fresh recipe sets: beam first, sampling for the remainder."""
        cfg = self.config
        picks: List[Tuple[int, ...]] = []
        for candidate in beam_search(model, insight, beam_width=4 * cfg.k):
            if candidate.recipe_set not in seen and candidate.recipe_set not in picks:
                picks.append(candidate.recipe_set)
            if len(picks) >= cfg.k - cfg.explore_samples:
                break
        attempts = 0
        while len(picks) < cfg.k and attempts < 60:
            candidate = sample_decode(model, insight, rng, temperature=1.3)
            attempts += 1
            if candidate.recipe_set in seen or candidate.recipe_set in picks:
                continue
            picks.append(candidate.recipe_set)
        if not picks:
            raise TrainingError("online loop could not propose any new recipe set")
        return picks

    def _update(self, model, optimizer, insight, proposals, scores, observed, rng):
        """One update: margin-DPO over observed pairs + PPO on the batch."""
        cfg = self.config
        old_log_probs = [
            sequence_log_prob_value(model, insight, bits) for bits in proposals
        ]
        # --- margin-DPO on pairs drawn from everything observed so far.
        losses = []
        if len(observed) >= 2:
            count = min(cfg.dpo_pairs_per_update, len(observed) * 2)
            for _ in range(count):
                i, j = rng.integers(0, len(observed), size=2)
                (bits_i, score_i), (bits_j, score_j) = observed[int(i)], observed[int(j)]
                if abs(score_i - score_j) < 1e-6:
                    continue
                if score_i < score_j:
                    bits_i, bits_j = bits_j, bits_i
                    score_i, score_j = score_j, score_i
                gap = (
                    sequence_log_prob(model, insight, bits_i)
                    - sequence_log_prob(model, insight, bits_j)
                )
                margin = cfg.lam * (score_i - score_j)
                losses.append((Tensor(np.array(margin)) - gap).clip_min(0.0))
        # --- PPO on the current batch.
        if cfg.ppo_weight > 0 and len(proposals) >= 2:
            advantages = advantages_from_scores(scores)
            for bits, old_lp, adv in zip(proposals, old_log_probs, advantages):
                losses.append(
                    ppo_loss(model, insight, bits, old_lp, float(adv),
                             clip_epsilon=cfg.ppo_clip) * cfg.ppo_weight
                )
        if not losses:
            return
        total = losses[0]
        for item in losses[1:]:
            total = total + item
        loss = total / float(len(losses))
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), cfg.grad_clip)
        optimizer.step()

    def _record(
        self, iteration, proposals, qors, scores, observed, best_qor
    ) -> IterationRecord:
        # ``observed`` / ``best_qor`` can be empty when every evaluation so
        # far failed; report NaN rather than aborting the whole run.
        all_scores = np.array([s for _, s in observed])
        if all_scores.size:
            best_so_far = float(all_scores.max())
            avg_top5 = float(np.sort(all_scores)[-5:].mean())
        else:
            best_so_far = float("nan")
            avg_top5 = float("nan")
        return IterationRecord(
            iteration=iteration,
            recipe_sets=list(proposals),
            qors=qors,
            scores=scores,
            best_score_so_far=best_so_far,
            avg_top5_so_far=avg_top5,
            best_power_so_far=(
                float(best_qor["power_mw"]) if best_qor else float("nan")
            ),
            best_tns_so_far=(
                float(best_qor["tns_ns"]) if best_qor else float("nan")
            ),
        )
