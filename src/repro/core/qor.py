"""Compound QoR score — the paper's eq. (4).

    s = sum_i  w_i * g_i * (m_i - mean(m)_i) / std(m)_i

where the mean and standard deviation of each metric are taken **over all
datapoints of the same design**, ``g_i`` is +1 for metrics to maximize and
-1 for metrics to minimize.  Per-design normalization is the whole point:
absolute TNS/power magnitudes vary by orders of magnitude across designs
(Table IV), but z-scores are comparable, which is what lets one model rank
recipes across designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError


@dataclass(frozen=True)
class QoRIntention:
    """A user-defined QoR objective: weighted metrics with directions.

    ``metrics`` maps a QoR key (see :class:`repro.flow.result.FlowResult`)
    to ``(weight, maximize)``.  The paper's running example minimizes total
    power (w=0.7) and TNS (w=0.3).
    """

    metrics: Tuple[Tuple[str, float, bool], ...] = (
        ("power_mw", 0.7, False),
        ("tns_ns", 0.3, False),
    )

    def __post_init__(self) -> None:
        if not self.metrics:
            raise TrainingError("QoR intention must weight at least one metric")
        for name, weight, _ in self.metrics:
            if weight < 0:
                raise TrainingError(f"negative weight {weight} for metric {name}")

    @property
    def metric_names(self) -> List[str]:
        return [name for name, _, _ in self.metrics]


@dataclass
class DesignNormalizer:
    """Per-design mean/std for each metric (frozen once fitted)."""

    mean: Dict[str, float] = field(default_factory=dict)
    std: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def fit(cls, qors: Sequence[Dict[str, float]], intention: QoRIntention
            ) -> "DesignNormalizer":
        if not qors:
            raise TrainingError("cannot fit a normalizer on zero datapoints")
        norm = cls()
        for name in intention.metric_names:
            values = np.array([q[name] for q in qors], dtype=np.float64)
            mean = float(values.mean())
            std = float(values.std())
            # A (near-)constant metric carries no ranking signal; flooring
            # the std at a relative epsilon keeps float rounding noise from
            # exploding into huge z-scores.
            if std <= 1e-9 * max(1.0, abs(mean)):
                std = 1.0
            norm.mean[name] = mean
            norm.std[name] = std
        return norm

    def score(self, qor: Dict[str, float], intention: QoRIntention) -> float:
        total = 0.0
        for name, weight, maximize in intention.metrics:
            z = (qor[name] - self.mean[name]) / self.std[name]
            total += weight * (z if maximize else -z)
        return total


def compound_scores(
    qors_by_design: Dict[str, List[Dict[str, float]]],
    intention: QoRIntention = QoRIntention(),
) -> Dict[str, np.ndarray]:
    """Score every datapoint of every design with eq. (4).

    Returns ``design -> scores array`` aligned with the input lists.
    """
    out: Dict[str, np.ndarray] = {}
    for design, qors in qors_by_design.items():
        norm = DesignNormalizer.fit(qors, intention)
        out[design] = np.array(
            [norm.score(q, intention) for q in qors], dtype=np.float64
        )
    return out
