"""PPO surrogate loss for the online fine-tuning phase.

The online loop (paper Section III.G) proposes K recipe sets per iteration,
observes their QoR, and updates with margin-DPO *and* a PPO clipped
surrogate.  Here a whole recipe set is one action; its advantage is the
centered QoR score of the batch; the importance ratio is the sequence-level
likelihood ratio against the pre-update (behaviour) policy:

    r(phi)  = exp(log pi_phi(R|I) - log pi_old(R|I))
    L_PPO   = -min(r * A, clip(r, 1-eps, 1+eps) * A)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob
from repro.nn.tensor import Tensor


def ppo_loss(
    model: InsightAlignModel,
    insight: np.ndarray,
    recipe_set: Sequence[int],
    old_log_prob: float,
    advantage: float,
    clip_epsilon: float = 0.2,
) -> Tensor:
    """Clipped PPO surrogate for one (recipe set, advantage) sample."""
    if clip_epsilon <= 0:
        raise ValueError(f"clip_epsilon must be positive, got {clip_epsilon}")
    log_new = sequence_log_prob(model, insight, recipe_set)
    ratio = (log_new - float(old_log_prob)).exp()
    low, high = 1.0 - clip_epsilon, 1.0 + clip_epsilon

    ratio_value = float(ratio.item())
    clipped_value = min(high, max(low, ratio_value))
    # min(r*A, clip(r)*A): pick the branch by value, differentiate through
    # the unclipped ratio only when it is the active branch (standard PPO).
    if ratio_value * advantage <= clipped_value * advantage:
        surrogate = ratio * advantage
    elif low <= ratio_value <= high:
        surrogate = ratio * advantage
    else:
        surrogate = Tensor(np.array(clipped_value * advantage))
    return -surrogate


def advantages_from_scores(scores: Sequence[float]) -> np.ndarray:
    """Batch advantages: centered and scale-normalized QoR scores."""
    array = np.asarray(scores, dtype=np.float64)
    if array.size == 0:
        return array
    centered = array - array.mean()
    spread = centered.std()
    return centered / spread if spread > 1e-9 else centered
