"""Beam search over recipe decisions — Algorithm 1's BEAMSEARCH.

Starting from the SOS-only prefix, each step extends every beam with both
decisions (select / skip), scores extensions by cumulative log probability
under the aligned policy, and keeps the top-K sequences.  After n steps the
K complete recipe sets best aligned with the QoR-optimized policy remain.

Ordering is canonical: extensions (and final candidates) sort by log-prob
descending with ties broken by the recipe-set bit vector descending, so the
top-K output is deterministic even under exactly equal scores.

Two implementations exist.  :func:`beam_search_reference` is the paper-
literal per-beam loop — one full-sequence ``model.logits`` forward per beam
per step — kept as the executable specification.  The public entry points
(:func:`beam_search`, :func:`greedy_decode`, :func:`sample_decode`) route
through :mod:`repro.serving.batch_decode`, which advances the whole frontier
in one ``batched_logits`` call per step; equivalence (same recipe sets, same
log-probs within 1e-9) is enforced by ``tests/test_serving_batch_decode.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.model import InsightAlignModel


@dataclass(frozen=True)
class BeamCandidate:
    """A complete recipe set with its cumulative log probability."""

    recipe_set: Tuple[int, ...]
    log_prob: float


def beam_search(
    model: InsightAlignModel,
    insight: np.ndarray,
    beam_width: int = 5,
) -> List[BeamCandidate]:
    """Top-``beam_width`` recipe sets for ``insight``, best first."""
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    # Imported lazily: repro.serving.batch_decode imports this module for
    # BeamCandidate, so a top-level import would be circular.
    from repro.serving.batch_decode import batched_beam_search

    [candidates] = batched_beam_search(model, insight, beam_widths=beam_width)
    return [
        BeamCandidate(recipe_set=bits, log_prob=log_prob)
        for bits, log_prob in candidates
    ]


def beam_search_reference(
    model: InsightAlignModel,
    insight: np.ndarray,
    beam_width: int = 5,
) -> List[BeamCandidate]:
    """The per-beam reference loop — the batched decoder's specification."""
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    n = model.n_recipes
    # Beams: (decisions-so-far, cumulative log prob).
    beams: List[Tuple[List[int], float]] = [([], 0.0)]
    for t in range(n):
        extensions: List[Tuple[List[int], float]] = []
        for prefix, score in beams:
            padded = np.zeros(n, dtype=np.int64)
            padded[: len(prefix)] = prefix
            logits = model.logits(insight, padded).numpy()
            z = float(np.clip(logits[t], -60.0, 60.0))
            log_p1 = -np.log1p(np.exp(-z))
            log_p0 = -np.log1p(np.exp(z))
            extensions.append((prefix + [1], score + log_p1))
            extensions.append((prefix + [0], score + log_p0))
        # Score descending; equal scores break by decision bits descending
        # (select-before-skip), making top-K deterministic under ties.
        extensions.sort(key=lambda item: (item[1], item[0]), reverse=True)
        beams = extensions[:beam_width]
    return [
        BeamCandidate(recipe_set=tuple(prefix), log_prob=score)
        for prefix, score in beams
    ]


def greedy_decode(model: InsightAlignModel, insight: np.ndarray) -> BeamCandidate:
    """Beam width 1 — the greedy ablation baseline."""
    return beam_search(model, insight, beam_width=1)[0]


def sample_decode(
    model: InsightAlignModel,
    insight: np.ndarray,
    rng: np.random.Generator,
    temperature: float = 1.0,
) -> BeamCandidate:
    """Ancestral sampling from the policy — the stochastic ablation."""
    from repro.serving.batch_decode import batched_sample_decode

    insight = np.asarray(insight, dtype=np.float64)
    [(bits, log_prob)] = batched_sample_decode(
        model, insight.reshape(1, -1), [rng], temperature=temperature
    )
    return BeamCandidate(recipe_set=bits, log_prob=log_prob)
