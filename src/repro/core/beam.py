"""Beam search over recipe decisions — Algorithm 1's BEAMSEARCH.

Starting from the SOS-only prefix, each step extends every beam with both
decisions (select / skip), scores extensions by cumulative log probability
under the aligned policy, and keeps the top-K sequences.  After n steps the
K complete recipe sets best aligned with the QoR-optimized policy remain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.model import InsightAlignModel


@dataclass(frozen=True)
class BeamCandidate:
    """A complete recipe set with its cumulative log probability."""

    recipe_set: Tuple[int, ...]
    log_prob: float


def beam_search(
    model: InsightAlignModel,
    insight: np.ndarray,
    beam_width: int = 5,
) -> List[BeamCandidate]:
    """Top-``beam_width`` recipe sets for ``insight``, best first."""
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    n = model.n_recipes
    # Beams: (decisions-so-far, cumulative log prob).
    beams: List[Tuple[List[int], float]] = [([], 0.0)]
    for t in range(n):
        extensions: List[Tuple[List[int], float]] = []
        for prefix, score in beams:
            padded = np.zeros(n, dtype=np.int64)
            padded[: len(prefix)] = prefix
            logits = model.logits(insight, padded).numpy()
            z = float(np.clip(logits[t], -60.0, 60.0))
            log_p1 = -np.log1p(np.exp(-z))
            log_p0 = -np.log1p(np.exp(z))
            extensions.append((prefix + [1], score + log_p1))
            extensions.append((prefix + [0], score + log_p0))
        extensions.sort(key=lambda item: item[1], reverse=True)
        beams = extensions[:beam_width]
    return [
        BeamCandidate(recipe_set=tuple(prefix), log_prob=score)
        for prefix, score in beams
    ]


def greedy_decode(model: InsightAlignModel, insight: np.ndarray) -> BeamCandidate:
    """Beam width 1 — the greedy ablation baseline."""
    return beam_search(model, insight, beam_width=1)[0]


def sample_decode(
    model: InsightAlignModel,
    insight: np.ndarray,
    rng: np.random.Generator,
    temperature: float = 1.0,
) -> BeamCandidate:
    """Ancestral sampling from the policy — the stochastic ablation."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    n = model.n_recipes
    decisions: List[int] = []
    total = 0.0
    for t in range(n):
        padded = np.zeros(n, dtype=np.int64)
        padded[: len(decisions)] = decisions
        logits = model.logits(insight, padded).numpy()
        z = float(np.clip(logits[t] / temperature, -60.0, 60.0))
        p_one = 1.0 / (1.0 + np.exp(-z))
        choice = 1 if rng.random() < p_one else 0
        decisions.append(choice)
        total += np.log(p_one if choice == 1 else 1.0 - p_one)
    return BeamCandidate(recipe_set=tuple(decisions), log_prob=float(total))
