"""Multi-objective (Pareto) utilities over QoR archives.

The paper's compound score collapses power/TNS into one scalar, but the
surrounding literature (PPATuner, PTPT) is explicitly Pareto-driven.  These
helpers extract non-dominated fronts from archives and measure how well a
recommendation set covers the front — used by the Pareto-coverage bench and
handy for any multi-objective analysis of flow results.

Conventions: objectives are *minimized*; points are rows of an
``(n, n_objectives)`` array.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True if ``a`` Pareto-dominates ``b`` (<= everywhere, < somewhere)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (O(n^2), fine for archives)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise TrainingError(f"expected 2-D points, got shape {points.shape}")
    n = len(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        for j in range(n):
            if i == j:
                continue
            if dominates(points[j], points[i]):
                mask[i] = False
                break
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The non-dominated subset of ``points``."""
    return np.asarray(points)[pareto_front_mask(points)]


def hypervolume_2d(points: np.ndarray, reference: Sequence[float]) -> float:
    """Dominated hypervolume (area) for two minimized objectives.

    ``reference`` is the worst-corner anchor; points at or beyond it
    contribute nothing.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise TrainingError("hypervolume_2d needs (n, 2) points")
    ref_x, ref_y = float(reference[0]), float(reference[1])
    front = pareto_front(points)
    front = front[(front[:, 0] < ref_x) & (front[:, 1] < ref_y)]
    if len(front) == 0:
        return 0.0
    order = np.argsort(front[:, 0])
    front = front[order]
    area = 0.0
    previous_y = ref_y
    for x, y in front:
        if y < previous_y:
            area += (ref_x - x) * (previous_y - y)
            previous_y = y
    return float(area)


def coverage_ratio(
    candidate_points: np.ndarray,
    archive_points: np.ndarray,
    reference: Sequence[float],
) -> float:
    """Hypervolume of the candidates relative to the archive's front.

    1.0 means the candidate set dominates as much objective space as the
    whole archive; > 1.0 means it extends beyond the archive's front.
    """
    archive_hv = hypervolume_2d(archive_points, reference)
    if archive_hv <= 0.0:
        raise TrainingError("archive has zero hypervolume at this reference")
    return hypervolume_2d(candidate_points, reference) / archive_hv


def qor_points(
    qors: Sequence[Dict[str, float]],
    metrics: Tuple[str, str] = ("power_mw", "tns_ns"),
) -> np.ndarray:
    """Extract an (n, 2) minimized-objective array from QoR dicts."""
    return np.array(
        [[q[metrics[0]], q[metrics[1]]] for q in qors], dtype=np.float64
    )
