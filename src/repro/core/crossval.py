"""k-fold cross-validation zero-shot evaluation — the paper's Table IV.

The 17 designs are split into k = 4 random groups with roughly equal
datapoint counts.  In fold i, the designs of group i are held out; a model
is aligned on the remaining designs only, then queried zero-shot (beam
search, K = 5) for each held-out design using only its insight vector.  The
recommended recipe sets are evaluated with real flow runs, scored with the
*known-datapoint* normalizer of that design, and compared against the best
known recipe set ("Win%" = share of known sets the best recommendation
outperforms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.alignment import AlignmentConfig, AlignmentTrainer
from repro.core.beam import beam_search
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.qor import QoRIntention
from repro.errors import TrainingError
from repro.recipes.apply import apply_recipe_set
from repro.recipes.catalog import default_catalog
from repro.runtime.parallel import FlowJob
from repro.runtime.session import FlowSession, RuntimeConfig
from repro.utils.rng import derive_rng


@dataclass
class DesignEvaluation:
    """One Table IV row."""

    design: str
    best_known_tns_ns: float
    best_known_power_mw: float
    best_known_score: float
    rec_tns_ns: float
    rec_power_mw: float
    rec_score: float
    win_pct: float
    recommended_sets: List[Tuple[int, ...]] = field(default_factory=list)
    recommended_qors: List[Dict[str, float]] = field(default_factory=list)
    recommended_scores: List[float] = field(default_factory=list)


@dataclass
class CrossValResult:
    """All rows plus fold bookkeeping."""

    rows: List[DesignEvaluation]
    folds: List[List[str]]
    models: List[InsightAlignModel] = field(default_factory=list)

    def row(self, design: str) -> DesignEvaluation:
        for row in self.rows:
            if row.design == design:
                return row
        raise KeyError(f"no evaluation row for {design}")

    @property
    def mean_win_pct(self) -> float:
        return float(np.mean([r.win_pct for r in self.rows]))


def make_folds(
    dataset: OfflineDataset, k: int = 4, seed: int = 0
) -> List[List[str]]:
    """Split designs into k groups with roughly equal datapoint counts."""
    if k < 2:
        raise TrainingError(f"need at least 2 folds, got {k}")
    designs = dataset.designs()
    if len(designs) < k:
        raise TrainingError(f"{len(designs)} designs cannot fill {k} folds")
    rng = derive_rng(seed, "folds")
    order = list(rng.permutation(designs))
    counts = {d: len(dataset.by_design(d)) for d in designs}
    folds: List[List[str]] = [[] for _ in range(k)]
    loads = [0] * k
    # Greedy balancing: biggest designs first onto the lightest fold.
    for design in sorted(order, key=lambda d: -counts[d]):
        lightest = int(np.argmin(loads))
        folds[lightest].append(design)
        loads[lightest] += counts[design]
    return folds


def evaluate_design(
    model: InsightAlignModel,
    dataset: OfflineDataset,
    design: str,
    intention: QoRIntention = QoRIntention(),
    beam_width: int = 5,
    seed: int = 0,
    session: Optional[FlowSession] = None,
    runtime: Optional[RuntimeConfig] = None,
) -> DesignEvaluation:
    """Zero-shot evaluation of one (held-out) design against its archive.

    The beam's candidate recipe sets are evaluated as one
    :class:`~repro.runtime.session.FlowSession` batch — supervised,
    cacheable, concurrent, and bit-identical to the historical one-by-one
    ``run_flow`` loop at any worker count.  Pass ``session`` to share a
    pool/cache across many designs (the caller keeps ownership), or
    ``runtime`` to configure a private session for this call; the
    private session's ``seed`` is overridden by ``seed`` so candidate
    identity always follows the evaluation seed.
    """
    if session is not None and runtime is not None:
        raise TrainingError(
            "pass session= (shared, caller-owned) or runtime= "
            "(private), not both"
        )
    catalog = default_catalog()
    insight = dataset.insight_for(design)
    candidates = beam_search(model, insight, beam_width=beam_width)

    owns_session = session is None
    if session is None:
        session = FlowSession((runtime or RuntimeConfig()).replace(seed=seed))
    try:
        results = session.evaluate_strict([
            FlowJob(
                design,
                apply_recipe_set(list(candidate.recipe_set), catalog),
                seed,
            )
            for candidate in candidates
        ])
    finally:
        if owns_session:
            session.close()

    normalizer = dataset.normalizer_for(design, intention)
    qors: List[Dict[str, float]] = []
    scores: List[float] = []
    for result in results:
        qors.append(dict(result.qor))
        scores.append(normalizer.score(result.qor, intention))

    best_rec = int(np.argmax(scores))
    known_scores = dataset.scores_for(design, intention)
    best_known_index = int(np.argmax(known_scores))
    best_known = dataset.by_design(design)[best_known_index]
    win_pct = 100.0 * float((known_scores < scores[best_rec]).mean())

    return DesignEvaluation(
        design=design,
        best_known_tns_ns=best_known.qor["tns_ns"],
        best_known_power_mw=best_known.qor["power_mw"],
        best_known_score=float(known_scores[best_known_index]),
        rec_tns_ns=qors[best_rec]["tns_ns"],
        rec_power_mw=qors[best_rec]["power_mw"],
        rec_score=float(scores[best_rec]),
        win_pct=win_pct,
        recommended_sets=[c.recipe_set for c in candidates],
        recommended_qors=qors,
        recommended_scores=scores,
    )


def cross_validate(
    dataset: OfflineDataset,
    k: int = 4,
    intention: QoRIntention = QoRIntention(),
    config: Optional[AlignmentConfig] = None,
    beam_width: int = 5,
    seed: int = 0,
    verbose: bool = False,
    runtime: Optional[RuntimeConfig] = None,
) -> CrossValResult:
    """The full Table IV protocol: k folds, zero-shot rows for all designs.

    One :class:`~repro.runtime.session.FlowSession` built from
    ``runtime`` is shared across every fold's evaluations, so the worker
    pool stays warm and the QoR cache (when configured) serves repeats
    across designs.  The config's ``seed`` is overridden by ``seed``.
    """
    folds = make_folds(dataset, k=k, seed=seed)
    config = config if config is not None else AlignmentConfig(seed=seed)
    rows: List[DesignEvaluation] = []
    models: List[InsightAlignModel] = []
    with FlowSession((runtime or RuntimeConfig()).replace(seed=seed)) as session:
        for fold_index, held_out in enumerate(folds):
            train_designs = [
                d for d in dataset.designs() if d not in set(held_out)
            ]
            train_set = dataset.restricted_to(train_designs)
            trainer = AlignmentTrainer(config)
            model, _ = trainer.train(train_set, intention, verbose=verbose)
            models.append(model)
            for design in held_out:
                if verbose:
                    print(f"fold {fold_index}: evaluating {design}")
                rows.append(
                    evaluate_design(
                        model, dataset, design, intention,
                        beam_width=beam_width, seed=seed, session=session,
                    )
                )
    rows.sort(key=lambda r: int(r.design[1:]))
    return CrossValResult(rows=rows, folds=folds, models=models)
