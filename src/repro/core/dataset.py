"""Offline dataset: (design insight, recipe set, QoR) archive.

The paper's offline phase consumes ~3,000 datapoints collected from 17
designs with various recipe combinations.  This module regenerates that
archive with the simulated tool:

- one *probe run* per design under default parameters produces the design's
  insight vector (the paper's "first iteration / offline alignment" probe),
- every recipe set in the sampling plan is evaluated by a full flow run.

Sampling plan per design (~176 sets): the empty set, all 40 singletons, and
random multi-recipe combinations of size 2-6 — singletons expose individual
recipe effects, combinations expose interactions.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.qor import DesignNormalizer, QoRIntention
from repro.errors import TrainingError
from repro.insights.extractor import InsightExtractor, InsightVector
from repro.netlist.profiles import design_profiles, get_profile
from repro.recipes.apply import apply_recipe_set
from repro.recipes.catalog import default_catalog
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class DataPoint:
    """One archive entry: a recipe set and its QoR on one design."""

    design: str
    recipe_set: Tuple[int, ...]
    qor: Dict[str, float]


@dataclass
class OfflineDataset:
    """The offline archive plus per-design insight vectors."""

    points: List[DataPoint]
    insights: Dict[str, InsightVector]
    seed: int = 0
    _by_design: Dict[str, List[DataPoint]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_design = {}
        for point in self.points:
            self._by_design.setdefault(point.design, []).append(point)

    # ------------------------------------------------------------------
    def designs(self) -> List[str]:
        return sorted(self._by_design)

    def by_design(self, design: str) -> List[DataPoint]:
        try:
            return self._by_design[design]
        except KeyError:
            raise TrainingError(f"no datapoints for design {design!r}") from None

    def insight_for(self, design: str) -> np.ndarray:
        try:
            return self.insights[design].values
        except KeyError:
            raise TrainingError(f"no insight vector for design {design!r}") from None

    def __len__(self) -> int:
        return len(self.points)

    def scores_for(
        self, design: str, intention: QoRIntention = QoRIntention()
    ) -> np.ndarray:
        """Eq.-4 compound scores of the design's datapoints (aligned order)."""
        points = self.by_design(design)
        norm = self.normalizer_for(design, intention)
        return np.array(
            [norm.score(p.qor, intention) for p in points], dtype=np.float64
        )

    def normalizer_for(
        self, design: str, intention: QoRIntention = QoRIntention()
    ) -> DesignNormalizer:
        """Per-design metric normalizer fitted on all known datapoints."""
        return DesignNormalizer.fit(
            [p.qor for p in self.by_design(design)], intention
        )

    def best_known(
        self, design: str, intention: QoRIntention = QoRIntention()
    ) -> Tuple[DataPoint, float]:
        """The best-scoring known datapoint and its compound score."""
        points = self.by_design(design)
        scores = self.scores_for(design, intention)
        index = int(np.argmax(scores))
        return points[index], float(scores[index])

    def restricted_to(self, designs: Sequence[str]) -> "OfflineDataset":
        """Sub-dataset containing only ``designs`` (for CV splits)."""
        keep = set(designs)
        return OfflineDataset(
            points=[p for p in self.points if p.design in keep],
            insights={d: v for d, v in self.insights.items() if d in keep},
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def save(self, path: os.PathLike) -> None:
        with open(path, "wb") as handle:
            pickle.dump(
                {"points": self.points, "insights": self.insights, "seed": self.seed},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )

    @classmethod
    def load(cls, path: os.PathLike) -> "OfflineDataset":
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        return cls(
            points=payload["points"],
            insights=payload["insights"],
            seed=payload.get("seed", 0),
        )


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def sample_recipe_sets(
    n_recipes: int, count: int, seed: int, design: str
) -> List[Tuple[int, ...]]:
    """The per-design sampling plan (deduplicated, deterministic)."""
    rng = derive_rng(seed, "recipe-sets", design)
    sets: List[Tuple[int, ...]] = [tuple([0] * n_recipes)]
    for index in range(n_recipes):
        bits = [0] * n_recipes
        bits[index] = 1
        sets.append(tuple(bits))
    seen = set(sets)
    while len(sets) < count:
        size = int(rng.integers(2, 7))
        chosen = rng.choice(n_recipes, size=size, replace=False)
        bits = [0] * n_recipes
        for index in chosen:
            bits[int(index)] = 1
        key = tuple(bits)
        if key not in seen:
            seen.add(key)
            sets.append(key)
    return sets[:count]


def build_offline_dataset(
    designs: Optional[Sequence[str]] = None,
    sets_per_design: int = 176,
    seed: int = 0,
    cache_path: Optional[os.PathLike] = None,
    verbose: bool = False,
    runtime: Optional["RuntimeConfig"] = None,
    processes: Optional[int] = None,
    qor_cache_path: Optional[os.PathLike] = None,
) -> OfflineDataset:
    """Build (or load from cache) the offline archive.

    Every flow run — the recipe-set grid *and* the per-design insight
    probes — is one :class:`~repro.runtime.session.FlowSession` batch, so
    the archive is identical at any worker count and individual results
    can be served from (and saved to) a persistent QoR cache.

    Args:
        designs: Design names; defaults to all 17 profiles.
        sets_per_design: Recipe sets per design (17 x 176 = 2,992 — the
            paper's ~3,000 datapoints).
        seed: Master seed for sampling and flow noise.
        cache_path: If given and the file exists, load it instead of
            rebuilding; otherwise build and save there.
        verbose: Print per-design progress.
        runtime: :class:`~repro.runtime.session.RuntimeConfig` for the
            build's FlowSession (workers, QoR cache, retry policy, trace
            toggle).  ``None`` keeps the historical default of one worker
            per CPU and no QoR cache; the config's ``seed`` is overridden
            by ``seed`` so job identity always follows the dataset seed.
        processes: Deprecated — use ``runtime=RuntimeConfig(workers=...)``.
        qor_cache_path: Deprecated — use
            ``runtime=RuntimeConfig(qor_cache_path=...)``.
    """
    from repro.observability import get_tracer
    from repro.runtime.parallel import FlowJob
    from repro.runtime.session import (
        FlowSession,
        RuntimeConfig,
        warn_legacy_runtime_kwargs,
    )

    legacy = {}
    if processes is not None:
        legacy["processes"] = processes
    if qor_cache_path is not None:
        legacy["qor_cache_path"] = qor_cache_path
    if legacy:
        warn_legacy_runtime_kwargs("build_offline_dataset", **legacy)
        if runtime is not None:
            raise TrainingError(
                "pass runtime=RuntimeConfig(...) or the deprecated "
                "processes/qor_cache_path kwargs, not both"
            )
    if runtime is None:
        runtime = RuntimeConfig(
            workers=max(
                1, processes if processes is not None else (os.cpu_count() or 1)
            ),
            qor_cache_path=qor_cache_path,
        )
    runtime = runtime.replace(seed=seed)

    if cache_path is not None and os.path.exists(cache_path):
        return OfflineDataset.load(cache_path)

    names = list(designs) if designs is not None else [
        p.name for p in design_profiles()
    ]
    catalog = default_catalog()
    plans: List[Tuple[str, Tuple[int, ...]]] = []
    jobs: List[FlowJob] = []
    for name in names:
        for bits in sample_recipe_sets(len(catalog), sets_per_design, seed, name):
            plans.append((name, bits))
            jobs.append(
                FlowJob(name, apply_recipe_set(list(bits), catalog), seed)
            )
    # Probe runs (default parameters = the empty recipe set) ride in the
    # same batch; their snapshots feed the insight extractor below.
    probe_params = apply_recipe_set([0] * len(catalog), catalog)
    for name in names:
        jobs.append(FlowJob(name, probe_params, seed))

    with get_tracer().span(
        "dataset.build",
        designs=len(names),
        sets_per_design=sets_per_design,
        jobs=len(jobs),
        seed=seed,
    ):
        with FlowSession(runtime) as session:
            results = session.evaluate_strict(jobs)

        evaluated = [
            DataPoint(design=name, recipe_set=bits, qor=dict(result.qor))
            for (name, bits), result in zip(plans, results)
        ]
        extractor = InsightExtractor()
        insights: Dict[str, InsightVector] = {}
        for name, result in zip(names, results[len(plans):]):
            if verbose:
                print(f"probing {name} for insights")
            insights[name] = extractor.extract(result, get_profile(name))

    dataset = OfflineDataset(points=evaluated, insights=insights, seed=seed)
    if cache_path is not None:
        dataset.save(cache_path)
    return dataset
