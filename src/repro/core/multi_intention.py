"""Intention-conditioned recommendation — an extension beyond the paper.

The paper trains one model per QoR intention and notes (conclusion) that
online fine-tuning serves "different user intentions on top of the offline
stage".  This module goes one step further: a *single* policy conditioned
on the intention itself.  The conditioning vector appends the normalized
metric weights (signed by optimization direction) to the 72-d insight
vector, and training draws preference pairs under every intention in the
training set — so at inference time the same weights serve any interpolated
intention without retraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.alignment import AlignmentConfig, _batched_log_prob
from repro.core.beam import BeamCandidate, beam_search
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.qor import QoRIntention
from repro.errors import TrainingError
from repro.insights.schema import INSIGHT_DIMS
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng

# The conditioning slots appended to the insight vector; a metric absent
# from an intention contributes weight 0.
CONDITIONED_METRICS: Tuple[str, ...] = ("power_mw", "tns_ns", "drc_count")


# Gain applied to the conditioning slots: the code is 3 of 75 insight dims,
# so it is amplified to compete with the 72 insight dims for the single
# cross-attention memory token's bandwidth.
_CODE_GAIN = 3.0


def intention_code(intention: QoRIntention) -> np.ndarray:
    """Signed, normalized (then amplified) weights for the conditioning slots."""
    weights = {name: 0.0 for name in CONDITIONED_METRICS}
    for name, weight, maximize in intention.metrics:
        if name not in weights:
            raise TrainingError(
                f"metric {name!r} not conditionable; supported: "
                f"{CONDITIONED_METRICS}"
            )
        weights[name] = weight * (1.0 if maximize else -1.0)
    code = np.array([weights[name] for name in CONDITIONED_METRICS])
    norm = np.abs(code).sum()
    return (code / norm if norm > 0 else code) * _CODE_GAIN


def conditioned_insight(
    insight: np.ndarray, intention: QoRIntention
) -> np.ndarray:
    """Insight vector with the intention code appended."""
    return np.concatenate([np.asarray(insight), intention_code(intention)])


class IntentionConditionedModel(InsightAlignModel):
    """InsightAlign model with a second memory token for the intention.

    With a single memory token, cross attention contributes the *same*
    vector at every sequence position (softmax over one key), so opposing
    per-recipe preferences under different intentions are hard to express.
    A second token dedicated to the intention code gives each position its
    own attention split between "what the design looks like" and "what the
    user wants" — enough to flip individual recipe preferences with the
    intention.

    The public interface is unchanged: ``insight`` is the concatenated
    ``[72-d insight || intention code]`` vector, split internally.
    """

    def __init__(self, n_recipes: int = 40, dim: int = 32, seed: int = 0):
        super().__init__(
            n_recipes=n_recipes,
            dim=dim,
            insight_dims=INSIGHT_DIMS + len(CONDITIONED_METRICS),
            seed=seed,
        )
        from repro.nn.layers import Linear

        self.intent_embed = self.add_child(
            "intent_embed", Linear(len(CONDITIONED_METRICS), dim, seed=seed + 7)
        )
        # Re-bind the base insight embed to the raw insight width.
        self.insight_embed = self.add_child(
            "insight_embed", Linear(INSIGHT_DIMS, dim, seed=seed + 1)
        )

    def _memory(self, packed: np.ndarray) -> Tensor:
        base = Tensor(packed[..., :INSIGHT_DIMS])
        code = Tensor(packed[..., INSIGHT_DIMS:])
        insight_token = self.insight_embed(base)
        intent_token = self.intent_embed(code)
        return Tensor.stack([insight_token, intent_token], axis=-2)

    def memory_tokens(self, packed: np.ndarray) -> np.ndarray:
        packed = np.asarray(packed, dtype=np.float64)
        if packed.ndim != 2 or packed.shape[1] != self.insight_dims:
            raise TrainingError(f"packed insights shape {packed.shape} invalid")
        return self._memory(packed).numpy()

    def logits(self, insight, decisions=None, prefix_length=None) -> Tensor:
        packed = np.asarray(insight, dtype=np.float64)
        if packed.shape != (self.insight_dims,):
            raise TrainingError(
                f"packed insight shape {packed.shape}, expected "
                f"({self.insight_dims},)"
            )
        if decisions is None:
            decisions = np.zeros(self.n_recipes, dtype=np.int64)
        decisions = np.asarray(decisions, dtype=np.int64)
        tokens = np.empty(self.n_recipes, dtype=np.int64)
        tokens[0] = 2  # SOS
        tokens[1:] = decisions[:-1]
        x = self.token_embed(tokens) + Tensor(self._positions)
        memory = self._memory(packed.reshape(1, -1)).reshape(2, self.dim)
        hidden = self.decoder(x, memory)
        return self.head(hidden).reshape(self.n_recipes)

    def batched_logits(self, insights, decisions) -> Tensor:
        insights = np.asarray(insights, dtype=np.float64)
        decisions = np.asarray(decisions, dtype=np.int64)
        batch = insights.shape[0]
        tokens = np.empty((batch, self.n_recipes), dtype=np.int64)
        tokens[:, 0] = 2
        tokens[:, 1:] = decisions[:, :-1]
        x = self.token_embed(tokens) + Tensor(self._positions)
        memory = self._memory(insights)
        hidden = self.decoder(x, memory)
        return self.head(hidden).reshape(batch, self.n_recipes)


@dataclass
class MultiIntentionRecommender:
    """One policy serving many QoR intentions."""

    model: InsightAlignModel
    intentions: List[QoRIntention] = field(default_factory=list)

    @classmethod
    def train(
        cls,
        dataset: OfflineDataset,
        intentions: Sequence[QoRIntention],
        config: AlignmentConfig = AlignmentConfig(),
        verbose: bool = False,
    ) -> "MultiIntentionRecommender":
        """Margin-DPO over pairs drawn under every training intention."""
        if not intentions:
            raise TrainingError("need at least one intention")
        if len(dataset) == 0:
            raise TrainingError("cannot train on an empty dataset")
        model = IntentionConditionedModel(seed=config.seed)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)
        rng = derive_rng(config.seed, "multi-intention")

        # Pre-compute (conditioned insight, recipes, scores) per
        # (design, intention) context.
        contexts = []
        for intention in intentions:
            for design in dataset.designs():
                contexts.append((
                    conditioned_insight(dataset.insight_for(design), intention),
                    np.array([p.recipe_set for p in dataset.by_design(design)],
                             dtype=np.int64),
                    dataset.scores_for(design, intention),
                ))

        pairs_per_context = max(
            8, config.pairs_per_design // max(1, len(intentions))
        )
        for epoch in range(config.epochs):
            batch_i, batch_w, batch_l, batch_m = [], [], [], []
            for insight, recipes, scores in contexts:
                count = len(scores)
                idx_a = rng.integers(0, count, size=pairs_per_context)
                idx_b = rng.integers(0, count, size=pairs_per_context)
                for a, b in zip(idx_a, idx_b):
                    gap = scores[a] - scores[b]
                    if abs(gap) < config.min_score_gap:
                        continue
                    w, l = (a, b) if gap > 0 else (b, a)
                    batch_i.append(insight)
                    batch_w.append(recipes[w])
                    batch_l.append(recipes[l])
                    batch_m.append(config.lam * abs(gap))
            if not batch_m:
                raise TrainingError("no usable pairs across intentions")
            order = rng.permutation(len(batch_m))
            epoch_losses = []
            for start in range(0, len(order), config.batch_size):
                sel = order[start:start + config.batch_size]
                insights = np.stack([batch_i[k] for k in sel])
                winners = np.stack([batch_w[k] for k in sel])
                losers = np.stack([batch_l[k] for k in sel])
                margins = np.array([batch_m[k] for k in sel])
                logp_w = _batched_log_prob(model, insights, winners)
                logp_l = _batched_log_prob(model, insights, losers)
                hinge = (Tensor(margins) - (logp_w - logp_l)).clip_min(0.0).mean()
                # DPO's uniform-reference objective only constrains likelihood
                # *ratios*; a small behaviour-cloning anchor on the winners
                # pins the absolute distribution near winning recipe sets so
                # beam decoding emits realistic densities (standard DPO+SFT
                # mixing).
                anchor = -(logp_w.mean()) * 0.10
                loss = hinge + anchor
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
                epoch_losses.append(float(hinge.item()))
            if verbose:
                print(f"epoch {epoch}: loss {np.mean(epoch_losses):.4f}")
        return cls(model=model, intentions=list(intentions))

    # ------------------------------------------------------------------
    def recommend(
        self,
        insight: np.ndarray,
        intention: QoRIntention,
        k: int = 5,
    ) -> List[BeamCandidate]:
        """Top-K recipe sets for (design insight, intention)."""
        return beam_search(
            self.model, conditioned_insight(insight, intention), beam_width=k
        )
