"""Offline QoR-alignment training — Algorithm 1's ALIGNMENTTRAIN.

For every design in the offline archive, recipe-set pairs are compared by
compound QoR score and the policy is pushed (margin-based DPO, eq. 2) to
assign a log-likelihood gap of at least ``lambda * |dQoR|`` in favour of the
winner.  The paper iterates all pairs of all designs until convergence; with
~176 datapoints per design the full pair set is ~260k pairs per epoch, so
this implementation subsamples a fixed number of pairs per design per epoch
(uniformly over ordered pairs) — an unbiased stochastic version of the same
objective — and batches pairs through the model for speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.qor import QoRIntention
from repro.errors import TrainingError
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.observability import get_registry, get_tracer
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class AlignmentConfig:
    """Hyperparameters of the offline alignment phase.

    ``lam`` is the paper's margin hyperparameter (lambda = 2 in the
    experiments); the rest are conventional optimization knobs.
    """

    lam: float = 2.0
    learning_rate: float = 3e-3
    epochs: int = 20
    pairs_per_design: int = 200
    batch_size: int = 192
    grad_clip: float = 5.0
    min_score_gap: float = 0.02
    convergence_tolerance: float = 1e-4
    seed: int = 0
    # Crash-safety: when ``checkpoint_path`` is set, the trainer atomically
    # writes model/optimizer/RNG/history state there every
    # ``checkpoint_every`` epochs; ``resume_from`` restores such a file and
    # continues bit-identically (same seed + same data => same final
    # weights as an uninterrupted run).
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    resume_from: Optional[str] = None
    # Optional behaviour-cloning anchor on winners (DPO+SFT mixing).  The
    # paper's Algorithm 1 is pure margin-DPO (weight 0.0, the default);
    # because DPO's uniform-reference objective only constrains likelihood
    # *ratios*, the absolute distribution can drift toward very dense recipe
    # sets under beam decoding.  A small positive weight (e.g. 0.05-0.1)
    # pins recommendations near archive-like densities.
    bc_anchor_weight: float = 0.0


@dataclass
class AlignmentHistory:
    """Per-epoch training diagnostics.

    ``epoch_loss`` averages the (resampled) minibatch losses and is noisy
    across epochs; ``probe_loss`` re-evaluates one *fixed* pair sample each
    epoch and is the comparable convergence signal.
    """

    epoch_loss: List[float] = field(default_factory=list)
    epoch_pair_accuracy: List[float] = field(default_factory=list)
    probe_loss: List[float] = field(default_factory=list)

    @property
    def converged_epoch(self) -> int:
        return len(self.epoch_loss)


class AlignmentTrainer:
    """Trains an :class:`InsightAlignModel` on an offline archive."""

    def __init__(self, config: AlignmentConfig = AlignmentConfig()) -> None:
        self.config = config

    def train(
        self,
        dataset: OfflineDataset,
        intention: QoRIntention = QoRIntention(),
        model: Optional[InsightAlignModel] = None,
        verbose: bool = False,
    ) -> Tuple[InsightAlignModel, AlignmentHistory]:
        """Run ALIGNMENTTRAIN; returns the aligned policy and its history."""
        if len(dataset) == 0:
            raise TrainingError("cannot align on an empty dataset")
        cfg = self.config
        if cfg.checkpoint_every < 1:
            raise TrainingError(
                f"checkpoint_every must be >= 1, got {cfg.checkpoint_every}"
            )
        rng = derive_rng(cfg.seed, "alignment")
        if model is None:
            model = InsightAlignModel(seed=cfg.seed)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
        history = AlignmentHistory()

        per_design = self._prepare(dataset, intention)
        probe = self._epoch_batches(per_design, derive_rng(cfg.seed, "probe"))[0]
        previous_probe = None
        start_epoch = 0
        if cfg.resume_from:
            start_epoch = self._restore(model, optimizer, rng, history)
            previous_probe = (
                history.probe_loss[-1] if history.probe_loss else None
            )
        tracer = get_tracer()
        registry = get_registry()
        with tracer.span(
            "align.train",
            seed=cfg.seed,
            epochs=cfg.epochs,
            designs=len(per_design),
            start_epoch=start_epoch,
        ) as train_span:
            for epoch in range(start_epoch, cfg.epochs):
                epoch_started = time.perf_counter()
                with tracer.span("align.epoch", epoch=epoch) as epoch_span:
                    batches = self._epoch_batches(per_design, rng)
                    losses: List[float] = []
                    correct = 0
                    total = 0
                    for insights, winners, losers, margins in batches:
                        loss, batch_correct = self._step(
                            model, optimizer, insights, winners, losers, margins
                        )
                        losses.append(loss)
                        correct += batch_correct
                        total += len(margins)
                    epoch_loss = float(np.mean(losses)) if losses else 0.0
                    probe_loss = self._eval_loss(model, *probe)
                    history.epoch_loss.append(epoch_loss)
                    history.epoch_pair_accuracy.append(correct / max(1, total))
                    history.probe_loss.append(probe_loss)
                    epoch_span.set_attributes(
                        pairs=total,
                        epoch_loss=epoch_loss,
                        probe_loss=probe_loss,
                    )
                self._observe_epoch(
                    registry, history, total,
                    time.perf_counter() - epoch_started,
                )
                if verbose:
                    print(
                        f"epoch {epoch}: loss {epoch_loss:.4f} "
                        f"probe {probe_loss:.4f} "
                        f"pair-acc {history.epoch_pair_accuracy[-1]:.3f}"
                    )
                converged = (
                    previous_probe is not None
                    and abs(previous_probe - probe_loss)
                    < cfg.convergence_tolerance
                )
                previous_probe = probe_loss
                if cfg.checkpoint_path and (
                    converged
                    or (epoch + 1) % cfg.checkpoint_every == 0
                    or epoch + 1 == cfg.epochs
                ):
                    self._checkpoint(
                        model, optimizer, rng, history, epoch, converged
                    )
                if converged:
                    break
            train_span.set_attributes(
                epochs_run=history.converged_epoch,
                final_probe_loss=(
                    history.probe_loss[-1] if history.probe_loss else None
                ),
            )
        return model, history

    @staticmethod
    def _observe_epoch(registry, history, pairs, elapsed_s) -> None:
        """Publish one epoch's diagnostics to the metrics registry."""
        registry.counter(
            "alignment_epochs_total", "alignment epochs completed"
        ).inc()
        registry.gauge(
            "alignment_epoch_loss", "mean minibatch loss of the last epoch"
        ).set(history.epoch_loss[-1])
        registry.gauge(
            "alignment_probe_loss", "fixed-probe loss (convergence signal)"
        ).set(history.probe_loss[-1])
        registry.gauge(
            "alignment_pair_accuracy", "preference-pair accuracy"
        ).set(history.epoch_pair_accuracy[-1])
        if elapsed_s > 0:
            registry.histogram(
                "alignment_pairs_per_second", "training throughput"
            ).observe(pairs / elapsed_s)

    # ------------------------------------------------------------------
    def _checkpoint(self, model, optimizer, rng, history, epoch, converged):
        """Atomically persist everything resume needs (crash-safe)."""
        from repro.runtime.checkpoint import TrainingCheckpoint, save_checkpoint

        save_checkpoint(
            TrainingCheckpoint(
                kind="alignment",
                step=epoch,
                model_state=model.state_dict(),
                optimizer_state=optimizer.state_dict(),
                rng_state=rng.bit_generator.state,
                payload={
                    "epoch_loss": list(history.epoch_loss),
                    "epoch_pair_accuracy": list(history.epoch_pair_accuracy),
                    "probe_loss": list(history.probe_loss),
                    "converged": bool(converged),
                    "seed": self.config.seed,
                },
            ),
            self.config.checkpoint_path,
        )

    def _restore(self, model, optimizer, rng, history) -> int:
        """Load ``resume_from`` into the live objects; returns next epoch.

        Restoring model weights, Adam moments and the epoch RNG's
        bit-generator state at an epoch boundary makes the continued run
        bit-identical to one that never stopped (same seed, same data).
        """
        from repro.errors import CheckpointError
        from repro.runtime.checkpoint import load_checkpoint

        cfg = self.config
        checkpoint = load_checkpoint(cfg.resume_from, expected_kind="alignment")
        saved_seed = checkpoint.payload.get("seed")
        if saved_seed is not None and saved_seed != cfg.seed:
            raise CheckpointError(
                f"checkpoint was trained with seed {saved_seed}, "
                f"config has seed {cfg.seed}; resuming would diverge"
            )
        try:
            model.load_state_dict(checkpoint.model_state)
        except (KeyError, ValueError) as err:
            raise CheckpointError(
                f"checkpoint weights do not fit this model: {err}"
            ) from err
        optimizer.load_state_dict(checkpoint.optimizer_state)
        rng.bit_generator.state = checkpoint.rng_state
        history.epoch_loss[:] = checkpoint.payload.get("epoch_loss", [])
        history.epoch_pair_accuracy[:] = checkpoint.payload.get(
            "epoch_pair_accuracy", []
        )
        history.probe_loss[:] = checkpoint.payload.get("probe_loss", [])
        if checkpoint.payload.get("converged"):
            return cfg.epochs  # training already converged; skip the loop
        return checkpoint.step + 1

    def _eval_loss(self, model, insights, winners, losers, margins) -> float:
        """Margin-DPO loss on a fixed batch, no gradient step."""
        logp_w, logp_l = _fused_pair_log_probs(model, insights, winners, losers)
        hinge = (Tensor(margins) - (logp_w - logp_l)).clip_min(0.0)
        return float(hinge.mean().item())

    # ------------------------------------------------------------------
    def _prepare(self, dataset: OfflineDataset, intention: QoRIntention):
        """Per-design arrays: insight, recipe matrix, score vector."""
        per_design = {}
        for design in dataset.designs():
            points = dataset.by_design(design)
            recipe_matrix = np.array(
                [p.recipe_set for p in points], dtype=np.int64
            )
            scores = dataset.scores_for(design, intention)
            per_design[design] = (
                dataset.insight_for(design),
                recipe_matrix,
                scores,
            )
        return per_design

    def _epoch_batches(self, per_design, rng):
        """Sample ordered (winner, loser) pairs and chop into batches.

        Vectorized gather/mask construction.  The RNG draw order (two
        ``integers`` calls per design, then one ``permutation``) and every
        emitted value are bit-identical to the original per-pair Python
        loop, so checkpoints from either implementation resume identically.
        """
        cfg = self.config
        insight_blocks: List[np.ndarray] = []
        winner_blocks: List[np.ndarray] = []
        loser_blocks: List[np.ndarray] = []
        margin_blocks: List[np.ndarray] = []
        for design, (insight, recipes, scores) in per_design.items():
            count = len(scores)
            if count < 2:
                continue
            idx_i = rng.integers(0, count, size=cfg.pairs_per_design)
            idx_j = rng.integers(0, count, size=cfg.pairs_per_design)
            gap = scores[idx_i] - scores[idx_j]
            keep = np.abs(gap) >= cfg.min_score_gap
            if not keep.any():
                continue
            kept_i, kept_j, kept_gap = idx_i[keep], idx_j[keep], gap[keep]
            win = np.where(kept_gap > 0, kept_i, kept_j)
            lose = np.where(kept_gap > 0, kept_j, kept_i)
            insight_blocks.append(
                np.broadcast_to(insight, (len(win), insight.shape[0]))
            )
            winner_blocks.append(recipes[win])
            loser_blocks.append(recipes[lose])
            margin_blocks.append(cfg.lam * np.abs(kept_gap))
        if not margin_blocks:
            raise TrainingError(
                "no usable preference pairs (all QoR scores identical?)"
            )
        all_insights = np.concatenate(insight_blocks, axis=0)
        winners = np.concatenate(winner_blocks, axis=0)
        losers = np.concatenate(loser_blocks, axis=0)
        margins = np.concatenate(margin_blocks, axis=0)
        order = rng.permutation(len(margins))
        batches = []
        for start in range(0, len(order), cfg.batch_size):
            sel = order[start:start + cfg.batch_size]
            batches.append((
                all_insights[sel],
                winners[sel],
                losers[sel],
                margins[sel],
            ))
        return batches

    def _step(self, model, optimizer, insights, winners, losers, margins):
        """One batched margin-DPO gradient step; returns (loss, #correct)."""
        logp_w, logp_l = _fused_pair_log_probs(model, insights, winners, losers)
        gap = logp_w - logp_l
        hinge = (Tensor(margins) - gap).clip_min(0.0)
        loss = hinge.mean()
        if self.config.bc_anchor_weight > 0.0:
            loss = loss - logp_w.mean() * self.config.bc_anchor_weight
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), self.config.grad_clip)
        optimizer.step()
        correct = int((gap.numpy() > 0).sum())
        return float(hinge.mean().item()), correct


def _batched_log_prob(
    model: InsightAlignModel, insights: np.ndarray, decisions: np.ndarray
) -> Tensor:
    """Row-wise eq.-3 sequence log-likelihoods, shape ``(B,)``."""
    logits = model.batched_logits(insights, decisions)
    selected = Tensor(decisions.astype(np.float64))
    per_step = (
        selected * logits.log_sigmoid()
        + (1.0 - selected) * (-logits).log_sigmoid()
    )
    return per_step.sum(axis=-1)


def _fused_pair_log_probs(
    model: InsightAlignModel,
    insights: np.ndarray,
    winners: np.ndarray,
    losers: np.ndarray,
) -> Tuple[Tensor, Tensor]:
    """Winner and loser log-likelihoods from ONE transformer pass.

    The model's forward is row-independent, so stacking winners and losers
    into a single ``(2B, n)`` ``batched_logits`` call and splitting the
    result halves the transformer passes per training step while keeping
    the per-row values equal to the two-pass formulation (asserted in
    ``tests/test_alignment_fused.py``).
    """
    batch = winners.shape[0]
    stacked_insights = np.concatenate([insights, insights], axis=0)
    stacked_decisions = np.concatenate([winners, losers], axis=0)
    logp = _batched_log_prob(model, stacked_insights, stacked_decisions)
    return logp[:batch], logp[batch:]
