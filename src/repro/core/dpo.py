"""DPO and margin-based DPO losses — the paper's eq. (1) and eq. (2).

Standard DPO (eq. 1), with the uniform reference policy the paper adopts
(every sequence has identical reference likelihood, so the reference terms
cancel inside the difference):

    L_DPO = -log sigma( beta * (log pi(R_w|I) - log pi(R_l|I)) )

Margin-based DPO (eq. 2) scales the required log-likelihood gap with the
QoR gap.  Algorithm 1 (line 9) orders every pair winner-first before
evaluating the loss, which makes eq. 2 equivalent to the canonical hinge

    L_MDPO = max(0, lambda * |Q_i - Q_j|
                    - (log pi(R_w | I) - log pi(R_l | I)))

with (R_w, R_l) the better/worse recipe set.  We implement that ordered
form directly, so the loss is symmetric in how the caller passes the pair.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import InsightAlignModel
from repro.core.policy import sequence_log_prob
from repro.nn.tensor import Tensor


def dpo_loss(
    model: InsightAlignModel,
    insight: np.ndarray,
    winner: Sequence[int],
    loser: Sequence[int],
    beta: float = 1.0,
) -> Tensor:
    """Plain DPO with a uniform reference policy (eq. 1)."""
    log_w = sequence_log_prob(model, insight, winner)
    log_l = sequence_log_prob(model, insight, loser)
    return -((log_w - log_l) * beta).log_sigmoid()


def margin_dpo_loss(
    model: InsightAlignModel,
    insight: np.ndarray,
    recipe_i: Sequence[int],
    recipe_j: Sequence[int],
    qor_i: float,
    qor_j: float,
    lam: float = 2.0,
) -> Tensor:
    """Margin-based DPO (eq. 2, winner-first ordered form of Algorithm 1).

    Symmetric in (i, j): the pair is internally ordered by QoR.
    """
    if qor_i >= qor_j:
        winner, loser, margin = recipe_i, recipe_j, lam * (qor_i - qor_j)
    else:
        winner, loser, margin = recipe_j, recipe_i, lam * (qor_j - qor_i)
    log_w = sequence_log_prob(model, insight, winner)
    log_l = sequence_log_prob(model, insight, loser)
    hinge_arg = margin - (log_w - log_l)
    return hinge_arg.clip_min(0.0)


def margin_dpo_loss_value(
    model: InsightAlignModel,
    insight: np.ndarray,
    recipe_i: Sequence[int],
    recipe_j: Sequence[int],
    qor_i: float,
    qor_j: float,
    lam: float = 2.0,
) -> float:
    """Loss value without building gradients (for eval loops)."""
    return float(
        margin_dpo_loss(model, insight, recipe_i, recipe_j, qor_i, qor_j, lam).item()
    )
