"""High-level facade: the API a downstream user drives.

Typical usage::

    from repro import InsightAlign, build_offline_dataset

    dataset = build_offline_dataset(cache_path="archive.pkl")
    ia = InsightAlign.align_offline(dataset, holdout=("D4",))
    recs = ia.recommend(dataset.insight_for("D4"), k=5)   # zero-shot
    tuned = ia.fine_tune_online(dataset, "D4")            # closed loop
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alignment import AlignmentConfig, AlignmentHistory, AlignmentTrainer
from repro.core.beam import BeamCandidate, beam_search
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.online import OnlineConfig, OnlineFineTuner, OnlineResult
from repro.core.qor import QoRIntention
from repro.recipes.catalog import RecipeCatalog, default_catalog


@dataclass
class Recommendation:
    """A recommended recipe set, resolved to recipe names."""

    recipe_set: Tuple[int, ...]
    log_prob: float
    recipe_names: List[str] = field(default_factory=list)


class InsightAlign:
    """The full recommender: aligned model + catalog + intention."""

    def __init__(
        self,
        model: InsightAlignModel,
        intention: QoRIntention = QoRIntention(),
        catalog: Optional[RecipeCatalog] = None,
        history: Optional[AlignmentHistory] = None,
    ) -> None:
        self.model = model
        self.intention = intention
        self.catalog = catalog if catalog is not None else default_catalog()
        self.history = history

    # ------------------------------------------------------------------
    @classmethod
    def align_offline(
        cls,
        dataset: OfflineDataset,
        intention: QoRIntention = QoRIntention(),
        holdout: Sequence[str] = (),
        config: AlignmentConfig = AlignmentConfig(),
        verbose: bool = False,
    ) -> "InsightAlign":
        """Run Algorithm 1's offline alignment, excluding ``holdout`` designs."""
        train_designs = [d for d in dataset.designs() if d not in set(holdout)]
        train_set = dataset.restricted_to(train_designs)
        trainer = AlignmentTrainer(config)
        model, history = trainer.train(train_set, intention, verbose=verbose)
        return cls(model=model, intention=intention, history=history)

    # ------------------------------------------------------------------
    def recommend(
        self, insight: np.ndarray, k: int = 5
    ) -> List[Recommendation]:
        """Zero-shot top-K recipe sets for a (possibly unseen) design."""
        candidates: List[BeamCandidate] = beam_search(
            self.model, insight, beam_width=k
        )
        names = self.catalog.names()
        return [
            Recommendation(
                recipe_set=c.recipe_set,
                log_prob=c.log_prob,
                recipe_names=[
                    names[i] for i, bit in enumerate(c.recipe_set) if bit
                ],
            )
            for c in candidates
        ]

    def fine_tune_online(
        self,
        dataset: OfflineDataset,
        design: str,
        config: OnlineConfig = OnlineConfig(),
        verbose: bool = False,
    ) -> OnlineResult:
        """Closed-loop fine-tuning of this recommender on one design.

        Mutates ``self.model`` (the paper's 'the same model transitions into
        an online fine-tuning stage').  Clone the model first if the aligned
        policy must be preserved.
        """
        tuner = OnlineFineTuner(config)
        return tuner.run(
            self.model, dataset, design, self.intention, verbose=verbose
        )

    def clone(self) -> "InsightAlign":
        """Copy with independent weights (for per-design fine-tuning)."""
        return InsightAlign(
            model=self.model.clone(),
            intention=self.intention,
            catalog=self.catalog,
            history=self.history,
        )

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Atomically persist the full recommender state to an .npz archive.

        The archive carries the model weights and architecture, the QoR
        intention, the *catalog name ordering* (recipe ``i`` is the token
        decided at step ``i`` — a model is only meaningful against the
        catalog it was trained with), and the alignment history curves when
        present.  :meth:`load` restores all of it; see its docstring for
        the catalog-compatibility contract.
        """
        import numpy as np

        from repro.nn.serialization import atomic_savez

        state = self.model.state_dict()
        meta = {
            "__meta_n_recipes": np.array(self.model.n_recipes),
            "__meta_dim": np.array(self.model.dim),
            "__meta_insight_dims": np.array(self.model.insight_dims),
            "__meta_metrics": np.array(
                [(n, str(w), str(int(g))) for n, w, g in self.intention.metrics]
            ),
            "__meta_catalog_names": np.array(self.catalog.names()),
        }
        if self.history is not None:
            meta["__meta_history_epoch_loss"] = np.asarray(
                self.history.epoch_loss, dtype=np.float64
            )
            meta["__meta_history_pair_accuracy"] = np.asarray(
                self.history.epoch_pair_accuracy, dtype=np.float64
            )
            meta["__meta_history_probe_loss"] = np.asarray(
                self.history.probe_loss, dtype=np.float64
            )
        atomic_savez(path, **state, **meta)

    @classmethod
    def load(cls, path, catalog: Optional[RecipeCatalog] = None) -> "InsightAlign":
        """Restore a recommender saved by :meth:`save`.

        Contract: the returned facade recommends identically to the one
        that was saved — weights, intention, catalog ordering and training
        history all round-trip (``tests/test_recommender_io.py``).

        Recipes are code, not data, so the archive stores the catalog's
        *name ordering* rather than pickled recipe objects.  ``catalog``
        (default :func:`~repro.recipes.catalog.default_catalog`) supplies
        the recipe definitions; if its names disagree with the archived
        ordering the token positions the model learned no longer line up
        and loading fails with :class:`~repro.errors.ModelError` instead of
        silently mis-labelling recommendations.  Archives written before
        catalog metadata existed load against the provided catalog as-is.
        """
        import numpy as np

        from repro.core.model import InsightAlignModel
        from repro.core.qor import QoRIntention
        from repro.errors import ModelError

        with np.load(path) as archive:
            entries = {name: archive[name] for name in archive.files}
        model = InsightAlignModel(
            n_recipes=int(entries.pop("__meta_n_recipes")),
            dim=int(entries.pop("__meta_dim")),
            insight_dims=int(entries.pop("__meta_insight_dims")),
        )
        metrics = tuple(
            (str(name), float(weight), bool(int(maximize)))
            for name, weight, maximize in entries.pop("__meta_metrics")
        )
        catalog = catalog if catalog is not None else default_catalog()
        saved_names = entries.pop("__meta_catalog_names", None)
        if saved_names is not None:
            saved = [str(name) for name in saved_names]
            if saved != catalog.names():
                raise ModelError(
                    "catalog mismatch: archive was trained against "
                    f"{len(saved)} recipes starting {saved[:3]}, but the "
                    f"provided catalog orders {catalog.names()[:3]}; "
                    "recommendations would be mislabelled"
                )
        history = None
        epoch_loss = entries.pop("__meta_history_epoch_loss", None)
        pair_acc = entries.pop("__meta_history_pair_accuracy", None)
        probe = entries.pop("__meta_history_probe_loss", None)
        if epoch_loss is not None:
            history = AlignmentHistory(
                epoch_loss=[float(x) for x in epoch_loss],
                epoch_pair_accuracy=[float(x) for x in pair_acc],
                probe_loss=[float(x) for x in probe],
            )
        model.load_state_dict(entries)
        return cls(
            model=model,
            intention=QoRIntention(metrics=metrics),
            catalog=catalog,
            history=history,
        )
