"""High-level facade: the API a downstream user drives.

Typical usage::

    from repro import InsightAlign, build_offline_dataset

    dataset = build_offline_dataset(cache_path="archive.pkl")
    ia = InsightAlign.align_offline(dataset, holdout=("D4",))
    recs = ia.recommend(dataset.insight_for("D4"), k=5)   # zero-shot
    tuned = ia.fine_tune_online(dataset, "D4")            # closed loop
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alignment import AlignmentConfig, AlignmentHistory, AlignmentTrainer
from repro.core.beam import BeamCandidate, beam_search
from repro.core.dataset import OfflineDataset
from repro.core.model import InsightAlignModel
from repro.core.online import OnlineConfig, OnlineFineTuner, OnlineResult
from repro.core.qor import QoRIntention
from repro.recipes.catalog import RecipeCatalog, default_catalog


@dataclass
class Recommendation:
    """A recommended recipe set, resolved to recipe names."""

    recipe_set: Tuple[int, ...]
    log_prob: float
    recipe_names: List[str] = field(default_factory=list)


class InsightAlign:
    """The full recommender: aligned model + catalog + intention."""

    def __init__(
        self,
        model: InsightAlignModel,
        intention: QoRIntention = QoRIntention(),
        catalog: Optional[RecipeCatalog] = None,
        history: Optional[AlignmentHistory] = None,
    ) -> None:
        self.model = model
        self.intention = intention
        self.catalog = catalog if catalog is not None else default_catalog()
        self.history = history

    # ------------------------------------------------------------------
    @classmethod
    def align_offline(
        cls,
        dataset: OfflineDataset,
        intention: QoRIntention = QoRIntention(),
        holdout: Sequence[str] = (),
        config: AlignmentConfig = AlignmentConfig(),
        verbose: bool = False,
    ) -> "InsightAlign":
        """Run Algorithm 1's offline alignment, excluding ``holdout`` designs."""
        train_designs = [d for d in dataset.designs() if d not in set(holdout)]
        train_set = dataset.restricted_to(train_designs)
        trainer = AlignmentTrainer(config)
        model, history = trainer.train(train_set, intention, verbose=verbose)
        return cls(model=model, intention=intention, history=history)

    # ------------------------------------------------------------------
    def recommend(
        self, insight: np.ndarray, k: int = 5
    ) -> List[Recommendation]:
        """Zero-shot top-K recipe sets for a (possibly unseen) design."""
        candidates: List[BeamCandidate] = beam_search(
            self.model, insight, beam_width=k
        )
        names = self.catalog.names()
        return [
            Recommendation(
                recipe_set=c.recipe_set,
                log_prob=c.log_prob,
                recipe_names=[
                    names[i] for i, bit in enumerate(c.recipe_set) if bit
                ],
            )
            for c in candidates
        ]

    def fine_tune_online(
        self,
        dataset: OfflineDataset,
        design: str,
        config: OnlineConfig = OnlineConfig(),
        verbose: bool = False,
    ) -> OnlineResult:
        """Closed-loop fine-tuning of this recommender on one design.

        Mutates ``self.model`` (the paper's 'the same model transitions into
        an online fine-tuning stage').  Clone the model first if the aligned
        policy must be preserved.
        """
        tuner = OnlineFineTuner(config)
        return tuner.run(
            self.model, dataset, design, self.intention, verbose=verbose
        )

    def clone(self) -> "InsightAlign":
        """Copy with independent weights (for per-design fine-tuning)."""
        return InsightAlign(
            model=self.model.clone(),
            intention=self.intention,
            catalog=self.catalog,
            history=self.history,
        )

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Atomically persist weights + intention to an .npz archive."""
        import numpy as np

        from repro.nn.serialization import atomic_savez

        state = self.model.state_dict()
        meta = {
            "__meta_n_recipes": np.array(self.model.n_recipes),
            "__meta_dim": np.array(self.model.dim),
            "__meta_insight_dims": np.array(self.model.insight_dims),
            "__meta_metrics": np.array(
                [(n, str(w), str(int(g))) for n, w, g in self.intention.metrics]
            ),
        }
        atomic_savez(path, **state, **meta)

    @classmethod
    def load(cls, path) -> "InsightAlign":
        """Restore a recommender saved by :meth:`save`."""
        import numpy as np

        from repro.core.model import InsightAlignModel
        from repro.core.qor import QoRIntention

        with np.load(path) as archive:
            entries = {name: archive[name] for name in archive.files}
        model = InsightAlignModel(
            n_recipes=int(entries.pop("__meta_n_recipes")),
            dim=int(entries.pop("__meta_dim")),
            insight_dims=int(entries.pop("__meta_insight_dims")),
        )
        metrics = tuple(
            (str(name), float(weight), bool(int(maximize)))
            for name, weight, maximize in entries.pop("__meta_metrics")
        )
        model.load_state_dict(entries)
        return cls(model=model, intention=QoRIntention(metrics=metrics))
