"""The InsightAlign model — paper Table III, reproduced exactly.

| Layer                 | Type                   | In        | Out      |
|-----------------------|------------------------|-----------|----------|
| Decision Token Embed. | Embedding              | (40, 3)   | (40, 32) |
| Recipe Pos. Enc.      | Positional Encoding    | (40, 32)  | (40, 32) |
| Insight Embed.        | Linear x1              | (1, 72)   | (1, 32)  |
| Transformer Dec.      | Transformer Decoder x1 | (1,32)+(40,32) | (40, 1) |
| Probabilistic         | Sigmoid x40            | (40, 1)   | (40, 1)  |

Recipes are tokens decided autoregressively: the input at step ``t`` is the
embedding of the *previous* decision (SOS at t=0) plus the position-t recipe
encoding; cross attention injects the design-insight embedding; a sigmoid
head yields P(select recipe_t | decisions_<t, insight).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.insights.schema import INSIGHT_DIMS
from repro.nn.attention import TransformerDecoderLayer
from repro.nn.layers import Embedding, Linear, Module, positional_encoding
from repro.nn.tensor import Tensor

SOS_TOKEN = 2  # vocabulary: 0 = not selected, 1 = selected, 2 = SOS


class InsightAlignModel(Module):
    """Decoder-only recipe-sequence model conditioned on design insights.

    Args:
        n_recipes: Sequence length (40 in the paper).
        dim: Model width (32 in the paper).
        insight_dims: Insight vector width (72 in the paper).
        seed: Weight-initialization seed.
    """

    def __init__(
        self,
        n_recipes: int = 40,
        dim: int = 32,
        insight_dims: int = INSIGHT_DIMS,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_recipes < 1:
            raise ModelError(f"n_recipes must be positive, got {n_recipes}")
        self.n_recipes = n_recipes
        self.dim = dim
        self.insight_dims = insight_dims
        self.token_embed = self.add_child(
            "token_embed", Embedding(3, dim, seed=seed)
        )
        self.insight_embed = self.add_child(
            "insight_embed", Linear(insight_dims, dim, seed=seed + 1)
        )
        self.decoder = self.add_child(
            "decoder", TransformerDecoderLayer(dim, seed=seed + 2)
        )
        self.head = self.add_child("head", Linear(dim, 1, seed=seed + 3))
        # Fixed sinusoidal positional code identifying each recipe slot.
        self._positions = positional_encoding(n_recipes, dim)

    # ------------------------------------------------------------------
    def logits(
        self,
        insight: np.ndarray,
        decisions: Optional[np.ndarray] = None,
        prefix_length: Optional[int] = None,
    ) -> Tensor:
        """Selection logits for each recipe step.

        Args:
            insight: Insight vector, shape ``(insight_dims,)``.
            decisions: Teacher-forcing decisions in {0,1}, shape
                ``(n_recipes,)``.  Entries at and after ``prefix_length``
                are ignored (they sit behind the causal mask anyway).
                ``None`` is equivalent to all zeros with prefix_length=0.
            prefix_length: Number of decided steps; logits are returned for
                all positions, but only positions ``<= prefix_length`` are
                meaningful during incremental decoding.

        Returns:
            Tensor of shape ``(n_recipes,)`` — pre-sigmoid logits.
        """
        insight = np.asarray(insight, dtype=np.float64)
        if insight.shape != (self.insight_dims,):
            raise ModelError(
                f"insight shape {insight.shape}, expected ({self.insight_dims},)"
            )
        if decisions is None:
            decisions = np.zeros(self.n_recipes, dtype=np.int64)
        decisions = np.asarray(decisions, dtype=np.int64)
        if decisions.shape != (self.n_recipes,):
            raise ModelError(
                f"decisions shape {decisions.shape}, expected ({self.n_recipes},)"
            )
        if np.any((decisions != 0) & (decisions != 1)):
            raise ModelError("decisions must be binary")

        # Input token at step t is the decision at t-1; SOS at step 0.
        tokens = np.empty(self.n_recipes, dtype=np.int64)
        tokens[0] = SOS_TOKEN
        tokens[1:] = decisions[:-1]
        x = self.token_embed(tokens) + Tensor(self._positions)
        memory = self.insight_embed(Tensor(insight.reshape(1, -1)))
        hidden = self.decoder(x, memory)
        return self.head(hidden).reshape(self.n_recipes)

    def batched_logits(
        self,
        insights: np.ndarray,
        decisions: np.ndarray,
    ) -> Tensor:
        """Batched teacher-forced logits.

        Args:
            insights: ``(B, insight_dims)`` — one insight vector per row.
            decisions: ``(B, n_recipes)`` binary decisions per row.

        Returns:
            Tensor ``(B, n_recipes)`` of pre-sigmoid logits.  Equivalent to
            stacking :meth:`logits` over rows (verified by tests), but one
            tensor graph — the training loop's hot path.
        """
        insights = np.asarray(insights, dtype=np.float64)
        decisions = np.asarray(decisions, dtype=np.int64)
        if insights.ndim != 2 or insights.shape[1] != self.insight_dims:
            raise ModelError(f"insights shape {insights.shape} invalid")
        if decisions.shape != (insights.shape[0], self.n_recipes):
            raise ModelError(f"decisions shape {decisions.shape} invalid")
        batch = insights.shape[0]
        tokens = np.empty((batch, self.n_recipes), dtype=np.int64)
        tokens[:, 0] = SOS_TOKEN
        tokens[:, 1:] = decisions[:, :-1]
        x = self.token_embed(tokens) + Tensor(self._positions)
        memory = self.insight_embed(
            Tensor(insights.reshape(batch, 1, self.insight_dims))
        )
        hidden = self.decoder(x, memory)
        return self.head(hidden).reshape(batch, self.n_recipes)

    def memory_tokens(self, insights: np.ndarray) -> np.ndarray:
        """Cross-attention memory, ``(B, M, dim)`` — one token block per row.

        The base model conditions on a single insight-embedding token
        (``M = 1``); subclasses with richer conditioning (e.g. the
        intention-conditioned model) override this to emit more tokens.
        Grad-free consumers (the serving inference engine) call this once
        per request instead of re-deriving the embedding wiring.
        """
        insights = np.asarray(insights, dtype=np.float64)
        if insights.ndim != 2 or insights.shape[1] != self.insight_dims:
            raise ModelError(f"insights shape {insights.shape} invalid")
        batch = insights.shape[0]
        return self.insight_embed(
            Tensor(insights.reshape(batch, 1, self.insight_dims))
        ).numpy()

    def probabilities(
        self,
        insight: np.ndarray,
        decisions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """P(select recipe_t | decisions_<t, insight) for every t."""
        return self.logits(insight, decisions).sigmoid().numpy()

    def architecture_summary(self) -> dict:
        """Layer/shape audit used by the Table III bench."""
        return {
            "decision_token_embedding": {
                "type": "Embedding",
                "input": (self.n_recipes, 3),
                "output": (self.n_recipes, self.dim),
            },
            "recipe_positional_encoding": {
                "type": "PositionalEncoding",
                "input": (self.n_recipes, self.dim),
                "output": (self.n_recipes, self.dim),
            },
            "insight_embedding": {
                "type": "Linear x1",
                "input": (1, self.insight_dims),
                "output": (1, self.dim),
            },
            "transformer_decoder": {
                "type": "TransformerDecoder x1 (single head)",
                "input": ((1, self.dim), (self.n_recipes, self.dim)),
                "output": (self.n_recipes, 1),
            },
            "probabilistic": {
                "type": f"Sigmoid x{self.n_recipes}",
                "input": (self.n_recipes, 1),
                "output": (self.n_recipes, 1),
            },
            "parameter_count": sum(p.size for p in self.parameters()),
        }
