"""Sequence likelihoods via teacher forcing — the paper's eq. (3).

    log pi_phi(R | I) = sum_t log P(r_t | r_<t, I; phi)

One decoder forward pass under teacher forcing yields every conditional in
parallel (Fig. 4): position ``t`` of the causally-masked decoder sees
exactly ``r_<t`` (the inputs are the shifted decisions), so

    log P(r_t | ...) = r_t * logsigmoid(z_t) + (1 - r_t) * logsigmoid(-z_t).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import InsightAlignModel
from repro.nn.tensor import Tensor


def sequence_log_prob(
    model: InsightAlignModel,
    insight: np.ndarray,
    recipe_set: Sequence[int],
) -> Tensor:
    """Differentiable ``log pi(R | I)`` (autograd Tensor, scalar)."""
    decisions = np.asarray(recipe_set, dtype=np.int64)
    logits = model.logits(insight, decisions)
    selected = Tensor(decisions.astype(np.float64))
    log_p_one = logits.log_sigmoid()
    log_p_zero = (-logits).log_sigmoid()
    per_step = selected * log_p_one + (1.0 - selected) * log_p_zero
    return per_step.sum()


def sequence_log_prob_value(
    model: InsightAlignModel,
    insight: np.ndarray,
    recipe_set: Sequence[int],
) -> float:
    """Non-differentiable convenience wrapper (plain float)."""
    return float(sequence_log_prob(model, insight, recipe_set).item())


def step_log_probs(
    model: InsightAlignModel,
    insight: np.ndarray,
    recipe_set: Sequence[int],
) -> np.ndarray:
    """Per-step ``log P(r_t | r_<t, I)`` values, shape ``(n,)``."""
    decisions = np.asarray(recipe_set, dtype=np.int64)
    logits = model.logits(insight, decisions).numpy()
    log_one = -np.log1p(np.exp(-np.clip(logits, -60, 60)))
    log_zero = -np.log1p(np.exp(np.clip(logits, -60, 60)))
    return np.where(decisions == 1, log_one, log_zero)
