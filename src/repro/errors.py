"""Exception hierarchy for the InsightAlign reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """Raised for malformed netlists (dangling pins, duplicate names, ...)."""


class LibraryError(ReproError):
    """Raised when a cell type or technology node cannot be resolved."""


class FlowError(ReproError):
    """Raised when a physical-design flow stage fails or is misconfigured."""


class FlowTimeout(FlowError):
    """Raised when a flow run exceeds its per-run deadline (hung tool)."""


class FlowCrash(FlowError):
    """Raised when the flow tool dies with an unexpected exception."""


class CorruptQoR(FlowError):
    """Raised when a flow run returns NaN/inf metrics or a truncated
    trajectory (partial snapshot) instead of a usable QoR report."""


class WorkerCrash(FlowError):
    """Raised (or reported) when a flow job repeatedly killed the worker
    process running it and was quarantined as poison instead of being
    re-dispatched again."""


class WorkerPoolError(ReproError):
    """Raised when the supervised worker pool exhausts its respawn budget
    and serial degradation is disabled — the pool cannot keep workers
    alive and has been shut down."""


class RuntimeConfigError(ReproError):
    """Raised when a :class:`~repro.runtime.session.RuntimeConfig` (or the
    way a :class:`~repro.runtime.session.FlowSession` composes one) is
    invalid: bad worker counts, negative deadlines, conflicting injection
    options, and similar misconfiguration caught before any flow runs."""


class RecipeError(ReproError):
    """Raised for unknown recipes or malformed recipe sets."""


class InsightError(ReproError):
    """Raised when an insight vector does not match the published schema."""


class ModelError(ReproError):
    """Raised for model-architecture or shape violations."""


class TrainingError(ReproError):
    """Raised when alignment / fine-tuning receives unusable data."""


class CheckpointError(ReproError):
    """Raised for unreadable, incompatible or mismatched checkpoints."""


class ServingError(ReproError):
    """Base class for recommendation-service failures."""


class QueueFullError(ServingError):
    """Raised by admission control when the request queue is at capacity.

    Callers should back off and resubmit; the service sheds load instead of
    growing an unbounded backlog."""


class DeadlineExceededError(ServingError):
    """Raised when a request's deadline passed before it could be served."""


class OverloadedError(ServingError):
    """Raised by cluster admission control when outstanding work crossed
    the shed watermark.

    Unlike :class:`QueueFullError` (one service's bounded queue), this is
    the cluster-level signal: the request was rejected *immediately* at
    the gateway, before any queueing could burn its deadline.  Callers
    should back off and retry."""


class RegistryError(ServingError):
    """Raised for unknown model versions or activation without a model."""
