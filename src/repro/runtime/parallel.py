"""Parallel flow evaluation: process-pool batches + persistent QoR cache.

The expensive outer loop of the whole reproduction is the P&R tool: offline
archive construction runs ~176 recipe sets on each of 17 designs, and every
online fine-tuning iteration evaluates K fresh recipe sets.  This module
makes those batches concurrent without giving up any of the guarantees the
sequential path has:

- :class:`ParallelFlowExecutor` fans a batch of :class:`FlowJob`\\ s out over
  a process pool with warm worker reuse (one pool per executor, netlist
  cache pre-seeded per worker) while composing the existing
  :class:`~repro.runtime.executor.FlowExecutor` semantics per job —
  deadlines, bounded retries, and the typed
  :class:`~repro.errors.FlowTimeout` / :class:`~repro.errors.FlowCrash` /
  :class:`~repro.errors.CorruptQoR` taxonomy, all of which survive pickling
  across the pool boundary.
- **Determinism regardless of worker count or completion order.**  Every
  per-job randomness source (retry jitter, injected faults) is derived from
  the job's *batch index*, never from global call order, so a batch returns
  bit-identical :class:`~repro.flow.result.FlowResult`\\ s whether it runs
  on 1, 2 or 8 workers — including under a seeded
  :class:`~repro.runtime.parallel.FaultPlan`.
- :class:`QoRCache` persists successful results on disk keyed by
  ``(profile name, seed, canonical params hash)``, so repeated evaluations
  — online-loop dedup, benchmark reruns, cross-validation folds — are free.
  Writes are atomic (temp file + ``os.replace``); corrupt entries degrade
  to cache misses.

``workers=1`` (the default everywhere) runs the same per-job machinery
in-process: no pool, no pickling constraints, byte-for-byte the results the
pool produces.  See ``docs/performance.md`` for the end-to-end story.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.flow.parameters import FlowParameters
from repro.flow.result import FlowResult
from repro.observability import get_registry, get_tracer, new_lock
from repro.runtime.clock import VirtualClock
from repro.runtime.executor import FlowExecutor, FlowRunReport, RetryPolicy
from repro.runtime.faults import FaultInjector, FaultKind

# Version stamp baked into every cache key: bump when FlowResult layout or
# flow semantics change so stale entries can never masquerade as fresh runs.
QOR_CACHE_VERSION = 1


def _job_stream_seed(base: int, index: int) -> int:
    """Deterministic per-job seed: a pure function of (base seed, job index).

    Job-index keying — not call-order keying — is what makes a parallel
    batch reproducible at any worker count: job ``i`` draws the same jitter
    and fault schedule no matter which worker runs it or when.
    """
    acc = 1469598103934665603
    for part in (int(base) & 0xFFFFFFFFFFFFFFFF, int(index)):
        for _ in range(8):
            acc = ((acc ^ (part & 0xFF)) * 1099511628211) % (1 << 64)
            part >>= 8
    return acc


@dataclass(frozen=True)
class FlowJob:
    """One unit of flow work: a (design, parameters, seed) triple."""

    design: str
    params: FlowParameters = field(default_factory=FlowParameters)
    seed: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """Picklable recipe for per-job fault injection inside pool workers.

    A live :class:`~repro.runtime.faults.FaultInjector` wraps a closure and
    cannot cross the pool boundary; a plan can.  Each worker builds one
    injector *per job*, seeded from ``(seed, job index)``, paired with a
    private :class:`~repro.runtime.clock.VirtualClock` shared with that
    job's executor — so hangs overrun deadlines without real waiting and
    the fault schedule is identical at any worker count.
    """

    rate: float
    kinds: Optional[Tuple[FaultKind, ...]] = None
    seed: int = 0
    hang_s: float = 3600.0


@dataclass(frozen=True)
class _RunnerSettings:
    """Everything a worker needs to supervise one job (all picklable)."""

    flow_fn: Optional[Callable] = None  # None -> repro.flow.runner.run_flow
    policy: RetryPolicy = RetryPolicy()
    deadline_s: Optional[float] = None
    min_snapshots: Optional[int] = None
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None


def _execute_job(settings: _RunnerSettings, index: int,
                 job: FlowJob) -> FlowRunReport:
    """Run one supervised job, identically in-process or in a worker."""
    if settings.flow_fn is None:
        from repro.flow.runner import run_flow

        flow_fn = run_flow
    else:
        flow_fn = settings.flow_fn
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    if settings.fault_plan is not None:
        plan = settings.fault_plan
        virtual = VirtualClock()
        injector = FaultInjector(
            rate=plan.rate,
            kinds=plan.kinds,
            seed=_job_stream_seed(plan.seed, index),
            hang_s=plan.hang_s,
            clock=virtual,
        )
        flow_fn = injector.wrap(flow_fn)
        clock = virtual
        sleep = virtual.sleep
    executor = FlowExecutor(
        flow_fn,
        policy=settings.policy,
        deadline_s=settings.deadline_s,
        min_snapshots=settings.min_snapshots,
        clock=clock,
        sleep=sleep,
        seed=_job_stream_seed(settings.seed, index),
    )
    return executor.try_execute(job.design, job.params, seed=job.seed)


# ----------------------------------------------------------------------
# Pool worker plumbing (module-level so it pickles under any start method).
# ----------------------------------------------------------------------
_WORKER_SETTINGS: Optional[_RunnerSettings] = None


def _worker_init(settings: _RunnerSettings,
                 warm: Sequence[Tuple[str, int]]) -> None:
    """Pool initializer: stash settings, pre-seed the netlist cache."""
    global _WORKER_SETTINGS
    _WORKER_SETTINGS = settings
    if warm:
        from repro.flow.runner import (
            _fresh_netlist,
            netlist_cache_info,
            netlist_cache_limit,
        )
        from repro.netlist.profiles import get_profile

        # Warm the whole batch's working set even when it exceeds the
        # configured LRU cap; the cap (and eviction) is restored on exit
        # even if a profile lookup raises.
        with netlist_cache_limit(
            max(netlist_cache_info()["limit"], len(warm))
        ):
            for design, seed in warm:
                try:
                    _fresh_netlist(get_profile(design), seed)
                except ReproError:
                    # Warming is an optimization, never a failure mode;
                    # an unknown design will surface properly when its
                    # job runs.
                    pass


def _worker_run(task: Tuple[int, FlowJob]) -> Tuple[int, FlowRunReport]:
    index, job = task
    return index, _execute_job(_WORKER_SETTINGS, index, job)


# ----------------------------------------------------------------------
# Persistent QoR result cache
# ----------------------------------------------------------------------
def qor_cache_key(design: Union[str, object], params: FlowParameters,
                  seed: int) -> str:
    """Canonical cache key: sha256 over (profile name, seed, flat params).

    ``FlowParameters.flat`` enumerates every knob as ``section.field ->
    float``; JSON with sorted keys and ``repr``-exact floats makes the
    digest independent of dict ordering and stable across processes.
    """
    from repro.netlist.profiles import get_profile

    profile = get_profile(design) if isinstance(design, str) else design
    payload = {
        "v": QOR_CACHE_VERSION,
        "design": profile.name,
        "seed": int(seed),
        "params": params.flat(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class QoRCache:
    """On-disk cache of successful :class:`FlowResult`\\ s.

    Layout: ``<path>/<key[:2]>/<key>.pkl`` (sharded so no directory grows
    unbounded).  Entries are written atomically via the checkpoint layer's
    ``atomic_pickle``; a concurrent reader sees either the full entry or a
    miss, never a torn file.  Unreadable entries are deleted and reported
    as misses — the cache can only ever cost a re-run, not correctness.

    Hit/miss/eviction counters are guarded by the observability registry's
    lock primitive (several threads may share one cache) and mirrored into
    the process-wide ``qor_cache_*_total`` counter families.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        self._lock = new_lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".pkl")

    def _count(self, outcome: str) -> None:
        with self._lock:
            if outcome == "hit":
                self.hits += 1
            elif outcome == "miss":
                self.misses += 1
            else:
                self.evictions += 1
        get_registry().counter(f"qor_cache_{outcome}s_total").inc()

    def get(self, design, params: FlowParameters, seed: int
            ) -> Optional[FlowResult]:
        """The cached result, or ``None`` (miss / corrupt entry)."""
        entry = self._entry_path(qor_cache_key(design, params, seed))
        try:
            with open(entry, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self._count("miss")
            return None
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self._evict(entry)
            self._count("eviction")
            self._count("miss")
            return None
        if not isinstance(result, FlowResult):
            self._evict(entry)
            self._count("eviction")
            self._count("miss")
            return None
        self._count("hit")
        return result

    def put(self, design, params: FlowParameters, seed: int,
            result: FlowResult) -> None:
        """Atomically persist one successful result."""
        from repro.runtime.checkpoint import atomic_pickle

        entry = self._entry_path(qor_cache_key(design, params, seed))
        os.makedirs(os.path.dirname(entry), exist_ok=True)
        atomic_pickle(result, entry)

    @staticmethod
    def _evict(entry: str) -> None:
        try:
            os.remove(entry)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _entries(self) -> List[str]:
        found = []
        for shard in sorted(os.listdir(self.path)):
            shard_dir = os.path.join(self.path, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    found.append(os.path.join(shard_dir, name))
        return found

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            self._evict(entry)
            removed += 1
        return removed

    def info(self) -> Dict[str, object]:
        """Occupancy summary (mirrors ``netlist_cache_info``).

        Counter reads happen under the cache lock, so a snapshot taken
        while other threads serve hits/misses is internally consistent.
        """
        entries = self._entries()
        total = 0
        for entry in entries:
            try:
                total += os.path.getsize(entry)
            except OSError:
                pass
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        return {
            "path": self.path,
            "entries": len(entries),
            "bytes": total,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
        }


# ----------------------------------------------------------------------
# The parallel executor
# ----------------------------------------------------------------------
class ParallelFlowExecutor:
    """Evaluates batches of flow jobs concurrently, deterministically.

    Args:
        workers: Process count.  ``1`` (default) runs in-process — same
            per-job supervision, no pool, no pickling constraints.
        flow_fn: Tool invocation ``(design, params, seed=...) ->
            FlowResult``; must be picklable (module-level) when
            ``workers > 1``.  Defaults to :func:`repro.flow.runner.run_flow`.
        policy / deadline_s / min_snapshots: Per-job
            :class:`~repro.runtime.executor.FlowExecutor` supervision knobs.
        seed: Base seed for per-job retry-jitter streams.
        cache: A :class:`QoRCache`, a directory path to open one at, or
            ``None``.  Only successful, fault-free results are cached.
        fault_plan: Optional :class:`FaultPlan` rehearsing failures with a
            job-index-keyed schedule (disables the cache for the batch —
            injected outcomes must never be persisted as truth).
        start_method: Multiprocessing start method; default prefers
            ``fork`` (workers inherit the parent's warm netlist cache for
            free) and falls back to the platform default.
    """

    def __init__(
        self,
        workers: int = 1,
        flow_fn: Optional[Callable] = None,
        policy: RetryPolicy = RetryPolicy(),
        deadline_s: Optional[float] = None,
        min_snapshots: Optional[int] = None,
        seed: int = 0,
        cache: Union[QoRCache, os.PathLike, str, None] = None,
        fault_plan: Optional[FaultPlan] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        if cache is None or isinstance(cache, QoRCache):
            self.cache = cache
        else:
            self.cache = QoRCache(cache)
        self._settings = _RunnerSettings(
            flow_fn=flow_fn,
            policy=policy,
            deadline_s=deadline_s,
            min_snapshots=min_snapshots,
            seed=seed,
            fault_plan=fault_plan,
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self._pool = None
        self._counter_lock = new_lock()
        self.jobs_run = 0
        self.batches_run = 0

    # ------------------------------------------------------------------
    @property
    def _cache_enabled(self) -> bool:
        # A fault plan makes outcomes depend on the injector, not just the
        # (design, params, seed) key — never persist those as real QoR.
        return self.cache is not None and self._settings.fault_plan is None

    def run_batch(self, jobs: Sequence[FlowJob]) -> List[FlowRunReport]:
        """Evaluate ``jobs``; reports come back in submission order.

        Tool failures are captured per job inside each
        :class:`FlowRunReport` (never raised); non-flow
        :class:`~repro.errors.ReproError`\\ s — configuration bugs — still
        propagate, exactly as :meth:`FlowExecutor.try_execute` does.
        """
        jobs = [self._coerce(job) for job in jobs]
        registry = get_registry()
        with get_tracer().span(
            "flow.batch", jobs=len(jobs), workers=self.workers
        ) as batch_span:
            reports: List[Optional[FlowRunReport]] = [None] * len(jobs)
            pending: List[Tuple[int, FlowJob]] = []
            for index, job in enumerate(jobs):
                cached = (
                    self.cache.get(job.design, job.params, job.seed)
                    if self._cache_enabled else None
                )
                if cached is not None:
                    reports[index] = FlowRunReport(
                        design=str(job.design), result=cached, cached=True
                    )
                else:
                    pending.append((index, job))

            batch_span.set_attribute("cached", len(jobs) - len(pending))
            queue_depth = registry.gauge("flow_pool_queue_depth")
            if pending:
                queue_depth.set(len(pending))
                if self.workers == 1:
                    for index, job in pending:
                        reports[index] = _execute_job(
                            self._settings, index, job
                        )
                        queue_depth.dec()
                else:
                    pool = self._ensure_pool(jobs)
                    # Unordered completion + index reassembly: stragglers
                    # never stall finished results, and submission order is
                    # restored from the index, so completion order is
                    # unobservable.
                    for index, report in pool.imap_unordered(
                        _worker_run, pending, chunksize=1
                    ):
                        reports[index] = report
                        queue_depth.dec()
                if self._cache_enabled:
                    for index, job in pending:
                        report = reports[index]
                        if report is not None and report.ok:
                            self.cache.put(
                                job.design, job.params, job.seed,
                                report.result,
                            )
            failed = sum(1 for r in reports if r is not None and not r.ok)
            batch_span.set_attribute("failed", failed)
            registry.counter("flow_jobs_total").inc(len(jobs))
            registry.counter("flow_batches_total").inc()
            with self._counter_lock:
                self.jobs_run += len(jobs)
                self.batches_run += 1
        return reports  # type: ignore[return-value]

    def execute_batch(self, jobs: Sequence[FlowJob]) -> List[FlowResult]:
        """All-or-nothing batch: results in order, or the first job's
        terminal typed :class:`~repro.errors.FlowError` (by submission
        order, not completion order)."""
        reports = self.run_batch(jobs)
        for report in reports:
            if not report.ok:
                raise report.error
        return [report.result for report in reports]

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(job) -> FlowJob:
        if isinstance(job, FlowJob):
            return job
        if isinstance(job, tuple):
            return FlowJob(*job)
        raise TypeError(f"expected FlowJob or tuple, got {type(job).__name__}")

    def _ensure_pool(self, jobs: Sequence[FlowJob]):
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            warm = []
            seen = set()
            for job in jobs:
                key = (str(job.design), job.seed)
                if key not in seen:
                    seen.add(key)
                    warm.append(key)
            if self._start_method == "fork":
                # Generate each pristine netlist once in the parent; every
                # forked worker inherits the warm cache copy-on-write.
                _worker_init(self._settings, warm)
                warm = []
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(self._settings, warm),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelFlowExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    def stats(self) -> Dict[str, object]:
        """Executor counters plus cache occupancy (when one is attached)."""
        with self._counter_lock:
            jobs_run, batches_run = self.jobs_run, self.batches_run
        out: Dict[str, object] = {
            "workers": self.workers,
            "jobs_run": jobs_run,
            "batches_run": batches_run,
            "pool_live": self._pool is not None,
        }
        if self.cache is not None:
            out["cache"] = self.cache.info()
        return out
