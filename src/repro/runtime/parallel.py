"""Parallel flow evaluation: process-pool batches + persistent QoR cache.

The expensive outer loop of the whole reproduction is the P&R tool: offline
archive construction runs ~176 recipe sets on each of 17 designs, and every
online fine-tuning iteration evaluates K fresh recipe sets.  This module
makes those batches concurrent without giving up any of the guarantees the
sequential path has:

- :class:`ParallelFlowExecutor` fans a batch of :class:`FlowJob`\\ s out over
  a process pool with warm worker reuse (one pool per executor, netlist
  cache pre-seeded per worker) while composing the existing
  :class:`~repro.runtime.executor.FlowExecutor` semantics per job —
  deadlines, bounded retries, and the typed
  :class:`~repro.errors.FlowTimeout` / :class:`~repro.errors.FlowCrash` /
  :class:`~repro.errors.CorruptQoR` taxonomy, all of which survive pickling
  across the pool boundary.
- **Determinism regardless of worker count or completion order.**  Every
  per-job randomness source (retry jitter, injected faults) is derived from
  the job's *batch index*, never from global call order, so a batch returns
  bit-identical :class:`~repro.flow.result.FlowResult`\\ s whether it runs
  on 1, 2 or 8 workers — including under a seeded
  :class:`~repro.runtime.parallel.FaultPlan`.
- :class:`QoRCache` persists successful results on disk keyed by
  ``(profile name, seed, canonical params hash)``, so repeated evaluations
  — online-loop dedup, benchmark reruns, cross-validation folds — are free.
  Writes are atomic (temp file + ``os.replace``); corrupt entries degrade
  to cache misses.
- **Process-level fault tolerance.**  Workers are not pooled through a bare
  ``multiprocessing.Pool`` (whose ``imap_unordered`` deadlocks forever if a
  worker dies holding a job) but through a :class:`_WorkerSupervisor` that
  tracks the one in-flight job per worker, detects worker death (liveness +
  exit codes), respawns workers with the same warm-cache initialization,
  and re-dispatches the lost job under a bounded budget.  A job that kills
  its worker more than ``poison_retries`` times is quarantined as a typed
  :class:`~repro.errors.WorkerCrash` report; a job that wedges past
  ``watchdog_s`` wall-clock seconds gets its worker killed and surfaces as
  a typed :class:`~repro.errors.FlowTimeout`; and when the respawn budget
  (``max_respawns``) runs dry the batch degrades gracefully to supervised
  in-process serial execution (or raises
  :class:`~repro.errors.WorkerPoolError` when ``degrade_to_serial`` is
  off).  Re-dispatch seeds are keyed by ``(job index, dispatch count)``, so
  a re-dispatched job reproduces the serial run bit-for-bit.

``workers=1`` (the default everywhere) runs the same per-job machinery
in-process: no pool, no pickling constraints, byte-for-byte the results the
pool produces — including the poison/watchdog accounting, driven by
:class:`~repro.runtime.faults.SimulatedWorkerDeath` instead of real process
death.  See ``docs/performance.md`` for the end-to-end story and
``docs/robustness.md`` for the supervision design.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import (
    FlowTimeout,
    ReproError,
    WorkerCrash,
    WorkerPoolError,
)
from repro.flow.parameters import FlowParameters
from repro.flow.result import FlowResult
from repro.observability import get_registry, get_tracer, new_lock
from repro.runtime.clock import VirtualClock
from repro.runtime.executor import (
    FlowAttempt,
    FlowExecutor,
    FlowRunReport,
    RetryPolicy,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultKind,
    SimulatedWorkerDeath,
    mark_pool_worker,
)

# Version stamp baked into every cache key: bump when FlowResult layout or
# flow semantics change so stale entries can never masquerade as fresh runs.
QOR_CACHE_VERSION = 1


def _job_stream_seed(base: int, index: int) -> int:
    """Deterministic per-job seed: a pure function of (base seed, job index).

    Job-index keying — not call-order keying — is what makes a parallel
    batch reproducible at any worker count: job ``i`` draws the same jitter
    and fault schedule no matter which worker runs it or when.
    """
    acc = 1469598103934665603
    for part in (int(base) & 0xFFFFFFFFFFFFFFFF, int(index)):
        for _ in range(8):
            acc = ((acc ^ (part & 0xFF)) * 1099511628211) % (1 << 64)
            part >>= 8
    return acc


@dataclass(frozen=True)
class FlowJob:
    """One unit of flow work: a (design, parameters, seed) triple."""

    design: str
    params: FlowParameters = field(default_factory=FlowParameters)
    seed: int = 0


@dataclass(frozen=True)
class _JobGroup:
    """A stack of compatible jobs dispatched as one batched evaluation.

    Members share a (profile, seed) pair — one pristine netlist — and
    differ only in parameters, so ``run_flow_batch`` can evaluate them as
    lanes of one compiled design.  The group travels through the supervisor
    as a single task keyed by its first member's batch index.
    """

    jobs: Tuple[Tuple[int, FlowJob], ...]

    @property
    def index(self) -> int:
        return self.jobs[0][0]

    def __len__(self) -> int:
        return len(self.jobs)


class _GroupResult:
    """Envelope for a batched dispatch: one report per member job, plus
    the stacked kernels' lane/frozen step counters (so padding waste is
    observable even when the group ran inside a pool worker)."""

    __slots__ = ("reports", "stats")

    def __init__(self, reports: List[Tuple[int, FlowRunReport]],
                 stats: Optional[Dict[str, int]] = None) -> None:
        self.reports = reports
        self.stats = stats or {}


@dataclass(frozen=True)
class FaultPlan:
    """Picklable recipe for per-job fault injection inside pool workers.

    A live :class:`~repro.runtime.faults.FaultInjector` wraps a closure and
    cannot cross the pool boundary; a plan can.  Each worker builds one
    injector *per job*, seeded from ``(seed, job index)``, paired with a
    private :class:`~repro.runtime.clock.VirtualClock` shared with that
    job's executor — so hangs overrun deadlines without real waiting and
    the fault schedule is identical at any worker count.
    """

    rate: float
    kinds: Optional[Tuple[FaultKind, ...]] = None
    seed: int = 0
    hang_s: float = 3600.0
    stall_s: float = 30.0


@dataclass(frozen=True)
class _RunnerSettings:
    """Everything a worker needs to supervise one job (all picklable)."""

    flow_fn: Optional[Callable] = None  # None -> repro.flow.runner.run_flow
    policy: RetryPolicy = RetryPolicy()
    deadline_s: Optional[float] = None
    min_snapshots: Optional[int] = None
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None


def _execute_job(settings: _RunnerSettings, index: int,
                 job: FlowJob, dispatch: int = 0) -> FlowRunReport:
    """Run one supervised job, identically in-process or in a worker.

    ``dispatch`` counts how many times this job's worker has already died
    (0 on first dispatch).  It feeds the fault-stream seed so a
    re-dispatched job draws a *fresh* schedule — a job that was killed by
    chance can survive its re-dispatch — while dispatch 0 reproduces the
    exact pre-supervision schedules.  Both the pool supervisor and the
    serial path key on the same ``(index, dispatch)`` pair, which is what
    makes re-dispatched results bit-identical to the workers=1 run.
    """
    if settings.flow_fn is None:
        from repro.flow.runner import run_flow

        flow_fn = run_flow
    else:
        flow_fn = settings.flow_fn
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    if settings.fault_plan is not None:
        plan = settings.fault_plan
        virtual = VirtualClock()
        fault_seed = _job_stream_seed(plan.seed, index)
        if dispatch:
            fault_seed = _job_stream_seed(fault_seed, dispatch)
        injector = FaultInjector(
            rate=plan.rate,
            kinds=plan.kinds,
            seed=fault_seed,
            hang_s=plan.hang_s,
            stall_s=plan.stall_s,
            clock=virtual,
        )
        flow_fn = injector.wrap(flow_fn)
        clock = virtual
        sleep = virtual.sleep
    executor = FlowExecutor(
        flow_fn,
        policy=settings.policy,
        deadline_s=settings.deadline_s,
        min_snapshots=settings.min_snapshots,
        clock=clock,
        sleep=sleep,
        seed=_job_stream_seed(settings.seed, index),
    )
    return executor.try_execute(job.design, job.params, seed=job.seed)


def _execute_group(settings: _RunnerSettings, group: _JobGroup,
                   dispatch: int = 0,
                   stats: Optional[Dict[str, int]] = None) -> _GroupResult:
    """Run one compatible job group through the stacked batch pipeline.

    The batch kernels are bit-identical to the scalar flow, so on *any*
    failure inside the stacked evaluation the whole group is re-run through
    the per-job scalar supervision path, which deterministically reproduces
    the exact per-job outcome — including each member's typed error and
    retry schedule.  Success reports carry one zero-error attempt whose
    elapsed time is the group wall clock amortized over its lanes.
    """
    from repro.flow.batch_runner import run_flow_batch

    local: Dict[str, int] = {}
    start = time.monotonic()
    try:
        results = run_flow_batch(
            [(job.design, job.params, job.seed) for _, job in group.jobs],
            stats=local,
        )
        if settings.min_snapshots is not None:
            from repro.errors import CorruptQoR

            for result in results:
                if len(result.snapshots) < settings.min_snapshots:
                    raise CorruptQoR(
                        f"flow run on {result.design} returned only "
                        f"{len(result.snapshots)} stage snapshots "
                        f"(expected >= {settings.min_snapshots}): "
                        f"partial report"
                    )
    except (KeyboardInterrupt, SystemExit, SimulatedWorkerDeath):
        raise
    except Exception:  # noqa: BLE001 - scalar path reproduces the outcome
        return _GroupResult([
            (index, _execute_job(settings, index, job, dispatch))
            for index, job in group.jobs
        ])
    if stats is not None:
        for key, value in local.items():
            stats[key] = stats.get(key, 0) + value
    elapsed = (time.monotonic() - start) / max(1, len(results))
    return _GroupResult([
        (index, FlowRunReport(
            design=str(job.design),
            result=result,
            attempts=[FlowAttempt(index=0, error=None, elapsed_s=elapsed)],
        ))
        for (index, job), result in zip(group.jobs, results)
    ], stats=local)


# ----------------------------------------------------------------------
# Pool worker plumbing (module-level so it pickles under any start method).
# ----------------------------------------------------------------------
_WORKER_SETTINGS: Optional[_RunnerSettings] = None


def _worker_init(settings: _RunnerSettings,
                 warm: Sequence[Tuple[str, int]]) -> None:
    """Pool initializer: stash settings, pre-seed the netlist cache."""
    global _WORKER_SETTINGS
    _WORKER_SETTINGS = settings
    if warm:
        from repro.flow.runner import (
            _fresh_netlist,
            netlist_cache_info,
            netlist_cache_limit,
        )
        from repro.netlist.profiles import get_profile

        # Warm the whole batch's working set even when it exceeds the
        # configured LRU cap; the cap (and eviction) is restored on exit
        # even if a profile lookup raises.
        with netlist_cache_limit(
            max(netlist_cache_info()["limit"], len(warm))
        ):
            for design, seed in warm:
                try:
                    _fresh_netlist(get_profile(design), seed)
                except ReproError:
                    # Warming is an optimization, never a failure mode;
                    # an unknown design will surface properly when its
                    # job runs.
                    pass


class _RemoteError:
    """Envelope for a non-flow exception raised inside a worker.

    Configuration bugs (:class:`~repro.errors.ReproError` outside the flow
    taxonomy) must propagate to the caller, not be absorbed into reports or
    mistaken for worker death — so the worker catches them, ships them back
    over the result queue, and the supervisor re-raises in the parent.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def _supervised_worker(task_queue, result_conn,
                       settings: _RunnerSettings,
                       warm: Sequence[Tuple[str, int]]) -> None:
    """Main of one supervised pool worker.

    Marks the process as a pool worker (so ``WORKER_KILL`` faults die for
    real), performs the same warm-cache initialization as the original
    pool initializer, then serves ``(epoch, index, job, dispatch)`` tasks
    until the ``None`` shutdown sentinel arrives.  Every completion —
    report or shipped exception — is one synchronous ``result_conn.send``
    over a pipe *private to this worker*: no feeder thread and no lock
    shared with other processes, so a worker SIGKILL'd (or ``os._exit``-ed
    by a ``WORKER_KILL`` fault) at any instant can neither lose a result
    it already sent nor wedge its siblings' result channels.  A worker
    that dies mid-job simply never answers — exactly the signal the
    supervisor watches for.
    """
    mark_pool_worker()
    _worker_init(settings, warm)
    while True:
        task = task_queue.get()
        if task is None:
            return
        epoch, index, job, dispatch = task
        try:
            if isinstance(job, _JobGroup):
                payload: object = _execute_group(settings, job, dispatch)
            else:
                payload = _execute_job(settings, index, job, dispatch)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as err:  # noqa: BLE001 - shipped to the parent
            payload = _RemoteError(err)
        result_conn.send((epoch, index, payload))


def _task_members(index: int, job) -> List[Tuple[int, FlowJob]]:
    """The logical (index, job) members of one dispatch unit."""
    if isinstance(job, _JobGroup):
        return list(job.jobs)
    return [(index, job)]


def _quarantine_report(job: FlowJob, kills: int) -> FlowRunReport:
    """The typed report for a poison job (killed its worker ``kills``
    times).  Built identically by the pool supervisor and the serial
    path, so quarantine outcomes are worker-count invariant."""
    error = WorkerCrash(
        f"flow job on {job.design} killed its worker {kills} time(s); "
        f"quarantined as poison"
    )
    return FlowRunReport(
        design=str(job.design),
        attempts=[FlowAttempt(index=kills - 1, error=error, elapsed_s=0.0)],
    )


def _watchdog_report(job: FlowJob, watchdog_s: float) -> FlowRunReport:
    """The typed report for a stalled job whose worker the watchdog shot.

    Deliberately carries the watchdog budget, not the measured wall time,
    so the serial and pool paths produce byte-identical reports."""
    error = FlowTimeout(
        f"flow job on {job.design} stalled past the {watchdog_s:.3g}s "
        f"supervision watchdog; worker killed and replaced"
    )
    return FlowRunReport(
        design=str(job.design),
        attempts=[FlowAttempt(index=0, error=error, elapsed_s=watchdog_s)],
    )


class _PoolMember:
    """One supervised worker: process + private task/result channels +
    the in-flight job."""

    __slots__ = ("id", "process", "task_queue", "result_recv",
                 "inflight", "dispatched_at")

    def __init__(self, worker_id: int, process, task_queue,
                 result_recv) -> None:
        self.id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.result_recv = result_recv
        # (index, job, dispatch) currently running on this worker, or None.
        self.inflight: Optional[Tuple[int, FlowJob, int]] = None
        self.dispatched_at = 0.0


class _WorkerSupervisor:
    """Keeps ``workers`` processes alive and a batch flowing through them.

    The contract with :meth:`ParallelFlowExecutor.run_batch`:

    - :meth:`run` yields ``(index, report)`` for *every* task it was given,
      exactly once, regardless of worker deaths, stalls, or degradation —
      the batch can never hang on a lost job.
    - Non-flow exceptions shipped back from a worker are re-raised.
    - Worker death with a job in flight → the job is re-dispatched with an
      incremented dispatch count, up to ``poison_retries`` times, then
      quarantined as a :class:`~repro.errors.WorkerCrash` report.
    - A job in flight longer than ``watchdog_s`` → its worker is killed and
      the job surfaces as a :class:`~repro.errors.FlowTimeout` report.
    - Each death/kill consumes one respawn from ``max_respawns``; when the
      budget is gone the pool shuts down and the rest of the batch runs
      through ``run_inprocess`` (the executor's serial supervision), or
      :class:`~repro.errors.WorkerPoolError` is raised when
      ``degrade_to_serial`` is off.
    """

    POLL_S = 0.02

    def __init__(
        self,
        context,
        workers: int,
        settings: _RunnerSettings,
        warm: Sequence[Tuple[str, int]],
        max_respawns: int,
        poison_retries: int,
        watchdog_s: Optional[float],
        degrade_to_serial: bool,
        run_inprocess: Callable[[int, FlowJob, int], FlowRunReport],
        on_restart: Callable[[int, Optional[int], int], None],
        on_redispatch: Callable[[], None],
        on_poison: Callable[[], None],
        on_degrade: Callable[[], None],
        batch_stats: Optional[Dict[str, int]] = None,
    ) -> None:
        self._ctx = context
        self._settings = settings
        self._warm = warm
        self.workers = int(workers)
        self.max_respawns = int(max_respawns)
        self.poison_retries = int(poison_retries)
        self.watchdog_s = watchdog_s
        self.degrade_to_serial = bool(degrade_to_serial)
        self._run_inprocess = run_inprocess
        self._on_restart = on_restart
        self._on_redispatch = on_redispatch
        self._on_poison = on_poison
        self._on_degrade = on_degrade
        self._batch_stats = batch_stats
        self._epoch = 0
        self._next_id = 0
        self.respawns = 0
        self.degraded = False
        self._members: Dict[int, _PoolMember] = {}
        for _ in range(self.workers):
            self._spawn()
        self._update_live_gauge()

    # -- membership ----------------------------------------------------
    def _spawn(self) -> _PoolMember:
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self._ctx.SimpleQueue()
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(task_queue, result_send, self._settings, self._warm),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the send end: the worker now holds the
        # only writer, so worker death surfaces as EOF on the recv end.
        result_send.close()
        member = _PoolMember(worker_id, process, task_queue, result_recv)
        self._members[worker_id] = member
        return member

    def _discard(self, member: _PoolMember, kill: bool = False) -> None:
        self._members.pop(member.id, None)
        if kill and member.process.is_alive():
            member.process.kill()
        member.process.join()
        try:
            member.result_recv.close()
        except OSError:
            pass

    def live_count(self) -> int:
        return sum(
            1 for m in self._members.values() if m.process.is_alive()
        )

    def _update_live_gauge(self) -> None:
        get_registry().gauge("flow_workers_live").set(self.live_count())

    def _respawn_or_degrade(self) -> bool:
        """Replace one dead/killed worker; False when the budget is dry."""
        if self.respawns >= self.max_respawns:
            return False
        self.respawns += 1
        self._spawn()
        self._update_live_gauge()
        return True

    # -- the supervision loop ------------------------------------------
    def run(
        self, tasks: Sequence[Tuple[int, FlowJob]]
    ) -> Iterator[Tuple[int, FlowRunReport]]:
        """Drive one batch; yields ``(index, report)`` as jobs finish."""
        self._epoch += 1
        epoch = self._epoch
        backlog: Deque[Tuple[int, FlowJob, int]] = deque(
            (index, job, 0) for index, job in tasks
        )
        kills: Dict[int, int] = {}
        done: Set[int] = set()
        # A _JobGroup task is one dispatch unit but several logical jobs.
        total = sum(
            len(job) if isinstance(job, _JobGroup) else 1
            for _, job in tasks
        )
        finished = 0
        while finished < total:
            if self.degraded or not self._members:
                for item in self._degrade(backlog, kills):
                    done.add(item[0])
                    finished += 1
                    yield item
                continue
            # Dispatch: every idle worker gets the next backlog task.
            for member in self._members.values():
                if member.inflight is None and backlog:
                    index, job, dispatch = backlog.popleft()
                    member.task_queue.put((epoch, index, job, dispatch))
                    member.inflight = (index, job, dispatch)
                    member.dispatched_at = time.monotonic()
            # Collect: block briefly, then drain whatever else arrived.
            for worker_id, index, payload in self._collect(epoch, done):
                member = self._members.get(worker_id)
                if member is not None and member.inflight is not None \
                        and member.inflight[0] == index:
                    member.inflight = None
                if isinstance(payload, _RemoteError):
                    raise payload.error
                if isinstance(payload, _GroupResult):
                    if self._batch_stats is not None:
                        for key, value in payload.stats.items():
                            self._batch_stats[key] = (
                                self._batch_stats.get(key, 0) + value
                            )
                    done.add(index)
                    for job_index, report in payload.reports:
                        done.add(job_index)
                        finished += 1
                        yield job_index, report
                else:
                    done.add(index)
                    finished += 1
                    yield index, payload
            # Watchdog: kill workers stuck past the wall-clock budget.
            if self.watchdog_s is not None:
                now = time.monotonic()
                for member in list(self._members.values()):
                    if member.inflight is None:
                        continue
                    if now - member.dispatched_at <= self.watchdog_s:
                        continue
                    index, job, _ = member.inflight
                    self._discard(member, kill=True)
                    if self._respawn_or_degrade():
                        self._on_restart(member.id,
                                         member.process.exitcode, index)
                    self._update_live_gauge()
                    if index not in done:
                        done.add(index)
                        for job_index, member_job in _task_members(index, job):
                            done.add(job_index)
                            finished += 1
                            yield job_index, _watchdog_report(
                                member_job, self.watchdog_s
                            )
            # Liveness: a dead worker's in-flight job was lost with it.
            for member in list(self._members.values()):
                if member.process.is_alive():
                    continue
                index, job, dispatch = (
                    member.inflight if member.inflight is not None
                    else (None, None, 0)
                )
                self._discard(member)
                if self._respawn_or_degrade():
                    self._on_restart(member.id, member.process.exitcode,
                                     index)
                self._update_live_gauge()
                if index is None or index in done:
                    continue
                kills[index] = kills.get(index, 0) + 1
                if kills[index] > self.poison_retries:
                    self._on_poison()
                    done.add(index)
                    for job_index, member_job in _task_members(index, job):
                        done.add(job_index)
                        finished += 1
                        yield job_index, _quarantine_report(
                            member_job, kills[index]
                        )
                else:
                    self._on_redispatch()
                    backlog.appendleft((index, job, kills[index]))

    def _collect(
        self, epoch: int, done: Set[int]
    ) -> List[Tuple[int, int, object]]:
        """Every result currently available (one brief blocking wait).

        Waits on each member's private result pipe.  A dead worker's pipe
        is drained too (its last ``send`` completed before it died, so the
        bytes are intact) before EOF surfaces — results are never lost to
        a death that happened after completion.
        """
        out: List[Tuple[int, int, object]] = []
        by_conn = {
            member.result_recv: member for member in self._members.values()
        }
        if not by_conn:
            return out
        ready = multiprocessing.connection.wait(
            list(by_conn), timeout=self.POLL_S
        )
        for conn in ready:
            member = by_conn[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    item = conn.recv()
                except (EOFError, OSError):
                    break  # dead worker; the liveness pass handles it
                item_epoch, index, payload = item
                if item_epoch == epoch and index not in done:
                    out.append((member.id, index, payload))
        return out

    def _degrade(
        self,
        backlog: Deque[Tuple[int, FlowJob, int]],
        kills: Dict[int, int],
    ) -> Iterator[Tuple[int, FlowRunReport]]:
        """Respawn budget is gone: recover in-flight jobs, kill the pool,
        and run everything left through the serial supervision path."""
        if not self.degraded:
            self.degraded = True
            self._on_degrade()
            for member in list(self._members.values()):
                if member.inflight is not None:
                    backlog.appendleft(member.inflight)
                self._discard(member, kill=True)
            self._update_live_gauge()
        if not self.degrade_to_serial:
            raise WorkerPoolError(
                f"worker pool exhausted its respawn budget "
                f"({self.max_respawns}) and degrade_to_serial is off; "
                f"{len(backlog)} job(s) unfinished"
            )
        while backlog:
            index, job, _ = backlog.popleft()
            # Groups degrade to their scalar members: the batch kernels are
            # bit-identical, so the serial path reproduces each outcome.
            for job_index, member_job in _task_members(index, job):
                yield job_index, self._run_inprocess(
                    job_index, member_job, kills.get(index, 0)
                )

    # -- shutdown ------------------------------------------------------
    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Graceful stop: sentinel + bounded join, then kill stragglers.

        The bounded wait lets idle workers exit cleanly (flushing any
        in-progress teardown) without letting a wedged worker block
        shutdown forever.
        """
        for member in self._members.values():
            if member.process.is_alive():
                try:
                    member.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout_s
        for member in self._members.values():
            member.process.join(max(0.0, deadline - time.monotonic()))
        for member in self._members.values():
            if member.process.is_alive():
                member.process.kill()
                member.process.join()
            try:
                member.result_recv.close()
            except OSError:
                pass
        self._members.clear()
        self._update_live_gauge()


# ----------------------------------------------------------------------
# Persistent QoR result cache
# ----------------------------------------------------------------------
def qor_cache_key(design: Union[str, object], params: FlowParameters,
                  seed: int) -> str:
    """Canonical cache key: sha256 over (profile name, seed, flat params).

    ``FlowParameters.flat`` enumerates every knob as ``section.field ->
    float``; JSON with sorted keys and ``repr``-exact floats makes the
    digest independent of dict ordering and stable across processes.
    """
    from repro.netlist.profiles import get_profile

    profile = get_profile(design) if isinstance(design, str) else design
    payload = {
        "v": QOR_CACHE_VERSION,
        "design": profile.name,
        "seed": int(seed),
        "params": params.flat(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class QoRCache:
    """On-disk cache of successful :class:`FlowResult`\\ s.

    Layout: ``<path>/<key[:2]>/<key>.pkl`` (sharded so no directory grows
    unbounded).  Entries are written atomically via the checkpoint layer's
    ``atomic_pickle``; a concurrent reader sees either the full entry or a
    miss, never a torn file.  Unreadable entries are deleted and reported
    as misses — the cache can only ever cost a re-run, not correctness.

    Hit/miss/eviction counters are guarded by the observability registry's
    lock primitive (several threads may share one cache) and mirrored into
    the process-wide ``qor_cache_*_total`` counter families.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        self._lock = new_lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".pkl")

    def _count(self, outcome: str) -> None:
        with self._lock:
            if outcome == "hit":
                self.hits += 1
            elif outcome == "miss":
                self.misses += 1
            else:
                self.evictions += 1
        get_registry().counter(f"qor_cache_{outcome}s_total").inc()

    def get(self, design, params: FlowParameters, seed: int
            ) -> Optional[FlowResult]:
        """The cached result, or ``None`` (miss / corrupt entry)."""
        entry = self._entry_path(qor_cache_key(design, params, seed))
        try:
            with open(entry, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self._count("miss")
            return None
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self._evict(entry)
            self._count("eviction")
            self._count("miss")
            return None
        if not isinstance(result, FlowResult):
            self._evict(entry)
            self._count("eviction")
            self._count("miss")
            return None
        self._count("hit")
        return result

    def put(self, design, params: FlowParameters, seed: int,
            result: FlowResult) -> None:
        """Atomically persist one successful result."""
        from repro.runtime.checkpoint import atomic_pickle

        entry = self._entry_path(qor_cache_key(design, params, seed))
        os.makedirs(os.path.dirname(entry), exist_ok=True)
        atomic_pickle(result, entry)

    @staticmethod
    def _evict(entry: str) -> None:
        try:
            os.remove(entry)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _entries(self) -> List[str]:
        found = []
        for shard in sorted(os.listdir(self.path)):
            shard_dir = os.path.join(self.path, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    found.append(os.path.join(shard_dir, name))
        return found

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            self._evict(entry)
            removed += 1
        return removed

    def info(self) -> Dict[str, object]:
        """Occupancy summary (mirrors ``netlist_cache_info``).

        Counter reads happen under the cache lock, so a snapshot taken
        while other threads serve hits/misses is internally consistent.
        """
        entries = self._entries()
        total = 0
        for entry in entries:
            try:
                total += os.path.getsize(entry)
            except OSError:
                pass
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        return {
            "path": self.path,
            "entries": len(entries),
            "bytes": total,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
        }


# ----------------------------------------------------------------------
# The parallel executor
# ----------------------------------------------------------------------
class ParallelFlowExecutor:
    """Evaluates batches of flow jobs concurrently, deterministically.

    Args:
        workers: Process count.  ``1`` (default) runs in-process — same
            per-job supervision, no pool, no pickling constraints.
        flow_fn: Tool invocation ``(design, params, seed=...) ->
            FlowResult``; must be picklable (module-level) when
            ``workers > 1``.  Defaults to :func:`repro.flow.runner.run_flow`.
        policy / deadline_s / min_snapshots: Per-job
            :class:`~repro.runtime.executor.FlowExecutor` supervision knobs.
        seed: Base seed for per-job retry-jitter streams.
        cache: A :class:`QoRCache`, a directory path to open one at, or
            ``None``.  Only successful, fault-free results are cached.
        fault_plan: Optional :class:`FaultPlan` rehearsing failures with a
            job-index-keyed schedule (disables the cache for the batch —
            injected outcomes must never be persisted as truth).
        start_method: Multiprocessing start method; default prefers
            ``fork`` (workers inherit the parent's warm netlist cache for
            free) and falls back to the platform default.
        max_respawns: Worker deaths the supervisor absorbs (respawning the
            worker each time) before the pool stops replacing workers and,
            once none are left, degrades.
        poison_retries: Times a job whose worker died is re-dispatched
            before it is quarantined as a typed
            :class:`~repro.errors.WorkerCrash` report.
        watchdog_s: Wall-clock budget per dispatch; a worker holding one
            job longer is killed and the job surfaces as a typed
            :class:`~repro.errors.FlowTimeout`.  ``None`` disables the
            watchdog.
        degrade_to_serial: When the respawn budget is exhausted, finish
            the batch with supervised in-process execution (default)
            instead of raising :class:`~repro.errors.WorkerPoolError`.
    """

    def __init__(
        self,
        workers: int = 1,
        flow_fn: Optional[Callable] = None,
        policy: RetryPolicy = RetryPolicy(),
        deadline_s: Optional[float] = None,
        min_snapshots: Optional[int] = None,
        seed: int = 0,
        cache: Union[QoRCache, os.PathLike, str, None] = None,
        fault_plan: Optional[FaultPlan] = None,
        start_method: Optional[str] = None,
        max_respawns: int = 8,
        poison_retries: int = 1,
        watchdog_s: Optional[float] = None,
        degrade_to_serial: bool = True,
        batch_size: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batch_size > 1 and flow_fn is not None:
            raise ValueError(
                "batch_size > 1 vectorizes the built-in run_flow; it cannot "
                "be combined with a custom flow_fn"
            )
        if max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {max_respawns}"
            )
        if poison_retries < 0:
            raise ValueError(
                f"poison_retries must be >= 0, got {poison_retries}"
            )
        if watchdog_s is not None and not watchdog_s > 0:
            raise ValueError(
                f"watchdog_s must be positive or None, got {watchdog_s}"
            )
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.max_respawns = int(max_respawns)
        self.poison_retries = int(poison_retries)
        self.watchdog_s = watchdog_s
        self.degrade_to_serial = bool(degrade_to_serial)
        if cache is None or isinstance(cache, QoRCache):
            self.cache = cache
        else:
            self.cache = QoRCache(cache)
        self._settings = _RunnerSettings(
            flow_fn=flow_fn,
            policy=policy,
            deadline_s=deadline_s,
            min_snapshots=min_snapshots,
            seed=seed,
            fault_plan=fault_plan,
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self._pool: Optional[_WorkerSupervisor] = None
        self._counter_lock = new_lock()
        self.jobs_run = 0
        self.batches_run = 0
        self.worker_restarts = 0
        self.jobs_redispatched = 0
        self.poison_jobs = 0
        self.degraded = False
        self.batch_calls = 0
        self.batch_grouped_jobs = 0
        self.batch_max_width = 0
        self._batch_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def _cache_enabled(self) -> bool:
        # A fault plan makes outcomes depend on the injector, not just the
        # (design, params, seed) key — never persist those as real QoR.
        return self.cache is not None and self._settings.fault_plan is None

    @property
    def _batch_enabled(self) -> bool:
        """Whether stacked evaluation applies to this executor's jobs.

        Fault injection, per-attempt deadlines and custom flow callables
        are strictly per-job semantics; any of them forces the scalar
        reference path (fault-injected jobs always run per job).
        """
        return (
            self.batch_size > 1
            and self._settings.flow_fn is None
            and self._settings.fault_plan is None
            and self._settings.deadline_s is None
        )

    def _plan_tasks(
        self, pending: Sequence[Tuple[int, FlowJob]]
    ) -> List[Tuple[int, object]]:
        """Fold compatible pending jobs into ``_JobGroup`` dispatch units.

        Jobs sharing a (profile, seed) pair — one pristine netlist — are
        stacked, in submission order, into groups of at most
        ``batch_size``; singletons stay scalar tasks.  Group tasks are
        keyed by their first member's batch index.
        """
        buckets: Dict[Tuple[str, int], List[Tuple[int, FlowJob]]] = {}
        for index, job in pending:
            name = getattr(job.design, "name", None) or str(job.design)
            buckets.setdefault((name, job.seed), []).append((index, job))
        tasks: List[Tuple[int, object]] = []
        for members in buckets.values():
            for at in range(0, len(members), self.batch_size):
                chunk = members[at:at + self.batch_size]
                if len(chunk) == 1:
                    tasks.append(chunk[0])
                else:
                    tasks.append((chunk[0][0], _JobGroup(jobs=tuple(chunk))))
        tasks.sort(key=lambda task: task[0])
        widths = [
            len(job) for _, job in tasks if isinstance(job, _JobGroup)
        ]
        if widths:
            registry = get_registry()
            registry.counter("flow_batch_calls_total").inc(len(widths))
            registry.counter("flow_batch_jobs_total").inc(sum(widths))
            registry.gauge("flow_batch_width").set(max(widths))
            with self._counter_lock:
                self.batch_calls += len(widths)
                self.batch_grouped_jobs += sum(widths)
                self.batch_max_width = max(self.batch_max_width, max(widths))
        return tasks

    def run_batch(self, jobs: Sequence[FlowJob]) -> List[FlowRunReport]:
        """Evaluate ``jobs``; reports come back in submission order.

        Tool failures are captured per job inside each
        :class:`FlowRunReport` (never raised); non-flow
        :class:`~repro.errors.ReproError`\\ s — configuration bugs — still
        propagate, exactly as :meth:`FlowExecutor.try_execute` does.
        """
        jobs = [self._coerce(job) for job in jobs]
        registry = get_registry()
        with get_tracer().span(
            "flow.batch", jobs=len(jobs), workers=self.workers
        ) as batch_span:
            reports: List[Optional[FlowRunReport]] = [None] * len(jobs)
            pending: List[Tuple[int, FlowJob]] = []
            for index, job in enumerate(jobs):
                cached = (
                    self.cache.get(job.design, job.params, job.seed)
                    if self._cache_enabled else None
                )
                if cached is not None:
                    reports[index] = FlowRunReport(
                        design=str(job.design), result=cached, cached=True
                    )
                else:
                    pending.append((index, job))

            batch_span.set_attribute("cached", len(jobs) - len(pending))
            queue_depth = registry.gauge("flow_pool_queue_depth")
            try:
                if pending:
                    queue_depth.set(len(pending))
                    tasks = (
                        self._plan_tasks(pending) if self._batch_enabled
                        else list(pending)
                    )
                    if self.workers == 1 or self.degraded:
                        for index, task in tasks:
                            if isinstance(task, _JobGroup):
                                grouped = _execute_group(
                                    self._settings, task,
                                    stats=self._batch_stats,
                                )
                                for job_index, report in grouped.reports:
                                    reports[job_index] = report
                                    queue_depth.dec()
                            else:
                                reports[index] = (
                                    self._run_supervised_inprocess(
                                        index, task
                                    )
                                )
                                queue_depth.dec()
                    else:
                        supervisor = self._ensure_pool(jobs)
                        before = self._supervision_counters()
                        with get_tracer().span(
                            "flow.supervise", workers=self.workers,
                            jobs=len(pending),
                        ) as sup_span:
                            # Unordered completion + index reassembly:
                            # stragglers never stall finished results, and
                            # submission order is restored from the index,
                            # so completion order is unobservable.
                            for index, report in supervisor.run(tasks):
                                reports[index] = report
                                queue_depth.dec()
                            after = self._supervision_counters()
                            sup_span.set_attributes(**{
                                key: after[key] - before[key]
                                for key in before
                            }, degraded=self.degraded)
                    if self._cache_enabled:
                        for index, job in pending:
                            report = reports[index]
                            if report is not None and report.ok:
                                self.cache.put(
                                    job.design, job.params, job.seed,
                                    report.result,
                                )
            finally:
                # A batch leaves no residue: the gauge reads 0 between
                # batches (a fully-cached batch never touched it, and the
                # last in-batch decrement used to linger indefinitely).
                queue_depth.set(0)
            failed = sum(1 for r in reports if r is not None and not r.ok)
            batch_span.set_attribute("failed", failed)
            registry.counter("flow_jobs_total").inc(len(jobs))
            registry.counter("flow_batches_total").inc()
            with self._counter_lock:
                self.jobs_run += len(jobs)
                self.batches_run += 1
        return reports  # type: ignore[return-value]

    def execute_batch(self, jobs: Sequence[FlowJob]) -> List[FlowResult]:
        """All-or-nothing batch: results in order, or the first job's
        terminal typed :class:`~repro.errors.FlowError` (by submission
        order, not completion order)."""
        reports = self.run_batch(jobs)
        for report in reports:
            if not report.ok:
                raise report.error
        return [report.result for report in reports]

    def run_at(self, job, index: int = 0,
               dispatch: int = 0) -> FlowRunReport:
        """One job evaluated exactly as position ``index`` of a batch.

        The distributed actors' primitive: per-job randomness (retry
        jitter, injected faults) is keyed by ``index`` just as
        :meth:`run_batch` keys it, so an actor evaluating proposal
        ``index`` in its own process produces the bit-identical report the
        serial batch would have produced at that position.  ``dispatch``
        counts prior dispatch attempts of the same logical job (an actor
        died holding it); like the supervised pool's re-dispatch path it
        perturbs only the fault stream, never the executor's jitter — a
        re-dispatched job without an active fault plan is indistinguishable
        from the first attempt.
        """
        job = self._coerce(job)
        cached = (
            self.cache.get(job.design, job.params, job.seed)
            if self._cache_enabled else None
        )
        if cached is not None:
            return FlowRunReport(
                design=str(job.design), result=cached, cached=True
            )
        report = self._run_supervised_inprocess(index, job, kills=dispatch)
        if self._cache_enabled and report.ok:
            self.cache.put(job.design, job.params, job.seed, report.result)
        with self._counter_lock:
            self.jobs_run += 1
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(job) -> FlowJob:
        if isinstance(job, FlowJob):
            return job
        if isinstance(job, tuple):
            return FlowJob(*job)
        raise TypeError(f"expected FlowJob or tuple, got {type(job).__name__}")

    def _run_supervised_inprocess(self, index: int, job: FlowJob,
                                  kills: int = 0) -> FlowRunReport:
        """One job under the serial equivalent of pool supervision.

        :class:`~repro.runtime.faults.SimulatedWorkerDeath` stands in for
        real worker death and feeds the same poison accounting; the
        watchdog is enforced post-hoc on measured wall time (a stalled
        "worker" cannot be pre-empted in-process, but the typed outcome is
        identical to the pool's).
        """
        registry = get_registry()
        while True:
            started = time.monotonic()
            try:
                report = _execute_job(self._settings, index, job,
                                      dispatch=kills)
            except SimulatedWorkerDeath:
                kills += 1
                if kills > self.poison_retries:
                    self._note_poison()
                    return _quarantine_report(job, kills)
                self._note_redispatch()
                registry.counter("flow_worker_restarts_total").inc(
                    mode="inprocess"
                )
                continue
            if (self.watchdog_s is not None
                    and time.monotonic() - started > self.watchdog_s):
                return _watchdog_report(job, self.watchdog_s)
            return report

    # -- supervision bookkeeping ---------------------------------------
    def _supervision_counters(self) -> Dict[str, int]:
        with self._counter_lock:
            return {
                "restarts": self.worker_restarts,
                "redispatched": self.jobs_redispatched,
                "poisoned": self.poison_jobs,
            }

    def _note_restart(self, worker_id: int, exitcode: Optional[int],
                      job_index: Optional[int]) -> None:
        with self._counter_lock:
            self.worker_restarts += 1
        get_registry().counter("flow_worker_restarts_total").inc(
            mode="pool"
        )
        with get_tracer().span(
            "flow.worker_restart", worker=worker_id,
            exitcode=-1 if exitcode is None else int(exitcode),
            job=-1 if job_index is None else int(job_index),
        ):
            pass

    def _note_redispatch(self) -> None:
        with self._counter_lock:
            self.jobs_redispatched += 1
        get_registry().counter("flow_jobs_redispatched_total").inc()

    def _note_poison(self) -> None:
        with self._counter_lock:
            self.poison_jobs += 1
        get_registry().counter("flow_poison_jobs_total").inc()

    def _note_degraded(self) -> None:
        self.degraded = True
        get_registry().counter("flow_pool_degraded_total").inc()

    def _ensure_pool(self, jobs: Sequence[FlowJob]) -> _WorkerSupervisor:
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            warm = []
            seen = set()
            for job in jobs:
                key = (str(job.design), job.seed)
                if key not in seen:
                    seen.add(key)
                    warm.append(key)
            if self._start_method == "fork":
                # Generate each pristine netlist once in the parent; every
                # forked worker — including respawns — inherits the warm
                # cache copy-on-write.
                _worker_init(self._settings, warm)
                warm = []
            self._pool = _WorkerSupervisor(
                context,
                workers=self.workers,
                settings=self._settings,
                warm=warm,
                max_respawns=self.max_respawns,
                poison_retries=self.poison_retries,
                watchdog_s=self.watchdog_s,
                degrade_to_serial=self.degrade_to_serial,
                run_inprocess=self._run_supervised_inprocess,
                on_restart=self._note_restart,
                on_redispatch=self._note_redispatch,
                on_poison=self._note_poison,
                on_degrade=self._note_degraded,
                batch_stats=self._batch_stats,
            )
        return self._pool

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut the worker pool down (idempotent).

        Graceful first — shutdown sentinels plus a bounded join, so idle
        workers tear down cleanly — with SIGKILL as the fallback for
        anything still alive at the deadline.
        """
        if self._pool is not None:
            self._pool.shutdown(timeout_s=timeout_s)
            self._pool = None

    def __enter__(self) -> "ParallelFlowExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    def stats(self) -> Dict[str, object]:
        """Executor counters plus cache occupancy (when one is attached)."""
        with self._counter_lock:
            jobs_run, batches_run = self.jobs_run, self.batches_run
            restarts = self.worker_restarts
            redispatched = self.jobs_redispatched
            poisoned = self.poison_jobs
            batch_calls = self.batch_calls
            batch_grouped = self.batch_grouped_jobs
            batch_max_width = self.batch_max_width
        lane_steps = self._batch_stats.get("lane_steps", 0)
        frozen_steps = self._batch_stats.get("frozen_steps", 0)
        total_steps = lane_steps + frozen_steps
        out: Dict[str, object] = {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "batch_calls": batch_calls,
            "batch_grouped_jobs": batch_grouped,
            "batch_max_width": batch_max_width,
            "batch_padding_waste": (
                frozen_steps / total_steps if total_steps else 0.0
            ),
            "jobs_run": jobs_run,
            "batches_run": batches_run,
            "pool_live": self._pool is not None,
            "workers_live": (
                self._pool.live_count() if self._pool is not None else 0
            ),
            "worker_restarts": restarts,
            "jobs_redispatched": redispatched,
            "poison_jobs": poisoned,
            "degraded": self.degraded,
        }
        if self.cache is not None:
            out["cache"] = self.cache.info()
        return out
