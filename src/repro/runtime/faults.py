"""Deterministic fault injection for the simulated P&R tool.

In a real deployment the flow invocation is the flaky, hours-long external
dependency: the tool crashes, hangs past its deadline, or emits corrupt
reports.  The simulated flow in :mod:`repro.flow.runner` never misbehaves,
so this module makes it misbehave *on demand* — a seeded
:class:`FaultInjector` wraps any flow callable and, at a configured rate,
replaces the call's outcome with one of four failure modes:

- ``CRASH``            — the tool process dies (an opaque ``RuntimeError``).
- ``HANG``             — the run takes ``hang_s`` longer than usual; paired
  with a shared :class:`~repro.runtime.clock.VirtualClock` this pushes the
  executor past its deadline without real waiting.
- ``CORRUPT_QOR``      — the run "succeeds" but one QoR metric is NaN.
- ``PARTIAL_SNAPSHOT`` — the run returns with a truncated stage trajectory
  (the tool was killed mid-flow but left a half-written report).

Every decision is drawn from a private :func:`~repro.utils.rng.derive_rng`
stream, so a given ``(seed, call-sequence)`` always produces the same fault
schedule — failure-path tests are exactly reproducible.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.clock import VirtualClock
from repro.utils.rng import derive_rng


class FaultKind(enum.Enum):
    """The ways the simulated tool can misbehave."""

    CRASH = "crash"
    HANG = "hang"
    CORRUPT_QOR = "corrupt_qor"
    PARTIAL_SNAPSHOT = "partial_snapshot"


class SimulatedToolCrash(RuntimeError):
    """The opaque, untyped error a dying external tool would surface.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the executor is
    expected to translate unexpected exceptions into ``FlowCrash``.
    """


class FaultInjector:
    """Wraps a flow callable and injects seeded, reproducible faults.

    Args:
        rate: Probability in ``[0, 1]`` that any given call misbehaves.
        kinds: Fault modes to draw from (uniformly); default all four.
        seed: Seeds the private decision stream.
        hang_s: Simulated extra latency of a ``HANG`` fault.
        clock: Clock advanced by ``HANG`` faults.  Share this instance with
            the executor so hangs are observable as deadline overruns; a
            private clock is created when omitted (hangs then only show up
            in :attr:`history`).
    """

    def __init__(
        self,
        rate: float = 0.0,
        kinds: Optional[Sequence[FaultKind]] = None,
        seed: int = 0,
        hang_s: float = 3600.0,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.kinds: Tuple[FaultKind, ...] = (
            tuple(FaultKind) if kinds is None else tuple(kinds)
        )
        if not self.kinds:
            raise ValueError("fault injector needs at least one fault kind")
        self.hang_s = float(hang_s)
        self.clock = clock if clock is not None else VirtualClock()
        self._rng = derive_rng(seed, "fault-injector")
        self.calls = 0
        self.history: List[Tuple[int, Optional[FaultKind]]] = []

    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return sum(1 for _, kind in self.history if kind is not None)

    def draw(self) -> Optional[FaultKind]:
        """Decide (and record) whether the next call misbehaves, and how."""
        index = self.calls
        self.calls += 1
        kind: Optional[FaultKind] = None
        if self._rng.random() < self.rate:
            kind = self.kinds[int(self._rng.integers(0, len(self.kinds)))]
        self.history.append((index, kind))
        return kind

    def wrap(self, flow_fn: Callable) -> Callable:
        """Return ``flow_fn`` with this injector's misbehaviour layered on."""

        def faulty_flow(*args, **kwargs):
            kind = self.draw()
            if kind is FaultKind.CRASH:
                raise SimulatedToolCrash(
                    "simulated P&R tool crashed (exit code 139)"
                )
            if kind is FaultKind.HANG:
                self.clock.sleep(self.hang_s)
                return flow_fn(*args, **kwargs)
            result = flow_fn(*args, **kwargs)
            if kind is FaultKind.CORRUPT_QOR:
                return self._corrupt_qor(result)
            if kind is FaultKind.PARTIAL_SNAPSHOT:
                return self._truncate_snapshots(result)
            return result

        return faulty_flow

    # ------------------------------------------------------------------
    def _corrupt_qor(self, result):
        """Poison one metric with NaN (in place; the run is already lost)."""
        keys = sorted(result.qor)
        if keys:
            victim = keys[int(self._rng.integers(0, len(keys)))]
            result.qor[victim] = math.nan
        return result

    def _truncate_snapshots(self, result):
        """Drop the tail of the stage trajectory (tool killed mid-flow)."""
        if result.snapshots:
            keep = max(1, len(result.snapshots) // 2)
            result.snapshots = result.snapshots[:keep]
        return result
