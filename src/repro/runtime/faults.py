"""Deterministic fault injection for the simulated P&R tool.

In a real deployment the flow invocation is the flaky, hours-long external
dependency: the tool crashes, hangs past its deadline, or emits corrupt
reports.  The simulated flow in :mod:`repro.flow.runner` never misbehaves,
so this module makes it misbehave *on demand* — a seeded
:class:`FaultInjector` wraps any flow callable and, at a configured rate,
replaces the call's outcome with one of four failure modes:

- ``CRASH``            — the tool process dies (an opaque ``RuntimeError``).
- ``HANG``             — the run takes ``hang_s`` longer than usual; paired
  with a shared :class:`~repro.runtime.clock.VirtualClock` this pushes the
  executor past its deadline without real waiting.
- ``CORRUPT_QOR``      — the run "succeeds" but one QoR metric is NaN.
- ``PARTIAL_SNAPSHOT`` — the run returns with a truncated stage trajectory
  (the tool was killed mid-flow but left a half-written report).

Two further *process-level* modes rehearse failures that no in-process
``except`` clause can see — the OOM killer, a segfault, a tool that wedges
forever.  They are opt-in (never part of the default ``kinds``) because
they take down the executing process itself, and only the supervised
worker pool in :mod:`repro.runtime.parallel` can recover from them:

- ``WORKER_KILL``  — inside a pool worker the process dies for real
  (``os._exit(139)``, mimicking a segfault); in-process it raises the
  uncatchable-by-``except Exception`` :class:`SimulatedWorkerDeath` so the
  serial supervision path can rehearse identical poison/redispatch
  accounting without killing the interpreter.
- ``WORKER_STALL`` — the call really sleeps ``stall_s`` wall-clock seconds
  (no virtual clock: a stalled worker is only observable from outside),
  which is what the pool supervisor's watchdog exists to catch.

Every decision is drawn from a private :func:`~repro.utils.rng.derive_rng`
stream, so a given ``(seed, call-sequence)`` always produces the same fault
schedule — failure-path tests are exactly reproducible.
"""

from __future__ import annotations

import enum
import math
import os
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.clock import VirtualClock
from repro.utils.rng import derive_rng


class FaultKind(enum.Enum):
    """The ways the simulated tool can misbehave."""

    CRASH = "crash"
    HANG = "hang"
    CORRUPT_QOR = "corrupt_qor"
    PARTIAL_SNAPSHOT = "partial_snapshot"
    WORKER_KILL = "worker_kill"
    WORKER_STALL = "worker_stall"


#: The in-tool fault modes — the default draw set.  The process-level kinds
#: (``WORKER_KILL`` / ``WORKER_STALL``) are excluded so existing seeded
#: schedules are unchanged and nothing kills a process unless explicitly
#: asked to.
IN_TOOL_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.CRASH,
    FaultKind.HANG,
    FaultKind.CORRUPT_QOR,
    FaultKind.PARTIAL_SNAPSHOT,
)


# Set (via mark_pool_worker) in the main of every supervised pool worker so
# WORKER_KILL knows whether it may genuinely kill the process.
_IN_POOL_WORKER = False


def mark_pool_worker(active: bool = True) -> None:
    """Flag this process as a supervised pool worker (process-level faults
    then take the real-death path instead of the simulated one)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = bool(active)


def in_pool_worker() -> bool:
    return _IN_POOL_WORKER


class SimulatedToolCrash(RuntimeError):
    """The opaque, untyped error a dying external tool would surface.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the executor is
    expected to translate unexpected exceptions into ``FlowCrash``.
    """


class SimulatedWorkerDeath(BaseException):
    """In-process stand-in for the worker process dying outright.

    Derives from :class:`BaseException` on purpose: a real worker death is
    invisible to every ``except Exception`` handler in the worker —
    including the :class:`~repro.runtime.executor.FlowExecutor` retry loop —
    so its simulation must fly past them too and only be caught by the
    process-level supervision layer in :mod:`repro.runtime.parallel`.
    """


class FaultInjector:
    """Wraps a flow callable and injects seeded, reproducible faults.

    Args:
        rate: Probability in ``[0, 1]`` that any given call misbehaves.
        kinds: Fault modes to draw from (uniformly); default the four
            in-tool modes (:data:`IN_TOOL_KINDS`).  The process-level
            ``WORKER_KILL`` / ``WORKER_STALL`` modes must be requested
            explicitly.
        seed: Seeds the private decision stream.
        hang_s: Simulated extra latency of a ``HANG`` fault.
        stall_s: Real wall-clock sleep of a ``WORKER_STALL`` fault.
        clock: Clock advanced by ``HANG`` faults.  Share this instance with
            the executor so hangs are observable as deadline overruns; a
            private clock is created when omitted (hangs then only show up
            in :attr:`history`).
    """

    def __init__(
        self,
        rate: float = 0.0,
        kinds: Optional[Sequence[FaultKind]] = None,
        seed: int = 0,
        hang_s: float = 3600.0,
        stall_s: float = 30.0,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.kinds: Tuple[FaultKind, ...] = (
            IN_TOOL_KINDS if kinds is None else tuple(kinds)
        )
        if not self.kinds:
            raise ValueError("fault injector needs at least one fault kind")
        self.hang_s = float(hang_s)
        self.stall_s = float(stall_s)
        self.clock = clock if clock is not None else VirtualClock()
        self._rng = derive_rng(seed, "fault-injector")
        self.calls = 0
        self.history: List[Tuple[int, Optional[FaultKind]]] = []

    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return sum(1 for _, kind in self.history if kind is not None)

    def draw(self) -> Optional[FaultKind]:
        """Decide (and record) whether the next call misbehaves, and how."""
        index = self.calls
        self.calls += 1
        kind: Optional[FaultKind] = None
        if self._rng.random() < self.rate:
            kind = self.kinds[int(self._rng.integers(0, len(self.kinds)))]
        self.history.append((index, kind))
        return kind

    def wrap(self, flow_fn: Callable) -> Callable:
        """Return ``flow_fn`` with this injector's misbehaviour layered on."""

        def faulty_flow(*args, **kwargs):
            kind = self.draw()
            if kind is FaultKind.CRASH:
                raise SimulatedToolCrash(
                    "simulated P&R tool crashed (exit code 139)"
                )
            if kind is FaultKind.WORKER_KILL:
                if in_pool_worker():
                    # Die for real: no result, no exception, no cleanup —
                    # exactly what the supervisor must recover from.
                    os._exit(139)
                raise SimulatedWorkerDeath(
                    "simulated worker death (OOM kill / segfault)"
                )
            if kind is FaultKind.WORKER_STALL:
                # A stall is real wall time by design: it is only
                # observable from outside the process, by the watchdog.
                time.sleep(self.stall_s)
                return flow_fn(*args, **kwargs)
            if kind is FaultKind.HANG:
                self.clock.sleep(self.hang_s)
                return flow_fn(*args, **kwargs)
            result = flow_fn(*args, **kwargs)
            if kind is FaultKind.CORRUPT_QOR:
                return self._corrupt_qor(result)
            if kind is FaultKind.PARTIAL_SNAPSHOT:
                return self._truncate_snapshots(result)
            return result

        return faulty_flow

    # ------------------------------------------------------------------
    def _corrupt_qor(self, result):
        """Poison one metric with NaN (in place; the run is already lost)."""
        keys = sorted(result.qor)
        if keys:
            victim = keys[int(self._rng.integers(0, len(keys)))]
            result.qor[victim] = math.nan
        return result

    def _truncate_snapshots(self, result):
        """Drop the tail of the stage trajectory (tool killed mid-flow)."""
        if result.snapshots:
            keep = max(1, len(result.snapshots) // 2)
            result.snapshots = result.snapshots[:keep]
        return result
