"""The unified flow-evaluation runtime: ``RuntimeConfig`` + ``FlowSession``.

Four subsystems grew around the simulated P&R invocation — supervised
execution (:mod:`repro.runtime.executor`), process-pool batching and the
persistent QoR cache (:mod:`repro.runtime.parallel`), seeded fault
injection (:mod:`repro.runtime.faults`), and tracing/metrics
(:mod:`repro.observability`).  Before this module, every consumer wired
those together by hand: the online loop, the dataset builder, sweeps, the
baseline objectives and the CLI each carried their own
``workers``/``qor_cache_path`` plumbing and their own sequential-vs-batch
branch, while the cross-validation loop still called ``run_flow`` raw.

:class:`FlowSession` is the one composition point.  It owns the executor
policy (deadlines, bounded retries, backoff), the worker pool, the QoR
cache, the fault plan and the trace toggle — all declared up front in a
typed, validated :class:`RuntimeConfig` — and exposes a batch-first API:

``session.evaluate(jobs)``
    Supervised batch; one :class:`FlowOutcome` per job, in submission
    order, tool failures captured (never raised).

``session.evaluate_strict(jobs)``
    All-or-nothing batch; :class:`~repro.flow.result.FlowResult` per job
    or the first failed job's typed :class:`~repro.errors.FlowError`.

``session.run(...)`` / ``session.execute(...)``
    Single-job conveniences over the same machinery.

Everything that made the per-call-site wiring safe is preserved exactly:
job identity is ``(design, params, seed)``; per-job randomness (retry
jitter, injected faults) is keyed by batch index, so results — including
typed errors under fault injection — are bit-identical at any worker
count; results come back in submission order; cache keys are unchanged.
``tests/test_session_equivalence.py`` asserts all of this against the
pre-session code paths.

Tests (and the online loop's ``executor=`` escape hatch) can inject a
fully-built :class:`~repro.runtime.executor.FlowExecutor` — closures,
virtual clocks and all — and the session degrades to the exact legacy
sequential loop: same shared jitter stream across jobs, no batch span.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import RuntimeConfigError
from repro.flow.parameters import FlowParameters
from repro.flow.result import FlowResult
from repro.observability.trace import Tracer, set_tracer
from repro.runtime.executor import FlowExecutor, FlowRunReport, RetryPolicy
from repro.runtime.parallel import (
    FaultPlan,
    FlowJob,
    ParallelFlowExecutor,
    QoRCache,
)

# The session's batch outcome type IS the executor's run report — one
# name, one pickle layout, so cached entries and checkpoints written
# before the session layer existed stay readable after it.
FlowOutcome = FlowRunReport


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything a :class:`FlowSession` composes, validated up front.

    Replaces the ``workers=`` / ``qor_cache_path=`` / ``processes=``
    keyword plumbing that used to be repeated (slightly differently) at
    every flow call site.  Invalid combinations raise a typed
    :class:`~repro.errors.RuntimeConfigError` at construction time, before
    any flow runs.

    Args:
        workers: Process count for batch evaluation.  ``1`` (default)
            runs in-process — same per-job supervision, no pool.
        qor_cache_path: Directory for the persistent
            :class:`~repro.runtime.parallel.QoRCache`; ``None`` disables
            caching.  Ignored (never silently — see :class:`FlowSession`)
            while a ``fault_plan`` is active.
        policy: Per-job retry/backoff schedule.
        deadline_s: Per-attempt wall-clock budget (``None`` = unlimited).
        min_snapshots: Reject results with fewer stage snapshots as
            :class:`~repro.errors.CorruptQoR` (``None`` = no floor).
        seed: Base seed for per-job jitter/fault streams (job identity —
            which netlist is built — comes from each job's own ``seed``).
        fault_plan: Optional seeded
            :class:`~repro.runtime.parallel.FaultPlan` rehearsing
            failures with a job-index-keyed schedule.
        trace: When ``False`` the session runs its batches under a
            disabled tracer, so a globally-enabled trace skips flow spans
            and flow metrics from this session (results are bit-identical
            either way; instrumentation never consumes RNG).
        start_method: Multiprocessing start method override (``None``
            prefers ``fork`` so workers inherit the warm netlist cache).
        max_respawns: Worker deaths the supervised pool absorbs (each one
            respawning a warm replacement worker) before it stops
            replacing workers and degrades.
        poison_retries: Times a job whose worker died is re-dispatched
            before being quarantined as a typed
            :class:`~repro.errors.WorkerCrash` report.
        watchdog_s: Wall-clock budget per dispatched job; a worker
            holding one longer is killed and the job surfaces as a typed
            :class:`~repro.errors.FlowTimeout` (``None`` disables).
        degrade_to_serial: Finish batches in-process when the pool cannot
            keep workers alive (default) instead of raising
            :class:`~repro.errors.WorkerPoolError`.
        batch_size: Maximum jobs per stacked (array-vectorized) flow
            evaluation.  ``1`` (default) runs the scalar reference path.
            Values ``> 1`` group compatible jobs — same design profile
            and netlist seed — into one stacked ``run_flow_batch`` call
            per worker dispatch; results are bit-identical to the scalar
            path.  Incompatible with a ``fault_plan``, a ``deadline_s``
            or a custom ``flow_fn`` (those force the per-job scalar
            path; the session rejects the contradiction up front).
    """

    workers: int = 1
    qor_cache_path: Optional[Union[str, os.PathLike]] = None
    policy: RetryPolicy = RetryPolicy()
    deadline_s: Optional[float] = None
    min_snapshots: Optional[int] = None
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    trace: bool = True
    start_method: Optional[str] = None
    max_respawns: int = 8
    poison_retries: int = 1
    watchdog_s: Optional[float] = None
    degrade_to_serial: bool = True
    batch_size: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise RuntimeConfigError(
                f"workers must be an int, got {type(self.workers).__name__}"
            )
        if self.workers < 1:
            raise RuntimeConfigError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.qor_cache_path is not None and not isinstance(
            self.qor_cache_path, (str, os.PathLike)
        ):
            raise RuntimeConfigError(
                "qor_cache_path must be a path or None, got "
                f"{type(self.qor_cache_path).__name__}"
            )
        if not isinstance(self.policy, RetryPolicy):
            raise RuntimeConfigError(
                f"policy must be a RetryPolicy, got "
                f"{type(self.policy).__name__}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise RuntimeConfigError(
                f"deadline_s must be positive or None, got {self.deadline_s}"
            )
        if self.min_snapshots is not None and (
            not isinstance(self.min_snapshots, int) or self.min_snapshots < 0
        ):
            raise RuntimeConfigError(
                f"min_snapshots must be a non-negative int or None, "
                f"got {self.min_snapshots!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise RuntimeConfigError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise RuntimeConfigError(
                f"fault_plan must be a FaultPlan or None, got "
                f"{type(self.fault_plan).__name__}"
            )
        if not isinstance(self.trace, bool):
            raise RuntimeConfigError(
                f"trace must be a bool, got {type(self.trace).__name__}"
            )
        if self.start_method is not None and (
            self.start_method not in multiprocessing.get_all_start_methods()
        ):
            raise RuntimeConfigError(
                f"unknown start_method {self.start_method!r}; available: "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        for name in ("max_respawns", "poison_retries"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise RuntimeConfigError(
                    f"{name} must be a non-negative int, got {value!r}"
                )
        if self.watchdog_s is not None and not self.watchdog_s > 0:
            raise RuntimeConfigError(
                f"watchdog_s must be positive or None, got {self.watchdog_s}"
            )
        if not isinstance(self.degrade_to_serial, bool):
            raise RuntimeConfigError(
                f"degrade_to_serial must be a bool, got "
                f"{type(self.degrade_to_serial).__name__}"
            )
        if not isinstance(self.batch_size, int) \
                or isinstance(self.batch_size, bool):
            raise RuntimeConfigError(
                f"batch_size must be an int, got "
                f"{type(self.batch_size).__name__}"
            )
        if self.batch_size < 1:
            raise RuntimeConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.batch_size > 1:
            if self.fault_plan is not None:
                raise RuntimeConfigError(
                    "fault injection is rehearsed on the scalar reference "
                    "path; batch_size > 1 cannot be combined with a "
                    "fault_plan"
                )
            if self.deadline_s is not None:
                raise RuntimeConfigError(
                    "per-attempt deadlines apply to scalar jobs; "
                    "batch_size > 1 cannot be combined with deadline_s"
                )

    def replace(self, **overrides) -> "RuntimeConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)


def warn_legacy_runtime_kwargs(site: str, **kwargs: object) -> None:
    """One ``DeprecationWarning`` per call site still using pre-session
    keyword plumbing.

    The message always names ``RuntimeConfig`` — the test suite turns
    exactly these warnings into errors (see ``pyproject.toml``), keeping
    migrated code honest while the shims live out their release.
    """
    names = ", ".join(sorted(kwargs))
    warnings.warn(
        f"{site}({names}=...) is deprecated; pass a "
        f"repro.runtime.RuntimeConfig instead (runtime=RuntimeConfig(...))",
        DeprecationWarning,
        stacklevel=3,
    )


# A permanently-disabled tracer, installed globally for the duration of a
# batch when the session's config says ``trace=False``.
_QUIET_TRACER = Tracer(exporter=None, enabled=False)


class FlowSession:
    """One handle over supervised, cached, concurrent flow evaluation.

    Args:
        config: The validated :class:`RuntimeConfig` to compose.
        flow_fn: Tool invocation override ``(design, params, seed=...) ->
            FlowResult``; must be picklable when ``config.workers > 1``.
            Defaults to :func:`repro.flow.runner.run_flow`.
        executor: A pre-built :class:`FlowExecutor` (possibly carrying
            closures, virtual clocks, wrapped fault injectors) to run
            every job through sequentially — the exact legacy path,
            preserved for tests and the online loop's ``executor=``
            escape hatch.  Requires ``workers == 1``, no cache and no
            fault plan (those belong to the session, not the injected
            executor), and is mutually exclusive with ``flow_fn``.
    """

    def __init__(
        self,
        config: RuntimeConfig = RuntimeConfig(),
        flow_fn: Optional[Callable] = None,
        executor: Optional[FlowExecutor] = None,
    ) -> None:
        if not isinstance(config, RuntimeConfig):
            raise RuntimeConfigError(
                f"config must be a RuntimeConfig, got "
                f"{type(config).__name__}"
            )
        if executor is not None:
            if flow_fn is not None:
                raise RuntimeConfigError(
                    "pass flow_fn or a pre-built executor, not both"
                )
            if config.workers != 1:
                raise RuntimeConfigError(
                    "an injected executor runs in-process; it cannot be "
                    f"combined with workers={config.workers}"
                )
            if config.qor_cache_path is not None:
                raise RuntimeConfigError(
                    "an injected executor bypasses the session's QoR "
                    "cache; drop qor_cache_path or the executor"
                )
            if config.fault_plan is not None:
                raise RuntimeConfigError(
                    "fault injection for an injected executor belongs in "
                    "the executor itself, not the session's fault_plan"
                )
            if config.watchdog_s is not None:
                raise RuntimeConfigError(
                    "the supervision watchdog applies to session-owned "
                    "workers; an injected executor bypasses it — drop "
                    "watchdog_s or the executor"
                )
            if config.batch_size > 1:
                raise RuntimeConfigError(
                    "an injected executor runs jobs one at a time; it "
                    "cannot be combined with batch_size="
                    f"{config.batch_size}"
                )
        if flow_fn is not None and config.batch_size > 1:
            raise RuntimeConfigError(
                "batch_size > 1 vectorizes the built-in run_flow; it "
                "cannot be combined with a custom flow_fn"
            )
        self.config = config
        self._injected = executor
        self._parallel: Optional[ParallelFlowExecutor] = None
        if executor is None:
            self._parallel = ParallelFlowExecutor(
                workers=config.workers,
                flow_fn=flow_fn,
                policy=config.policy,
                deadline_s=config.deadline_s,
                min_snapshots=config.min_snapshots,
                seed=config.seed,
                cache=config.qor_cache_path,
                fault_plan=config.fault_plan,
                start_method=config.start_method,
                max_respawns=config.max_respawns,
                poison_retries=config.poison_retries,
                watchdog_s=config.watchdog_s,
                degrade_to_serial=config.degrade_to_serial,
                batch_size=config.batch_size,
            )

    # ------------------------------------------------------------------
    @contextmanager
    def _traced(self) -> Iterator[None]:
        """Silence span/metric emission for the block when trace=False."""
        if self.config.trace:
            yield
            return
        previous = set_tracer(_QUIET_TRACER)
        try:
            yield
        finally:
            set_tracer(previous)

    # ------------------------------------------------------------------
    def evaluate(self, jobs: Sequence) -> List[FlowOutcome]:
        """Supervised batch evaluation, outcomes in submission order.

        Accepts :class:`~repro.runtime.parallel.FlowJob`\\ s or
        ``(design, params, seed)`` tuples.  Tool failures are captured in
        each outcome (``outcome.ok`` / ``outcome.error``); non-flow
        :class:`~repro.errors.ReproError`\\ s — configuration bugs — still
        propagate immediately.
        """
        with self._traced():
            if self._injected is not None:
                coerced = [ParallelFlowExecutor._coerce(job) for job in jobs]
                return [
                    self._injected.try_execute(
                        job.design, job.params, seed=job.seed
                    )
                    for job in coerced
                ]
            return self._parallel.run_batch(jobs)

    def evaluate_at(
        self, job, index: int = 0, dispatch: int = 0
    ) -> FlowOutcome:
        """Evaluate one job exactly as position ``index`` of a batch.

        This is the distributed actors' door: per-job randomness is keyed
        by the *global* batch index, so an actor that owns proposal
        ``index`` of an iteration produces the bit-identical outcome
        :meth:`evaluate` would have produced at that position of the full
        batch.  ``dispatch`` counts prior dispatch attempts of the same
        logical job (a previous owner died holding it) and perturbs only
        the fault-injection stream — see
        :meth:`ParallelFlowExecutor.run_at`.
        """
        with self._traced():
            if self._injected is not None:
                job = ParallelFlowExecutor._coerce(job)
                return self._injected.try_execute(
                    job.design, job.params, seed=job.seed
                )
            return self._parallel.run_at(job, index=index, dispatch=dispatch)

    def evaluate_strict(self, jobs: Sequence) -> List[FlowResult]:
        """All-or-nothing batch: results in submission order, or the
        first failed job's terminal typed :class:`~repro.errors.FlowError`
        (by submission order, not completion order)."""
        outcomes = self.evaluate(jobs)
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
        return [outcome.result for outcome in outcomes]

    # -- single-job conveniences ---------------------------------------
    def run(
        self,
        design,
        params: FlowParameters = FlowParameters(),
        seed: int = 0,
    ) -> FlowOutcome:
        """Supervise one flow run; never raises for tool failures."""
        return self.evaluate([FlowJob(design, params, seed)])[0]

    def execute(
        self,
        design,
        params: FlowParameters = FlowParameters(),
        seed: int = 0,
    ) -> FlowResult:
        """One flow run to success, or the terminal typed
        :class:`~repro.errors.FlowError`."""
        return self.evaluate_strict([FlowJob(design, params, seed)])[0]

    # ------------------------------------------------------------------
    @property
    def cache(self) -> Optional[QoRCache]:
        """The session's persistent QoR cache (``None`` when disabled)."""
        if self._parallel is None:
            return None
        return self._parallel.cache

    def stats(self) -> Dict[str, object]:
        """Runtime counters: workers, jobs/batches run, cache occupancy."""
        if self._parallel is not None:
            out = self._parallel.stats()
        else:
            out = {"workers": 1, "pool_live": False, "injected": True}
        out["trace"] = self.config.trace
        return out

    def close(self) -> None:
        """Release the worker pool, if one was started (idempotent)."""
        if self._parallel is not None:
            self._parallel.close()

    def __enter__(self) -> "FlowSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
