"""Deterministic time sources for the resilience layer.

The executor measures per-run deadlines and sleeps between retries through
injectable ``clock``/``sleep`` callables so tests never block on real wall
time.  :class:`VirtualClock` is the test-side implementation: a monotonic
counter whose ``sleep`` simply advances it.  Sharing one instance between a
:class:`~repro.runtime.faults.FaultInjector` and a
:class:`~repro.runtime.executor.FlowExecutor` lets a simulated hang move the
executor's notion of time past the deadline without any real waiting.
"""

from __future__ import annotations


class VirtualClock:
    """A manually-advanced monotonic clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start in the past: {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    # Allow passing the instance directly as the ``clock`` callable.
    __call__ = now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += float(seconds)
        return self._now

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep`` that advances virtual time instead."""
        self.advance(max(0.0, seconds))


class RecordingSleep:
    """A ``sleep`` stand-in that records requested delays (for tests)."""

    def __init__(self, clock: VirtualClock = None) -> None:
        self.calls = []
        self._clock = clock

    def __call__(self, seconds: float) -> None:
        self.calls.append(float(seconds))
        if self._clock is not None:
            self._clock.sleep(seconds)
