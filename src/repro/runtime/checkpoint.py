"""Crash-safe training checkpoints: atomic write, versioned load.

A checkpoint captures everything a trainer needs to continue *bit-
identically* after a crash: model weights, optimizer moments, the training
RNG's bit-generator state, the step counter, and trainer-specific payload
(history lists, the online loop's observed set, ...).

Durability contract: :func:`atomic_pickle` writes to a temporary file in
the destination directory, fsyncs it, then ``os.replace``\\ s it over the
target — so at every instant the target path holds either the previous
complete checkpoint or the new complete checkpoint, never a torn write.
A crash mid-save costs at most one checkpoint interval of progress.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.errors import CheckpointError

PathLike = Union[str, os.PathLike]

CHECKPOINT_VERSION = 1


@dataclass
class TrainingCheckpoint:
    """One resumable training state.

    Attributes:
        kind: Producing loop, ``"alignment"`` or ``"online"`` — guards
            against resuming the wrong trainer from a file.
        step: Last *completed* unit of work (epoch / iteration, 0-based);
            resume continues at ``step + 1``.
        model_state: ``Module.state_dict()`` arrays.
        optimizer_state: ``Adam.state_dict()`` / ``SGD.state_dict()``.
        rng_state: ``numpy`` bit-generator state of the training stream,
            captured at the step boundary.
        payload: Trainer-specific extras (histories, observed runs, ...).
    """

    kind: str
    step: int
    model_state: Dict[str, Any]
    optimizer_state: Dict[str, Any]
    rng_state: Dict[str, Any]
    payload: Dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION


def atomic_pickle(payload: Any, path: PathLike) -> None:
    """Pickle ``payload`` to ``path`` with all-or-nothing semantics."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def intern_keys(mapping: Dict[str, Any]) -> Dict[str, Any]:
    """Re-key ``mapping`` in place with :func:`sys.intern`-ed key strings.

    Checkpoint *bytes* (not just values) are part of the bit-identity
    contract, and pickle's output depends on object sharing: a dict whose
    keys are the module-literal strings (``"power_mw"``, ...) pickles as
    one string plus memo references, while an equal dict whose keys
    crossed a process pipe — or came out of an earlier checkpoint — gets
    fresh string objects and a different memo pattern.  Interning restores
    the canonical sharing (CPython interns code-object literals), so
    results arriving from distributed actors and state restored by
    ``resume_from`` pickle byte-identically to the in-process originals.
    """
    items = list(mapping.items())
    mapping.clear()
    for key, value in items:
        mapping[sys.intern(key) if isinstance(key, str) else key] = value
    return mapping


def checkpoint_digest(path: PathLike) -> str:
    """SHA-256 of the checkpoint file's raw bytes (bit-identity probe)."""
    digest = hashlib.sha256()
    with open(os.fspath(path), "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_checkpoint(checkpoint: TrainingCheckpoint, path: PathLike) -> None:
    """Atomically persist a checkpoint."""
    atomic_pickle(
        {
            "version": checkpoint.version,
            "kind": checkpoint.kind,
            "step": checkpoint.step,
            "model_state": checkpoint.model_state,
            "optimizer_state": checkpoint.optimizer_state,
            "rng_state": checkpoint.rng_state,
            "payload": checkpoint.payload,
        },
        path,
    )


def load_checkpoint(
    path: PathLike, expected_kind: Optional[str] = None
) -> TrainingCheckpoint:
    """Load and validate a checkpoint written by :func:`save_checkpoint`."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path!r}") from None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as err:
        raise CheckpointError(f"unreadable checkpoint {path!r}: {err}") from err
    if not isinstance(raw, dict) or "version" not in raw:
        raise CheckpointError(f"{path!r} is not a training checkpoint")
    if raw["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {raw['version']}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    if expected_kind is not None and raw.get("kind") != expected_kind:
        raise CheckpointError(
            f"checkpoint {path!r} was written by the {raw.get('kind')!r} "
            f"loop, cannot resume the {expected_kind!r} loop from it"
        )
    try:
        return TrainingCheckpoint(
            kind=raw["kind"],
            step=int(raw["step"]),
            model_state=raw["model_state"],
            optimizer_state=raw["optimizer_state"],
            rng_state=raw["rng_state"],
            payload=raw.get("payload", {}),
            version=int(raw["version"]),
        )
    except KeyError as err:
        raise CheckpointError(
            f"checkpoint {path!r} is missing field {err}"
        ) from None
