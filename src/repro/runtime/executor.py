"""Fault-tolerant flow execution: deadlines, bounded retries, typed errors.

``run_flow`` stands in for a commercial P&R invocation — in production the
flaky, hours-long external dependency.  :class:`FlowExecutor` is the
supervision layer between that call and everything that consumes QoR:

- **Per-run deadline** — a run whose wall-clock (per the injectable
  ``clock``) exceeds ``deadline_s`` is a :class:`~repro.errors.FlowTimeout`,
  even if it eventually returned.
- **Bounded retries** — up to ``policy.max_attempts`` tries with
  exponential backoff plus seeded jitter; the jitter stream is derived from
  ``seed`` so retry schedules are reproducible.
- **Typed failure taxonomy** — every failure surfaces as a
  :class:`~repro.errors.FlowError` subclass: :class:`FlowTimeout` /
  :class:`FlowCrash` / :class:`CorruptQoR`.  Unexpected exceptions (a tool
  crash) are wrapped into ``FlowCrash`` with the original as ``__cause__``;
  non-flow :class:`~repro.errors.ReproError`\\ s (e.g. a bad recipe set) are
  configuration bugs and propagate immediately without retry.
- **Result validation** — QoR dicts are re-checked for NaN/inf at this
  boundary and, when ``min_snapshots`` is set, truncated trajectories are
  rejected, so corrupt tool output cannot poison alignment scores.

Callers wanting exceptions use :meth:`FlowExecutor.execute`; callers doing
graceful degradation (the online loop) use :meth:`FlowExecutor.try_execute`
and inspect the returned :class:`FlowRunReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import FlowCrash, FlowError, FlowTimeout, ReproError
from repro.flow.parameters import FlowParameters
from repro.flow.result import FlowResult
from repro.observability import get_registry, get_tracer
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with multiplicative jitter.

    The delay before retry ``n`` (0-based) is
    ``min(max_delay_s, base_delay_s * multiplier**n)`` stretched by a
    uniform jitter in ``[0, jitter)`` of itself — the classic decorrelation
    that keeps a fleet of retrying clients from thundering in lockstep.
    """

    max_attempts: int = 3
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_for(self, retry_index: int, rng) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier ** retry_index)
        return raw * (1.0 + self.jitter * float(rng.random()))


@dataclass
class FlowAttempt:
    """One try of one flow run, successful or not."""

    index: int
    error: Optional[FlowError]
    elapsed_s: float
    backoff_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class FlowRunReport:
    """Everything the executor observed while running one recipe set.

    ``cached`` marks results served from a persistent
    :class:`~repro.runtime.parallel.QoRCache` instead of a live run; such
    reports carry no attempts and zero elapsed time.
    """

    design: str
    result: Optional[FlowResult] = None
    attempts: List[FlowAttempt] = field(default_factory=list)
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def error(self) -> Optional[FlowError]:
        """The terminal failure (``None`` when the run succeeded)."""
        if self.ok or not self.attempts:
            return None
        return self.attempts[-1].error

    @property
    def total_elapsed_s(self) -> float:
        return sum(a.elapsed_s for a in self.attempts)


class FlowExecutor:
    """Supervised, retryable execution of a (possibly flaky) flow callable.

    Args:
        flow_fn: The tool invocation, ``(design, params, seed=...) ->
            FlowResult``.  Defaults to :func:`repro.flow.runner.run_flow`.
            Wrap it with a :class:`~repro.runtime.faults.FaultInjector` to
            rehearse failure modes.
        policy: Retry/backoff schedule.
        deadline_s: Per-attempt wall-clock budget (``None`` = unlimited).
        min_snapshots: When set, results carrying fewer stage snapshots are
            rejected as :class:`~repro.errors.CorruptQoR` (partial report).
        clock: Monotonic time source; inject a
            :class:`~repro.runtime.clock.VirtualClock` in tests.
        sleep: Backoff sleeper; injectable for the same reason.
        seed: Seeds the jitter stream (reproducible retry schedules).
    """

    def __init__(
        self,
        flow_fn: Optional[Callable] = None,
        policy: RetryPolicy = RetryPolicy(),
        deadline_s: Optional[float] = None,
        min_snapshots: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        seed: int = 0,
    ) -> None:
        if flow_fn is None:
            from repro.flow.runner import run_flow

            flow_fn = run_flow
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_s}")
        self.flow_fn = flow_fn
        self.policy = policy
        self.deadline_s = deadline_s
        self.min_snapshots = min_snapshots
        self.clock = clock
        self.sleep = sleep
        self._rng = derive_rng(seed, "flow-executor")

    # ------------------------------------------------------------------
    def execute(self, design, params: FlowParameters = FlowParameters(),
                seed: int = 0) -> FlowResult:
        """Run to success or raise the terminal typed :class:`FlowError`."""
        report = self.try_execute(design, params, seed=seed)
        if report.ok:
            return report.result
        raise report.error

    def try_execute(self, design, params: FlowParameters = FlowParameters(),
                    seed: int = 0) -> FlowRunReport:
        """Run with retries; never raises for tool failures.

        Every run is a ``flow.run`` span with one ``flow.attempt`` child
        per try, and feeds the ``flow_runs_total`` / ``flow_attempts_total``
        / ``flow_retries_total`` / ``flow_failures_total`` counters.
        Instrumentation never consumes RNG or the executor's injected
        clock, so retry schedules are identical with tracing on or off.
        """
        report = FlowRunReport(design=str(design))
        registry = get_registry()
        with get_tracer().span(
            "flow.run", design=report.design, seed=int(seed)
        ) as run_span:
            for index in range(self.policy.max_attempts):
                start = self.clock()
                attempt_span = get_tracer().span("flow.attempt", index=index)
                registry.counter("flow_attempts_total").inc()
                try:
                    with attempt_span:
                        try:
                            result = self._attempt(design, params, seed)
                        except FlowError as err:
                            failure = err
                            attempt_span.record_exception(err)
                        else:
                            failure = None
                except ReproError:
                    # Not tool flakiness — a mis-built netlist / recipe /
                    # config.  Retrying a deterministic bug wastes the whole
                    # backoff budget, so let it propagate untyped (the span
                    # context managers mark flow.run/flow.attempt failed).
                    raise
                except Exception as err:  # noqa: BLE001 - tool death is opaque
                    failure = FlowCrash(f"flow tool crashed: {err!r}")
                    failure.__cause__ = err
                if failure is None:
                    report.attempts.append(
                        FlowAttempt(index, None, self.clock() - start)
                    )
                    report.result = result
                    registry.counter("flow_runs_total").inc(status="ok")
                    run_span.set_attribute("attempts", index + 1)
                    return report
                registry.counter("flow_failures_total").inc(
                    type=type(failure).__name__
                )
                elapsed = self.clock() - start
                backoff = None
                if index + 1 < self.policy.max_attempts:
                    backoff = self.policy.delay_for(index, self._rng)
                report.attempts.append(
                    FlowAttempt(index, failure, elapsed, backoff)
                )
                if backoff is not None:
                    registry.counter("flow_retries_total").inc()
                    self.sleep(backoff)
            registry.counter("flow_runs_total").inc(status="failed")
            run_span.set_attributes(
                attempts=len(report.attempts), status="failed",
            )
            run_span.record_exception(report.error)
        return report

    # ------------------------------------------------------------------
    def _attempt(self, design, params, seed) -> FlowResult:
        """One supervised try: run, enforce deadline, validate output."""
        from repro.errors import CorruptQoR
        from repro.flow.runner import validate_qor

        start = self.clock()
        result = self.flow_fn(design, params, seed=seed)
        elapsed = self.clock() - start
        if self.deadline_s is not None and elapsed > self.deadline_s:
            raise FlowTimeout(
                f"flow run on {design!s} took {elapsed:.1f}s, "
                f"past the {self.deadline_s:.1f}s deadline"
            )
        validate_qor(result.qor, design=result.design)
        if (self.min_snapshots is not None
                and len(result.snapshots) < self.min_snapshots):
            raise CorruptQoR(
                f"flow run on {result.design} returned only "
                f"{len(result.snapshots)} stage snapshots "
                f"(expected >= {self.min_snapshots}): partial report"
            )
        return result
