"""Resilience layer: supervised flow execution, fault injection, checkpoints.

This package is the spine between the learning loops and the (in production,
flaky and hours-long) P&R tool invocation:

- :mod:`repro.runtime.executor` — :class:`FlowExecutor` wraps ``run_flow``
  with per-run deadlines, bounded retries with exponential backoff + seeded
  jitter, and a typed failure taxonomy (``FlowTimeout`` / ``FlowCrash`` /
  ``CorruptQoR``, all :class:`~repro.errors.FlowError`).
- :mod:`repro.runtime.faults` — a deterministic, seedable
  :class:`FaultInjector` that makes the simulated tool misbehave on demand
  so every failure mode is testable.
- :mod:`repro.runtime.checkpoint` — atomic (temp file + ``os.replace``)
  training checkpoints enabling bit-identical crash/resume for offline
  alignment and the online loop.
- :mod:`repro.runtime.clock` — injectable virtual time so none of the above
  ever blocks a test on real wall-clock.
- :mod:`repro.runtime.parallel` — :class:`ParallelFlowExecutor` fans flow
  batches out over a process pool (deterministic at any worker count) and
  :class:`QoRCache` persists successful results on disk so repeated
  evaluations are free.
- :mod:`repro.runtime.session` — :class:`FlowSession` composes all of the
  above (policy, pool, cache, faults, tracing) behind one batch-first
  ``evaluate(jobs)`` API configured by a typed, validated
  :class:`RuntimeConfig`.  Every flow consumer in the repo goes through a
  session; nothing outside this package constructs the executors directly.

See ``docs/architecture.md`` for how the pieces compose and
``docs/robustness.md`` for the resilience story.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    TrainingCheckpoint,
    atomic_pickle,
    checkpoint_digest,
    intern_keys,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.clock import RecordingSleep, VirtualClock
from repro.runtime.executor import (
    FlowAttempt,
    FlowExecutor,
    FlowRunReport,
    RetryPolicy,
)
from repro.errors import RuntimeConfigError, WorkerCrash, WorkerPoolError
from repro.runtime.faults import (
    IN_TOOL_KINDS,
    FaultInjector,
    FaultKind,
    SimulatedToolCrash,
    SimulatedWorkerDeath,
)
from repro.runtime.parallel import (
    FaultPlan,
    FlowJob,
    ParallelFlowExecutor,
    QoRCache,
    qor_cache_key,
)
from repro.runtime.session import (
    FlowOutcome,
    FlowSession,
    RuntimeConfig,
    warn_legacy_runtime_kwargs,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "IN_TOOL_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FlowAttempt",
    "FlowExecutor",
    "FlowJob",
    "FlowOutcome",
    "FlowRunReport",
    "FlowSession",
    "ParallelFlowExecutor",
    "QoRCache",
    "RecordingSleep",
    "RetryPolicy",
    "RuntimeConfig",
    "RuntimeConfigError",
    "SimulatedToolCrash",
    "SimulatedWorkerDeath",
    "TrainingCheckpoint",
    "VirtualClock",
    "WorkerCrash",
    "WorkerPoolError",
    "atomic_pickle",
    "checkpoint_digest",
    "intern_keys",
    "load_checkpoint",
    "qor_cache_key",
    "save_checkpoint",
    "warn_legacy_runtime_kwargs",
]
