"""Terminal visualization: ASCII heatmaps and sparklines (no matplotlib).

Renders the simulator's 2-D fields (congestion, density) and 1-D series
(online trajectories) directly in a terminal — used by the CLI's
``run-flow`` deep-dive and convenient in headless environments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"
_SPARKS = "▁▂▃▄▅▆▇█"


def ascii_heatmap(
    grid: np.ndarray,
    title: str = "",
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    legend: bool = True,
) -> str:
    """Render a 2-D array as an ASCII shade map (row 0 at the bottom).

    Values map linearly onto ten shade characters; NaNs render as '?'.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError(f"expected 2-D grid, got shape {grid.shape}")
    finite = grid[np.isfinite(grid)]
    low = vmin if vmin is not None else (finite.min() if finite.size else 0.0)
    high = vmax if vmax is not None else (finite.max() if finite.size else 1.0)
    span = max(high - low, 1e-12)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in grid[::-1]:
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append("?")
                continue
            level = int(np.clip((value - low) / span, 0.0, 1.0)
                        * (len(_SHADES) - 1))
            chars.append(_SHADES[level])
        lines.append("|" + "".join(chars) + "|")
    if legend:
        lines.append(f"scale: '{_SHADES[0]}'={low:.3g} .. "
                     f"'{_SHADES[-1]}'={high:.3g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a numeric series."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return ""
    low, high = float(array.min()), float(array.max())
    span = max(high - low, 1e-12)
    return "".join(
        _SPARKS[int(np.clip((v - low) / span, 0, 1) * (len(_SPARKS) - 1))]
        for v in array
    )


def trajectory_panel(
    labels: Sequence[str], series: Sequence[Sequence[float]]
) -> str:
    """Aligned multi-series sparkline panel with first/last annotations."""
    if len(labels) != len(series):
        raise ValueError("labels and series length mismatch")
    width = max((len(label) for label in labels), default=0)
    lines = []
    for label, values in zip(labels, series):
        values = list(values)
        if not values:
            lines.append(f"{label:<{width}}  (empty)")
            continue
        lines.append(
            f"{label:<{width}}  {sparkline(values)}  "
            f"{values[0]:.3g} -> {values[-1]:.3g}"
        )
    return "\n".join(lines)
