"""The batched, hot-swappable recommendation service.

:class:`RecommendationService` composes the serving layer:

- a :class:`~repro.serving.scheduler.MicroBatcher` queueing requests with
  max-batch-size / max-wait knobs, deadlines and admission control;
- the vectorized :func:`~repro.serving.batch_decode.batched_beam_search`
  decoding every beam of every dispatched request in one
  ``batched_logits`` call per step;
- a :class:`~repro.serving.cache.ResultCache` (LRU, keyed on quantized
  insight + k + model version);
- a :class:`~repro.serving.registry.ModelRegistry` whose atomic hot-swap
  invalidates the cache;
- a :class:`~repro.serving.metrics.ServingMetrics` set surfaced through
  :meth:`RecommendationService.stats`.

The service is synchronous and clock-driven: ``submit`` enqueues and
returns a :class:`~repro.serving.scheduler.Ticket`; ``poll`` dispatches at
most one due batch; ``run_until_idle`` drives the queue dry, sleeping (via
the injectable ``sleep``) until the next batch is due.  With the default
``time.monotonic``/``time.sleep`` pair this serves real traffic from a
driver loop; with :class:`~repro.runtime.clock.VirtualClock` every policy
decision is deterministic and instant in tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.recommender import InsightAlign, Recommendation
from repro.observability import get_tracer
from repro.serving.batch_decode import batched_beam_search
from repro.serving.cache import ResultCache
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry, ModelSource
from repro.serving.scheduler import (
    MicroBatcher,
    RequestStatus,
    ServingConfig,
    Ticket,
)

INITIAL_VERSION = "v1"


class RecommendationService:
    """Serve top-K recipe-set recommendations under heavy concurrency."""

    def __init__(
        self,
        model: Union[InsightAlign, ModelRegistry],
        config: ServingConfig = ServingConfig(),
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        cache: Optional[ResultCache] = None,
        service_id: Optional[str] = None,
    ) -> None:
        """``cache`` is the shared-cache hook: pass an external
        :class:`ResultCache` (e.g. a cluster's shared L2) and the service
        uses it instead of building a private L1 — keys embed the model
        version, so sharing across services is always coherent.
        ``service_id`` pins the metrics label (auto ``svcN`` otherwise)."""
        self.config = config
        self.clock = clock
        self.sleep = sleep
        if isinstance(model, ModelRegistry):
            self.registry = model
        else:
            self.registry = ModelRegistry()
            self.registry.register(INITIAL_VERSION, model)
            self.registry.activate(INITIAL_VERSION)
        self.metrics = ServingMetrics(service_id=service_id)
        self.cache = cache if cache is not None else ResultCache(
            capacity=config.cache_capacity,
            insight_decimals=config.insight_decimals,
        )
        self.registry.subscribe(self._on_swap)
        self._batcher = MicroBatcher(config)
        self._next_id = 0

    # -- model lifecycle ------------------------------------------------
    def register_model(self, version: str, source: ModelSource) -> None:
        """Make a new model version available for hot-swap."""
        self.registry.register(version, source)

    def hot_swap(self, version: str) -> str:
        """Atomically activate ``version``; the result cache is dropped."""
        self.registry.activate(version)
        return version

    def _on_swap(self, version: str) -> None:
        self.cache.invalidate()
        self.metrics.hot_swaps.inc()

    # -- request path ---------------------------------------------------
    def submit(
        self,
        insight: np.ndarray,
        k: int = 5,
        deadline_s: Optional[float] = None,
        model_version: Optional[str] = None,
    ) -> Ticket:
        """Enqueue a request; raises ``QueueFullError`` under overload.

        Args:
            insight: The design-insight vector.
            k: Beam width / number of recipe sets wanted.
            deadline_s: Seconds from now after which the request must not
                be served (falls back to ``config.default_deadline_s``).
            model_version: Pin this request to a registered (not
                necessarily active) model version — the canary/shadow
                hook.  ``None`` serves on whatever version is active at
                dispatch time.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        now = self.clock()
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        ticket = Ticket(
            request_id=self._next_id,
            insight=np.asarray(insight, dtype=np.float64).copy(),
            k=int(k),
            submitted_at=now,
            deadline_at=None if deadline_s is None else now + deadline_s,
            pinned_version=model_version,
        )
        try:
            self._batcher.submit(ticket)
        except Exception:
            self.metrics.rejected.inc()
            raise
        self._next_id += 1
        self.metrics.submitted.inc()
        tracer = get_tracer()
        if tracer.enabled:
            # A detached span covering the request's whole lifecycle:
            # admission here, batch decode and response in poll().
            ticket._span = tracer.start_span(
                "serve.request", request_id=ticket.request_id, k=ticket.k
            )
        return ticket

    @property
    def queue_depth(self) -> int:
        return self._batcher.depth

    # -- dispatch -------------------------------------------------------
    def poll(self, force: bool = False) -> int:
        """Dispatch at most one due batch; returns requests settled.

        Settled = completed or expired.  With ``force`` a partial batch
        dispatches immediately regardless of ``max_wait_s``.
        """
        now = self.clock()
        depth_before = self._batcher.depth
        expired_tickets = self._batcher.expire_due(now)
        for ticket in expired_tickets:
            self._end_request_span(ticket, "expired")
        batch = self._batcher.take_batch(now, force=force)
        expired = len(expired_tickets)
        if expired:
            self.metrics.expired.inc(expired)
        if not batch:
            return expired

        self.metrics.batches.inc()
        self.metrics.queue_depth.observe(depth_before)
        self.metrics.batch_occupancy.observe(
            len(batch) / self.config.max_batch_size
        )
        for ticket in batch:
            self.metrics.queue_wait_s.observe(now - ticket.submitted_at)

        tracer = get_tracer()
        with tracer.span(
            "serve.batch", size=len(batch), queue_depth=depth_before
        ) as batch_span:
            active_version, _ = self.registry.active()
            misses: List[Ticket] = []
            # Pinned requests (canary/shadow) decode on their pinned
            # version; everyone else on the active one.  Cache keys use
            # the resolved version, so pinned and active traffic never
            # cross-contaminate entries.
            for ticket in batch:
                resolved = ticket.pinned_version or active_version
                key = self.cache.key(resolved, ticket.insight, ticket.k)
                cached = self.cache.get(key)
                if cached is not None:
                    ticket._result = cached
                    ticket.cache_hit = True
                    self.metrics.cache_hits.inc()
                else:
                    misses.append(ticket)
                    self.metrics.cache_misses.inc()
            batch_span.set_attribute("cache_hits", len(batch) - len(misses))

            if misses:
                groups: "OrderedDict[str, List[Ticket]]" = OrderedDict()
                for ticket in misses:
                    resolved = ticket.pinned_version or active_version
                    groups.setdefault(resolved, []).append(ticket)
                with tracer.span(
                    "serve.decode", rows=len(misses), versions=len(groups)
                ):
                    for resolved, group in groups.items():
                        self._decode_group(resolved, group)
                if self.config.decode_latency_s:
                    self.sleep(self.config.decode_latency_s)

        done_at = self.clock()
        for ticket in batch:
            ticket.status = RequestStatus.COMPLETED
            ticket.completed_at = done_at
            self.metrics.completed.inc()
            self.metrics.latency_s.observe(done_at - ticket.submitted_at)
            self._end_request_span(ticket, "completed")
        return expired + len(batch)

    def _decode_group(self, version: str, group: List[Ticket]) -> None:
        """Batched beam search for every ticket resolved to ``version``."""
        recommender = self.registry.resolve(version)
        insights = np.stack([t.insight for t in group])
        widths = [t.k for t in group]
        decoded = batched_beam_search(recommender.model, insights, widths)
        names = recommender.catalog.names()
        for ticket, candidates in zip(group, decoded):
            result = [
                Recommendation(
                    recipe_set=bits,
                    log_prob=log_prob,
                    recipe_names=[
                        names[i] for i, bit in enumerate(bits) if bit
                    ],
                )
                for bits, log_prob in candidates
            ]
            ticket._result = result
            self.cache.put(
                self.cache.key(version, ticket.insight, ticket.k), result
            )

    @staticmethod
    def _end_request_span(ticket: Ticket, outcome: str) -> None:
        span = ticket._span
        if span is not None:
            span.set_attribute("outcome", outcome)
            span.set_attribute("cache_hit", ticket.cache_hit)
            if outcome == "expired":
                span.status = "error"
                span.error = "DeadlineExceededError: expired before dispatch"
            span.end()
            ticket._span = None

    def run_until_idle(self, max_batches: int = 10_000) -> int:
        """Drive the queue dry; returns requests settled.

        Sleeps (through the injectable ``sleep``) whenever no batch is due
        yet, so a partial batch still dispatches after ``max_wait_s``.
        """
        settled = 0
        for _ in range(max_batches):
            if self._batcher.depth == 0:
                return settled
            processed = self.poll()
            settled += processed
            if processed == 0:
                wait = self._batcher.next_due_in(self.clock())
                if wait:
                    self.sleep(wait)
        raise RuntimeError(f"queue not drained after {max_batches} batches")

    def flush(self) -> int:
        """Force-dispatch everything queued (ignores ``max_wait_s``)."""
        settled = 0
        while self._batcher.depth:
            settled += self.poll(force=True)
        return settled

    # -- observability --------------------------------------------------
    def stats(self) -> dict:
        """A point-in-time snapshot of every serving metric."""
        snapshot = self.metrics.snapshot()
        snapshot["model_version"] = self.registry.active_version
        snapshot["queue_depth_now"] = self._batcher.depth
        snapshot["cache"].update(self.cache.stats())
        return snapshot
