"""Serving metrics, backed by the unified observability registry.

Historically this module carried its own ad-hoc ``Counter`` / ``Histogram``
implementations; those now live in :mod:`repro.observability.metrics` (the
classes are re-exported here unchanged in behaviour for the unlabelled
case) and :class:`ServingMetrics` is a thin facade: every counter and
histogram is a label-bound child of a process-wide ``serving_*`` family,
labelled ``service=<id>`` so several co-resident services stay separable
in one Prometheus scrape while :meth:`ServingMetrics.snapshot` — and
therefore ``RecommendationService.stats()`` — keeps its original
plain-dict shape exactly.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Set

# Back-compat re-exports: the serving layer's original metric primitives
# are now the registry's (identical unlabelled behaviour).
from repro.observability.metrics import (
    Counter,  # noqa: F401
    Histogram,  # noqa: F401
    MetricsRegistry,
    get_registry,
)

_SERVICE_IDS = itertools.count()

#: The serving counter families, as (snapshot path, family name) pairs —
#: the single source of truth for both per-service snapshots and the
#: cluster-level aggregation.
_COUNTER_FAMILIES = (
    (("requests", "submitted"), "serving_requests_submitted_total"),
    (("requests", "completed"), "serving_requests_completed_total"),
    (("requests", "expired"), "serving_requests_expired_total"),
    (("requests", "rejected"), "serving_requests_rejected_total"),
    (("batches",), "serving_batches_total"),
    (("hot_swaps",), "serving_hot_swaps_total"),
    (("cache", "hits"), "serving_cache_hits_total"),
    (("cache", "misses"), "serving_cache_misses_total"),
)

_HISTOGRAM_FAMILIES = (
    ("queue_wait_s", "serving_queue_wait_seconds"),
    ("latency_s", "serving_request_latency_seconds"),
    ("batch_occupancy", "serving_batch_occupancy"),
    ("queue_depth", "serving_queue_depth_at_dispatch"),
)


def used_service_ids(registry: Optional[MetricsRegistry] = None) -> Set[str]:
    """Every ``service=`` label value present in any ``serving_*`` family.

    A fresh :class:`ServingMetrics` must never adopt one of these: binding
    to a label child that already carries a predecessor's counts would
    silently *merge* two services' totals, and any cross-service rollup
    would double-count the shared child.
    """
    reg = registry if registry is not None else get_registry()
    used: Set[str] = set()
    for name in reg.names():
        if not name.startswith("serving_"):
            continue
        family = reg.get(name)
        keys: Iterable = (
            family.summaries() if family.kind == "histogram"
            else family.values()
        )
        for key in keys:
            for label, value in key:
                if label == "service":
                    used.add(value)
    return used


class ServingMetrics:
    """The fixed metric set a :class:`RecommendationService` maintains.

    Args:
        registry: Target :class:`MetricsRegistry`; defaults to the
            process-wide one, so ``repro obs report`` and the Prometheus
            renderer see every service automatically.
        service_id: Label value separating this service's children from
            other services in the same process (auto-assigned ``svcN``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        service_id: Optional[str] = None,
    ) -> None:
        reg = registry if registry is not None else get_registry()
        self.registry = reg
        if service_id is None:
            # Auto ids skip label children the registry already carries
            # (a reused registry outliving the module counter — fresh
            # subprocess, reload, or a respawned replica reusing its id)
            # so two services never share — and therefore double-count —
            # one child.
            used = used_service_ids(reg)
            service_id = f"svc{next(_SERVICE_IDS)}"
            while service_id in used:
                service_id = f"svc{next(_SERVICE_IDS)}"
        self.service_id = service_id
        bind = {"service": self.service_id}
        self.submitted = reg.counter(
            "serving_requests_submitted_total", "requests admitted"
        ).bind(**bind)
        # Materialize the child immediately (a zero-increment) so this
        # service's id is visible to used_service_ids() from birth — not
        # only after its first request — keeping auto-id collision
        # avoidance airtight.
        self.submitted.inc(0)
        self.completed = reg.counter(
            "serving_requests_completed_total", "requests served"
        ).bind(**bind)
        self.expired = reg.counter(
            "serving_requests_expired_total", "requests past deadline"
        ).bind(**bind)
        self.rejected = reg.counter(
            "serving_requests_rejected_total", "requests shed at admission"
        ).bind(**bind)
        self.cache_hits = reg.counter(
            "serving_cache_hits_total", "result-cache hits"
        ).bind(**bind)
        self.cache_misses = reg.counter(
            "serving_cache_misses_total", "result-cache misses"
        ).bind(**bind)
        self.batches = reg.counter(
            "serving_batches_total", "micro-batches dispatched"
        ).bind(**bind)
        self.hot_swaps = reg.counter(
            "serving_hot_swaps_total", "model hot-swaps"
        ).bind(**bind)
        self.queue_wait_s = reg.histogram(
            "serving_queue_wait_seconds", "admission-to-dispatch wait"
        ).bind(**bind)
        self.latency_s = reg.histogram(
            "serving_request_latency_seconds", "admission-to-response"
        ).bind(**bind)
        self.batch_occupancy = reg.histogram(
            "serving_batch_occupancy", "batch fill fraction at dispatch"
        ).bind(**bind)
        self.queue_depth = reg.histogram(
            "serving_queue_depth_at_dispatch", "queue depth at dispatch"
        ).bind(**bind)

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view; safe to mutate, print, or serialize."""
        hit = self.cache_hits.value
        miss = self.cache_misses.value
        return {
            "requests": {
                "submitted": self.submitted.value,
                "completed": self.completed.value,
                "expired": self.expired.value,
                "rejected": self.rejected.value,
            },
            "batches": self.batches.value,
            "hot_swaps": self.hot_swaps.value,
            "cache": {
                "hits": hit,
                "misses": miss,
                "hit_rate": hit / (hit + miss) if hit + miss else 0.0,
            },
            "queue_wait_s": self.queue_wait_s.summary(),
            "latency_s": self.latency_s.summary(),
            "batch_occupancy": self.batch_occupancy.summary(),
            "queue_depth": self.queue_depth.summary(),
        }


def aggregate_serving_snapshot(
    registry: Optional[MetricsRegistry] = None,
    services: Optional[Iterable[str]] = None,
) -> Dict[str, object]:
    """Sum the ``serving_*`` families across services — the cluster view.

    Returns the exact :meth:`ServingMetrics.snapshot` dict shape (plus a
    ``services`` list), with every counter summed over each selected
    ``service=`` label child exactly once and every histogram merged
    sample-exactly through
    :meth:`~repro.observability.metrics.Histogram.aggregate_summary` —
    so ``latency_s["p99"]`` is the percentile of the *pooled* samples,
    not an average of per-service percentiles.

    ``services`` restricts the rollup (e.g. a cluster summing only its
    replicas' ids); ``None`` aggregates every service in the registry.
    """
    reg = registry if registry is not None else get_registry()
    wanted = None if services is None else {str(s) for s in services}

    def match(labels: Dict[str, str]) -> bool:
        service = labels.get("service")
        if service is None:
            return False
        return wanted is None or service in wanted

    snapshot: Dict[str, object] = {
        "services": sorted(
            wanted if wanted is not None else used_service_ids(reg)
        ),
        "requests": {},
        "cache": {},
    }
    for path, name in _COUNTER_FAMILIES:
        family = reg.get(name)
        value = family.aggregate(match) if family is not None else 0
        node = snapshot
        for part in path[:-1]:
            node = node.setdefault(part, {})
        node[path[-1]] = value
    hits = snapshot["cache"]["hits"]
    misses = snapshot["cache"]["misses"]
    snapshot["cache"]["hit_rate"] = (
        hits / (hits + misses) if hits + misses else 0.0
    )
    for key, name in _HISTOGRAM_FAMILIES:
        family = reg.get(name)
        snapshot[key] = (
            family.aggregate_summary(match) if family is not None
            else Histogram(name).aggregate_summary()
        )
    return snapshot
