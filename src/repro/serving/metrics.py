"""Counters and histograms for the serving layer.

Deliberately dependency-free and allocation-light: a :class:`Counter` is an
integer, a :class:`Histogram` keeps running aggregates (count / sum / min /
max) exactly and a bounded reservoir of recent samples for percentiles.
Snapshots are plain dicts so ``RecommendationService.stats()`` can be
serialized or printed without dragging service internals along.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Latency/occupancy distribution with exact aggregates.

    Count, sum, min and max are exact over the histogram's lifetime;
    percentiles are computed over the ``max_samples`` most recent
    observations (a sliding window, which is what a serving dashboard
    wants anyway).
    """

    def __init__(self, name: str, max_samples: int = 8192) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._samples: deque = deque(maxlen=max_samples)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) over the recent-sample window."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=float), q))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self._count,
            "mean": self.mean,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
        }


class ServingMetrics:
    """The fixed metric set a :class:`RecommendationService` maintains."""

    def __init__(self) -> None:
        self.submitted = Counter("requests_submitted")
        self.completed = Counter("requests_completed")
        self.expired = Counter("requests_expired")
        self.rejected = Counter("requests_rejected")
        self.cache_hits = Counter("cache_hits")
        self.cache_misses = Counter("cache_misses")
        self.batches = Counter("batches_dispatched")
        self.hot_swaps = Counter("model_hot_swaps")
        self.queue_wait_s = Histogram("queue_wait_seconds")
        self.latency_s = Histogram("request_latency_seconds")
        self.batch_occupancy = Histogram("batch_occupancy")
        self.queue_depth = Histogram("queue_depth_at_dispatch")

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view; safe to mutate, print, or serialize."""
        hit = self.cache_hits.value
        miss = self.cache_misses.value
        return {
            "requests": {
                "submitted": self.submitted.value,
                "completed": self.completed.value,
                "expired": self.expired.value,
                "rejected": self.rejected.value,
            },
            "batches": self.batches.value,
            "hot_swaps": self.hot_swaps.value,
            "cache": {
                "hits": hit,
                "misses": miss,
                "hit_rate": hit / (hit + miss) if hit + miss else 0.0,
            },
            "queue_wait_s": self.queue_wait_s.summary(),
            "latency_s": self.latency_s.summary(),
            "batch_occupancy": self.batch_occupancy.summary(),
            "queue_depth": self.queue_depth.summary(),
        }
