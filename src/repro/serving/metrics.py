"""Serving metrics, backed by the unified observability registry.

Historically this module carried its own ad-hoc ``Counter`` / ``Histogram``
implementations; those now live in :mod:`repro.observability.metrics` (the
classes are re-exported here unchanged in behaviour for the unlabelled
case) and :class:`ServingMetrics` is a thin facade: every counter and
histogram is a label-bound child of a process-wide ``serving_*`` family,
labelled ``service=<id>`` so several co-resident services stay separable
in one Prometheus scrape while :meth:`ServingMetrics.snapshot` — and
therefore ``RecommendationService.stats()`` — keeps its original
plain-dict shape exactly.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

# Back-compat re-exports: the serving layer's original metric primitives
# are now the registry's (identical unlabelled behaviour).
from repro.observability.metrics import (
    Counter,  # noqa: F401
    Histogram,  # noqa: F401
    MetricsRegistry,
    get_registry,
)

_SERVICE_IDS = itertools.count()


class ServingMetrics:
    """The fixed metric set a :class:`RecommendationService` maintains.

    Args:
        registry: Target :class:`MetricsRegistry`; defaults to the
            process-wide one, so ``repro obs report`` and the Prometheus
            renderer see every service automatically.
        service_id: Label value separating this service's children from
            other services in the same process (auto-assigned ``svcN``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        service_id: Optional[str] = None,
    ) -> None:
        reg = registry if registry is not None else get_registry()
        self.registry = reg
        self.service_id = (
            service_id if service_id is not None
            else f"svc{next(_SERVICE_IDS)}"
        )
        bind = {"service": self.service_id}
        self.submitted = reg.counter(
            "serving_requests_submitted_total", "requests admitted"
        ).bind(**bind)
        self.completed = reg.counter(
            "serving_requests_completed_total", "requests served"
        ).bind(**bind)
        self.expired = reg.counter(
            "serving_requests_expired_total", "requests past deadline"
        ).bind(**bind)
        self.rejected = reg.counter(
            "serving_requests_rejected_total", "requests shed at admission"
        ).bind(**bind)
        self.cache_hits = reg.counter(
            "serving_cache_hits_total", "result-cache hits"
        ).bind(**bind)
        self.cache_misses = reg.counter(
            "serving_cache_misses_total", "result-cache misses"
        ).bind(**bind)
        self.batches = reg.counter(
            "serving_batches_total", "micro-batches dispatched"
        ).bind(**bind)
        self.hot_swaps = reg.counter(
            "serving_hot_swaps_total", "model hot-swaps"
        ).bind(**bind)
        self.queue_wait_s = reg.histogram(
            "serving_queue_wait_seconds", "admission-to-dispatch wait"
        ).bind(**bind)
        self.latency_s = reg.histogram(
            "serving_request_latency_seconds", "admission-to-response"
        ).bind(**bind)
        self.batch_occupancy = reg.histogram(
            "serving_batch_occupancy", "batch fill fraction at dispatch"
        ).bind(**bind)
        self.queue_depth = reg.histogram(
            "serving_queue_depth_at_dispatch", "queue depth at dispatch"
        ).bind(**bind)

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view; safe to mutate, print, or serialize."""
        hit = self.cache_hits.value
        miss = self.cache_misses.value
        return {
            "requests": {
                "submitted": self.submitted.value,
                "completed": self.completed.value,
                "expired": self.expired.value,
                "rejected": self.rejected.value,
            },
            "batches": self.batches.value,
            "hot_swaps": self.hot_swaps.value,
            "cache": {
                "hits": hit,
                "misses": miss,
                "hit_rate": hit / (hit + miss) if hit + miss else 0.0,
            },
            "queue_wait_s": self.queue_wait_s.summary(),
            "latency_s": self.latency_s.summary(),
            "batch_occupancy": self.batch_occupancy.summary(),
            "queue_depth": self.queue_depth.summary(),
        }
