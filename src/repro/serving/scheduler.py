"""Dynamic micro-batching: the request queue and batch-formation policy.

Requests accumulate in a bounded FIFO queue.  A batch dispatches when either
(a) ``max_batch_size`` requests are waiting, or (b) the oldest waiting
request has waited ``max_wait_s`` — the classic throughput/latency knob
pair.  Admission control is strict: a full queue rejects new submissions
with :class:`~repro.errors.QueueFullError` so overload sheds load at the
edge instead of growing an unbounded backlog.  Per-request deadlines are
enforced at dispatch time: a request whose deadline has passed is expired,
never decoded.

Time is injectable (``clock`` returns seconds, monotonic), so the whole
policy is testable deterministically with
:class:`repro.runtime.clock.VirtualClock` — no test sleeps on real wall
time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, List, Optional

import numpy as np

from repro.errors import DeadlineExceededError, QueueFullError, ServingError


class RequestStatus(Enum):
    PENDING = "pending"
    COMPLETED = "completed"
    EXPIRED = "expired"


@dataclass
class ServingConfig:
    """Knobs for the micro-batching service.

    Attributes:
        max_batch_size: Most requests decoded in one ``batched_logits``
            frontier; also the occupancy denominator in metrics.
        max_wait_s: Longest the oldest request may wait before a partial
            batch dispatches anyway (the latency bound under light load).
        max_queue_depth: Admission-control limit; submissions beyond this
            raise :class:`QueueFullError`.
        default_deadline_s: Deadline applied to requests that do not carry
            their own (``None`` = no deadline).
        cache_capacity: LRU result-cache entries (0 disables caching).
        insight_decimals: Cache-key quantization of the insight vector.
        decode_latency_s: Wall-clock latency added (through the service's
            injectable ``sleep``) per decoded batch, modeling an attached
            accelerator's round-trip — the regime where multi-replica
            serving scales regardless of host core count.  Cache hits do
            not pay it.  0 (the default) for pure in-host decode.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.005
    max_queue_depth: int = 64
    default_deadline_s: Optional[float] = None
    cache_capacity: int = 256
    insight_decimals: int = 6
    decode_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ServingError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.max_queue_depth < 1:
            raise ServingError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.decode_latency_s < 0:
            raise ServingError(
                f"decode_latency_s must be >= 0, got {self.decode_latency_s}"
            )


# eq=False: tickets are identity objects (the insight ndarray would make a
# generated __eq__ ambiguous, and two requests are never "the same" anyway).
@dataclass(eq=False)
class Ticket:
    """A submitted request: the caller's handle to its eventual result."""

    request_id: int
    insight: np.ndarray
    k: int
    submitted_at: float
    deadline_at: Optional[float] = None
    # Canary/shadow hook: serve this request with a specific *registered*
    # model version instead of the active one (None = active).  The
    # active slot is untouched; see ModelRegistry.resolve().
    pinned_version: Optional[str] = None
    status: RequestStatus = RequestStatus.PENDING
    completed_at: Optional[float] = None
    cache_hit: bool = False
    _result: Optional[List] = field(default=None, repr=False)
    # The request's live ``serve.request`` span (admission -> response),
    # attached by the service when tracing is enabled.
    _span: Optional[object] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.status is not RequestStatus.PENDING

    def result(self) -> List:
        """The recommendations, or a typed error for unserved requests."""
        if self.status is RequestStatus.EXPIRED:
            raise DeadlineExceededError(
                f"request {self.request_id} expired before it was served"
            )
        if self.status is RequestStatus.PENDING:
            raise ServingError(
                f"request {self.request_id} is still pending; "
                "drive the service (poll/run_until_idle) first"
            )
        return self._result


class MicroBatcher:
    """Bounded FIFO queue + batch formation policy (pure, clock-driven)."""

    def __init__(self, config: ServingConfig) -> None:
        self.config = config
        self._queue: Deque[Ticket] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def submit(self, ticket: Ticket) -> None:
        """Admit a request or reject it with backpressure."""
        if len(self._queue) >= self.config.max_queue_depth:
            raise QueueFullError(
                f"queue full ({self.config.max_queue_depth} requests); "
                "retry after the service drains"
            )
        self._queue.append(ticket)

    # ------------------------------------------------------------------
    def expire_due(self, now: float) -> List[Ticket]:
        """Remove and mark every queued request whose deadline passed."""
        expired = [
            t for t in self._queue
            if t.deadline_at is not None and now >= t.deadline_at
        ]
        if expired:
            self._queue = deque(t for t in self._queue if t not in expired)
            for ticket in expired:
                ticket.status = RequestStatus.EXPIRED
                ticket.completed_at = now
        return expired

    def ready(self, now: float) -> bool:
        """Should a batch dispatch now?  (Full, or oldest waited enough.)"""
        if not self._queue:
            return False
        if len(self._queue) >= self.config.max_batch_size:
            return True
        oldest = self._queue[0]
        return now - oldest.submitted_at >= self.config.max_wait_s

    def next_due_in(self, now: float) -> Optional[float]:
        """Seconds until the pending batch is due (0 if due; None if idle)."""
        if not self._queue:
            return None
        if self.ready(now):
            return 0.0
        oldest = self._queue[0]
        due = oldest.submitted_at + self.config.max_wait_s
        if oldest.deadline_at is not None:
            due = min(due, oldest.deadline_at)
        return max(0.0, due - now)

    def take_batch(self, now: float, force: bool = False) -> List[Ticket]:
        """Expire overdue requests, then pop a batch if one is due.

        Returns the dispatched tickets (possibly empty when nothing is due
        and ``force`` is false).  Expired tickets are never dispatched.
        """
        self.expire_due(now)
        if not self._queue or (not force and not self.ready(now)):
            return []
        batch = []
        while self._queue and len(batch) < self.config.max_batch_size:
            batch.append(self._queue.popleft())
        return batch
