"""Vectorized decoding: all beams of all in-flight requests in one forward.

The reference ``beam_search`` (:mod:`repro.core.beam`) issues one
full-sequence :meth:`~repro.core.model.InsightAlignModel.logits` call *per
beam per step* — ~K x n unbatched autograd forwards per request, fully
sequentially.  This module advances the whole serving batch at once through
the grad-free :class:`~repro.serving.engine.InferenceEngine`: every beam of
every request is one row of an incremental KV-cached frontier, and each
step is a single batched O(dim^2)-per-row update instead of a full-sequence
tensor-graph forward.

Equivalence: for each request the returned candidates are the same recipe
sets with the same cumulative log probabilities (within floating-point
accumulation noise, < 1e-9) as the reference per-beam loop, in the same
canonical order — score descending, log-prob ties broken by the recipe-set
bit vector descending.  ``tests/test_serving_batch_decode.py`` proves this
against :func:`repro.core.beam.beam_search_reference` on seeded models.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.core.model import InsightAlignModel, SOS_TOKEN
from repro.errors import ModelError
from repro.serving.engine import InferenceEngine, step_log_probs


def _as_insight_matrix(model: InsightAlignModel, insights) -> np.ndarray:
    insights = np.asarray(insights, dtype=np.float64)
    if insights.ndim == 1:
        insights = insights.reshape(1, -1)
    if insights.ndim != 2 or insights.shape[1] != model.insight_dims:
        raise ModelError(
            f"insights shape {insights.shape}, expected (R, {model.insight_dims})"
        )
    return insights


def batched_beam_search(
    model: InsightAlignModel,
    insights,
    beam_widths: Union[int, Sequence[int]],
) -> List[List[tuple]]:
    """Beam search for many requests with one fused frontier step per t.

    Args:
        model: The aligned policy.
        insights: ``(R, insight_dims)`` — one insight vector per request
            (a single 1-D vector is treated as ``R = 1``).
        beam_widths: Beam width per request — a scalar applied to all
            requests, or one width per row.

    Returns:
        One list per request of ``(recipe_set, log_prob)`` pairs, best
        first, ``beam_widths[r]`` entries each.  Ordering is canonical:
        log-prob descending, ties broken by recipe-set bits descending.
    """
    insights = _as_insight_matrix(model, insights)
    requests = insights.shape[0]
    if np.isscalar(beam_widths):
        widths = [int(beam_widths)] * requests
    else:
        widths = [int(w) for w in beam_widths]
    if len(widths) != requests:
        raise ValueError(f"{len(widths)} beam widths for {requests} requests")
    if any(w < 1 for w in widths):
        raise ValueError(f"beam widths must be >= 1, got {widths}")
    if requests == 0:
        return []

    n = model.n_recipes
    engine = InferenceEngine(model)
    # Flat frontier: row b is one beam; ``owner[b]`` is its request index.
    state = engine.start(insights)
    owner = np.arange(requests, dtype=np.intp)
    tokens = np.full(requests, SOS_TOKEN, dtype=np.int64)
    prefixes = np.zeros((requests, n), dtype=np.int64)
    scores = np.zeros(requests, dtype=np.float64)
    # Prefix bits packed big-endian (step 0 most significant) so that
    # descending pack order == descending lexicographic bit order — the
    # canonical tie-break.  Python ints, so any n works.
    packs: List[int] = [0] * requests

    for t in range(n):
        logits = engine.step(state, tokens)
        log_p1, log_p0 = step_log_probs(logits)
        sel_scores = scores + log_p1
        skip_scores = scores + log_p0

        parents: List[int] = []
        new_owner: List[int] = []
        new_rows: List[np.ndarray] = []
        new_scores: List[float] = []
        new_packs: List[int] = []
        new_tokens: List[int] = []
        for r in range(requests):
            rows = np.flatnonzero(owner == r)
            candidates = []
            for b in rows:
                pack = packs[b]
                candidates.append((sel_scores[b], pack << 1 | 1, b, 1))
                candidates.append((skip_scores[b], pack << 1, b, 0))
            candidates.sort(key=lambda c: (-c[0], -c[1]))
            for score, pack, b, bit in candidates[: widths[r]]:
                row = prefixes[b].copy()
                row[t] = bit
                parents.append(b)
                new_owner.append(r)
                new_rows.append(row)
                new_scores.append(float(score))
                new_packs.append(pack)
                new_tokens.append(bit)
        state = state.gather(parents)
        owner = np.asarray(new_owner, dtype=np.intp)
        prefixes = np.asarray(new_rows, dtype=np.int64)
        scores = np.asarray(new_scores, dtype=np.float64)
        packs = new_packs
        # The input token at step t+1 is the decision taken at step t.
        tokens = np.asarray(new_tokens, dtype=np.int64)

    results: List[List[tuple]] = [[] for _ in range(requests)]
    for b, r in enumerate(owner):
        results[r].append((tuple(int(x) for x in prefixes[b]), float(scores[b])))
    return results


def batched_greedy_decode(model: InsightAlignModel, insights) -> List[tuple]:
    """Width-1 decode for every request — one candidate per row."""
    return [
        candidates[0]
        for candidates in batched_beam_search(model, insights, beam_widths=1)
    ]


def batched_sample_decode(
    model: InsightAlignModel,
    insights,
    rngs: Sequence[np.random.Generator],
    temperature: float = 1.0,
) -> List[tuple]:
    """Ancestral sampling for many requests, one fused step per position.

    Each request consumes exactly one ``rng.random()`` draw per step from
    its own generator — the same consumption pattern as the reference
    single-request sampler, so seeded draws reproduce bit-identically.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    insights = _as_insight_matrix(model, insights)
    requests = insights.shape[0]
    if len(rngs) != requests:
        raise ValueError(f"{len(rngs)} generators for {requests} requests")
    if requests == 0:
        return []

    n = model.n_recipes
    engine = InferenceEngine(model)
    state = engine.start(insights)
    tokens = np.full(requests, SOS_TOKEN, dtype=np.int64)
    decisions = np.zeros((requests, n), dtype=np.int64)
    totals = np.zeros(requests, dtype=np.float64)
    for t in range(n):
        logits = engine.step(state, tokens)
        z = np.clip(logits / temperature, -60.0, 60.0)
        p_one = 1.0 / (1.0 + np.exp(-z))
        for r in range(requests):
            choice = 1 if rngs[r].random() < p_one[r] else 0
            decisions[r, t] = choice
            totals[r] += np.log(p_one[r] if choice == 1 else 1.0 - p_one[r])
        tokens = decisions[:, t]
    return [
        (tuple(int(x) for x in decisions[r]), float(totals[r]))
        for r in range(requests)
    ]
