"""Cluster admission control: typed load shedding at the gateway edge.

The single-service :class:`~repro.serving.scheduler.MicroBatcher` already
bounds its own queue (``QueueFullError``), but a cluster needs the check
*before* routing: once the number of accepted-but-unfinished requests
crosses the shed watermark, new arrivals are rejected immediately with
:class:`~repro.errors.OverloadedError` — the caller learns about overload
in microseconds, not by waiting out a deadline in a queue that will never
reach it.  Below the watermark admission always succeeds, which is what
the benchmark's shed-rate-zero gate asserts.

The controller is deliberately tiny and lock-free (gateway admission runs
on one event loop); it owns the watermark policy and the shed accounting,
nothing else.
"""

from __future__ import annotations

from repro.errors import OverloadedError, ServingError


class AdmissionController:
    """Watermark-based admission for the cluster gateway.

    Args:
        shed_watermark: Most accepted-but-unfinished requests the cluster
            will carry; an arrival finding the cluster at (or past) the
            watermark is shed.
    """

    def __init__(self, shed_watermark: int) -> None:
        if shed_watermark < 1:
            raise ServingError(
                f"shed_watermark must be >= 1, got {shed_watermark}"
            )
        self.shed_watermark = int(shed_watermark)
        self.admitted = 0
        self.shed = 0

    def admit(self, outstanding: int) -> None:
        """Admit an arrival or raise :class:`OverloadedError`.

        ``outstanding`` is the caller-maintained count of accepted
        requests not yet settled (the controller never tracks it itself:
        settling happens on the event loop in several places, and one
        authoritative counter beats two drifting ones).
        """
        if outstanding >= self.shed_watermark:
            self.shed += 1
            raise OverloadedError(
                f"cluster overloaded: {outstanding} requests in flight "
                f">= shed watermark {self.shed_watermark}; retry with "
                "backoff"
            )
        self.admitted += 1

    def shed_rate(self) -> float:
        """Fraction of arrivals shed (0.0 when nothing arrived yet)."""
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0

    def stats(self) -> dict:
        return {
            "shed_watermark": self.shed_watermark,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate": self.shed_rate(),
        }
