"""Grad-free incremental inference engine for the InsightAlign model.

Training goes through the autograd :class:`~repro.nn.tensor.Tensor` graph;
serving does not need gradients, and it does not need the *full-sequence*
forward the training path performs.  Two structural facts about the Table
III architecture make an exact fast path possible:

1. **Single decoder layer** — position ``t``'s hidden state depends only on
   inputs at positions ``<= t``, and the inputs (token embedding + recipe
   positional code) for decided positions never change during decoding.
   Self-attention keys/values for old positions can therefore be cached and
   only position ``t`` computed per step (the classic KV cache), turning an
   O(n) forward per step into O(1).
2. **Fixed cross-attention memory** — the memory tokens never change during
   decoding, so their key/value projections are computed once per request.
   For the paper's single-token memory the softmax over one key is
   identically 1 whatever the query, and the whole cross-attention block
   constant-folds to ``out_proj(v_proj(insight_embed(insight)))``; for
   multi-token memories (the intention-conditioned model emits two tokens
   via :meth:`InsightAlignModel.memory_tokens`) the engine runs the real
   M-way attention per step — still O(M x dim) against cached projections.

The engine replays the exact op sequence of
:meth:`InsightAlignModel.batched_logits` (same layer-norm formula, same
max-shifted softmax, same masked-softmax semantics — masked positions
underflow to exactly 0 in the reference, which equals simply not attending
to them) on raw numpy arrays, so per-step logits agree with the reference
to float accumulation error (~1e-12; the serving equivalence tests bound
end-to-end sequence log-probs at 1e-9).

Weights are captured as *views* of the model's parameter arrays at
construction — an engine is cheap to build (no copies) and is rebuilt by
the service whenever the model registry hot-swaps.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import InsightAlignModel


class DecodeState:
    """Per-frontier-row incremental state: self-attention KV + constants.

    ``rows`` tracks beam-search branching: ``gather(parents)`` reorders the
    cache so row ``i`` continues the beam that survived selection.
    """

    def __init__(self, keys: np.ndarray, values: np.ndarray,
                 cross: np.ndarray = None, cross_k: np.ndarray = None,
                 cross_v: np.ndarray = None, t: int = 0) -> None:
        self.keys = keys        # (B, n, dim), positions < t are live
        self.values = values    # (B, n, dim)
        # Single-token memory: ``cross`` is the folded (B, dim) constant and
        # cross_k/cross_v are None.  Multi-token memory: ``cross`` is None
        # and cross_k/cross_v hold the (B, M, dim) projected memory.
        self.cross = cross
        self.cross_k = cross_k
        self.cross_v = cross_v
        self.t = t

    @property
    def rows(self) -> int:
        return self.keys.shape[0]

    def gather(self, parents) -> "DecodeState":
        """Reorder/duplicate rows after beam selection (copying caches)."""
        parents = np.asarray(parents, dtype=np.intp)
        return DecodeState(
            keys=self.keys[parents],
            values=self.values[parents],
            cross=None if self.cross is None else self.cross[parents],
            cross_k=None if self.cross_k is None else self.cross_k[parents],
            cross_v=None if self.cross_v is None else self.cross_v[parents],
            t=self.t,
        )


class InferenceEngine:
    """Incremental, gradient-free decoding over a frozen model."""

    def __init__(self, model: InsightAlignModel) -> None:
        self.model = model
        self.n = model.n_recipes
        self.dim = model.dim
        self.scale = 1.0 / np.sqrt(model.dim)
        self.token_table = model.token_embed.weight.data
        self.positions = model._positions

        decoder = model.decoder
        attn = decoder.self_attn
        self.wq = attn.q_proj.weight.data
        self.wk = attn.k_proj.weight.data
        self.wv = attn.v_proj.weight.data
        self.wo = attn.out_proj.weight.data
        self.bo = attn.out_proj.bias.data
        cross = decoder.cross_attn
        self.cross_wq = cross.q_proj.weight.data
        self.cross_wk = cross.k_proj.weight.data
        self.cross_wv = cross.v_proj.weight.data
        self.cross_wo = cross.out_proj.weight.data
        self.cross_bo = cross.out_proj.bias.data
        self.ffn_wu = decoder.ffn.up.weight.data
        self.ffn_bu = decoder.ffn.up.bias.data
        self.ffn_wd = decoder.ffn.down.weight.data
        self.ffn_bd = decoder.ffn.down.bias.data
        self.norms = [
            (norm.gamma.data, norm.beta.data, norm.epsilon)
            for norm in (decoder.norm1, decoder.norm2, decoder.norm3)
        ]
        self.head_w = model.head.weight.data
        self.head_b = model.head.bias.data

    # ------------------------------------------------------------------
    @staticmethod
    def _layer_norm(x: np.ndarray, gamma, beta, epsilon) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        return (centered * ((variance + epsilon) ** -0.5)) * gamma + beta

    def cross_constants(self, insights: np.ndarray) -> np.ndarray:
        """The cross-attention block output, one constant per request.

        With a single memory token the attention weight is identically 1,
        so the block never reads its query; ``norm2`` and the q/k
        projections cancel out of the computation entirely.  Only valid for
        single-token-memory models.
        """
        memory = self.model.memory_tokens(np.asarray(insights, dtype=np.float64))
        if memory.shape[1] != 1:
            raise ValueError(
                f"{memory.shape[1]}-token memory does not constant-fold"
            )
        return (memory[:, 0] @ self.cross_wv) @ self.cross_wo + self.cross_bo

    def start(self, insights: np.ndarray) -> DecodeState:
        """Fresh state with one frontier row per request."""
        insights = np.asarray(insights, dtype=np.float64)
        rows = insights.shape[0]
        keys = np.zeros((rows, self.n, self.dim))
        values = np.zeros((rows, self.n, self.dim))
        memory = self.model.memory_tokens(insights)
        if memory.shape[1] == 1:
            cross = (memory[:, 0] @ self.cross_wv) @ self.cross_wo + self.cross_bo
            return DecodeState(keys=keys, values=values, cross=cross)
        return DecodeState(
            keys=keys,
            values=values,
            cross_k=memory @ self.cross_wk,
            cross_v=memory @ self.cross_wv,
        )

    def step(self, state: DecodeState, tokens: np.ndarray) -> np.ndarray:
        """Advance every row one position; returns the step's logits.

        Args:
            state: KV cache (mutated in place: position ``t`` is filled and
                ``t`` advances).
            tokens: ``(B,)`` input token ids for this step — SOS at t=0,
                afterwards the decision taken at ``t-1``.

        Returns:
            ``(B,)`` pre-sigmoid selection logits for position ``t``.
        """
        t = state.t
        if t >= self.n:
            raise ValueError(f"decode already complete at t={t}")
        x = self.token_table[np.asarray(tokens, dtype=np.int64)] + self.positions[t]

        gamma, beta, epsilon = self.norms[0]
        normed = self._layer_norm(x, gamma, beta, epsilon)
        q = normed @ self.wq
        state.keys[:, t] = normed @ self.wk
        state.values[:, t] = normed @ self.wv
        keys = state.keys[:, : t + 1]
        scores = np.einsum("bd,btd->bt", q, keys) * self.scale
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=1, keepdims=True)
        attended = np.einsum("bt,btd->bd", weights, state.values[:, : t + 1])
        hidden = x + (attended @ self.wo + self.bo)

        if state.cross is not None:
            hidden = hidden + state.cross
        else:
            gamma, beta, epsilon = self.norms[1]
            normed = self._layer_norm(hidden, gamma, beta, epsilon)
            q = normed @ self.cross_wq
            scores = np.einsum("bd,bmd->bm", q, state.cross_k) * self.scale
            shifted = scores - scores.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            weights = exp / exp.sum(axis=1, keepdims=True)
            attended = np.einsum("bm,bmd->bd", weights, state.cross_v)
            hidden = hidden + (attended @ self.cross_wo + self.cross_bo)

        gamma, beta, epsilon = self.norms[2]
        normed = self._layer_norm(hidden, gamma, beta, epsilon)
        up = normed @ self.ffn_wu + self.ffn_bu
        hidden = hidden + ((up * (up > 0)) @ self.ffn_wd + self.ffn_bd)

        state.t = t + 1
        return (hidden @ self.head_w + self.head_b).ravel()


def step_log_probs(logits: np.ndarray):
    """(log P(select), log P(skip)) from a step's logits — the same
    clipped-sigmoid arithmetic as the reference decoder."""
    z = np.clip(logits, -60.0, 60.0)
    return -np.log1p(np.exp(-z)), -np.log1p(np.exp(z))


__all__ = ["DecodeState", "InferenceEngine", "step_log_probs"]
