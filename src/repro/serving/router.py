"""Pluggable request routing for the serving cluster.

A router answers one question: *which live replica should serve this
request?*  Policies trade load balance against cache affinity:

- :class:`RoundRobinRouter` — rotate over live replicas; the trivial
  baseline.
- :class:`LeastLoadedRouter` — the live replica with the fewest requests
  in flight (ties break on the lowest index), the latency-minimizing
  default.
- :class:`ConsistentHashRouter` — a virtual-node hash ring over the
  quantized insight key, so repeated queries for the same (or
  float-noise-close) insight land on the same replica and hit its warm
  L1 result cache.  Ring walks skip dead replicas, so a kill only moves
  the keys that replica owned.

Routing is pure: a router sees the routing key, the per-replica in-flight
loads, and the liveness mask, and returns an index.  All policies are
deterministic — no RNG — so cluster results are reproducible and
bit-identical to single-replica serving for any policy (routing decides
*where* a request decodes, never *what* the decode returns).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Sequence

from repro.errors import ServingError

#: Virtual nodes per replica on the consistent-hash ring.  Enough to keep
#: the key-space split even at small replica counts; cheap to build.
DEFAULT_VNODES = 64

ROUTING_POLICIES = ("least-loaded", "consistent-hash", "round-robin")


def _hash64(data: bytes) -> int:
    """A stable 64-bit hash (process-independent, unlike ``hash()``)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class Router:
    """Base class: stateless-per-request replica selection."""

    name = "base"

    def __init__(self, replicas: int) -> None:
        if replicas < 1:
            raise ServingError(f"router needs >= 1 replica, got {replicas}")
        self.replicas = int(replicas)

    # ------------------------------------------------------------------
    def route(
        self,
        key: bytes,
        loads: Sequence[int],
        alive: Optional[Sequence[bool]] = None,
    ) -> int:
        """The replica index for a request with routing ``key``.

        ``loads[i]`` is replica *i*'s in-flight request count and
        ``alive[i]`` its liveness (all live when ``None``).  Raises
        :class:`ServingError` when no replica is alive — the gateway
        turns that into respawn-or-degrade, never a silent drop.
        """
        live = self._live_indices(alive)
        return self._pick(key, loads, live)

    def _live_indices(self, alive: Optional[Sequence[bool]]) -> List[int]:
        if alive is None:
            return list(range(self.replicas))
        live = [i for i in range(self.replicas) if alive[i]]
        if not live:
            raise ServingError("no live replica to route to")
        return live

    def _pick(self, key: bytes, loads: Sequence[int],
              live: List[int]) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Rotate over live replicas, ignoring both key and load."""

    name = "round-robin"

    def __init__(self, replicas: int) -> None:
        super().__init__(replicas)
        self._next = 0

    def _pick(self, key: bytes, loads: Sequence[int],
              live: List[int]) -> int:
        choice = live[self._next % len(live)]
        self._next += 1
        return choice


class LeastLoadedRouter(Router):
    """The live replica with the fewest in-flight requests.

    Ties break on the lowest replica index, so the choice is a pure
    function of the load vector — deterministic replay for free.
    """

    name = "least-loaded"

    def _pick(self, key: bytes, loads: Sequence[int],
              live: List[int]) -> int:
        return min(live, key=lambda i: (loads[i], i))


class ConsistentHashRouter(Router):
    """A virtual-node hash ring keyed on the quantized insight.

    Each replica owns ``vnodes`` points on a 64-bit ring; a request maps
    to the first point clockwise from its key's hash.  Identical (and
    quantization-close) insights therefore always reach the same replica
    — its L1 result cache stays warm — while the virtual nodes keep the
    ownership split statistically even.  When the owning replica is dead
    the walk continues clockwise to the next live owner, so only the dead
    replica's arc of keys moves.
    """

    name = "consistent-hash"

    def __init__(self, replicas: int, vnodes: int = DEFAULT_VNODES) -> None:
        super().__init__(replicas)
        if vnodes < 1:
            raise ServingError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        points = []
        for replica in range(self.replicas):
            for vnode in range(self.vnodes):
                points.append(
                    (_hash64(f"replica:{replica}:vnode:{vnode}".encode()),
                     replica)
                )
        points.sort()
        self._ring = [point for point, _ in points]
        self._owner = [owner for _, owner in points]

    def owner_of(self, key: bytes) -> int:
        """The ring owner ignoring liveness (exposed for affinity tests)."""
        return self._pick(key, (), list(range(self.replicas)))

    def _pick(self, key: bytes, loads: Sequence[int],
              live: List[int]) -> int:
        live_set = set(live)
        start = bisect.bisect_left(self._ring, _hash64(key))
        for offset in range(len(self._ring)):
            owner = self._owner[(start + offset) % len(self._ring)]
            if owner in live_set:
                return owner
        raise ServingError("no live replica to route to")


_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    ConsistentHashRouter.name: ConsistentHashRouter,
}


def router_for(policy: str, replicas: int) -> Router:
    """Build the router for a ``--routing`` policy name."""
    try:
        cls = _ROUTERS[policy]
    except KeyError:
        raise ServingError(
            f"unknown routing policy {policy!r}; "
            f"choose from {sorted(_ROUTERS)}"
        ) from None
    return cls(replicas)
