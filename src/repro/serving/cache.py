"""LRU result cache for recommendation requests.

Keys quantize the insight vector (round to a fixed number of decimals, then
take the raw bytes) so that re-extracted insights that differ only by
floating-point noise hit the same entry, and include the model version so a
hot-swap can never serve stale recommendations — the service additionally
clears the cache on swap (see :class:`~repro.serving.registry.ModelRegistry`
subscriptions), making version mismatches structurally impossible.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.observability.metrics import new_lock


def quantize_insight(insight: np.ndarray, decimals: int = 6) -> bytes:
    """Stable byte key for an insight vector, tolerant to float noise."""
    quantized = np.round(np.asarray(insight, dtype=np.float64), decimals)
    # -0.0 and 0.0 compare equal but have different bytes; normalize.
    quantized = quantized + 0.0
    return quantized.tobytes()


class ResultCache:
    """A bounded LRU cache of recommendation results.

    Entry mutations and the hit/miss/eviction counters are guarded by the
    observability registry's lock primitive, so a service polled from one
    thread while another reads ``stats()`` always sees coherent numbers.
    """

    def __init__(self, capacity: int = 256, insight_decimals: int = 6) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.insight_decimals = insight_decimals
        self._lock = new_lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def key(
        self, model_version: str, insight: np.ndarray, k: int
    ) -> Tuple[str, int, bytes]:
        return (
            model_version,
            int(k),
            quantize_insight(insight, self.insight_decimals),
        )

    def get(self, key: Hashable) -> Optional[object]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (model hot-swap); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
            return dropped

    def purge_version(self, model_version: str) -> int:
        """Versioned invalidation: drop only ``model_version``'s entries.

        The cluster's shared L2 uses this on hot-swap — entries of the
        versions still registered (e.g. a live canary) survive, while the
        retired version's entries stop occupying capacity.  Keys embed
        the version, so this is a space reclaim, never a correctness
        requirement.
        """
        with self._lock:
            stale = [
                key for key in self._entries
                if isinstance(key, tuple) and key
                and key[0] == model_version
            ]
            for key in stale:
                del self._entries[key]
            if stale:
                self.invalidations += 1
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
