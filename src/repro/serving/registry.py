"""Versioned model registry with atomic zero-downtime hot-swap.

A :class:`ModelRegistry` maps version strings to model *sources* — either an
in-memory :class:`~repro.core.recommender.InsightAlign` or a path to an
``.npz`` archive written by :meth:`InsightAlign.save`.  ``activate`` resolves
the source completely (loading and validating archives *before* touching the
active slot), then swaps a single reference — in-flight readers either see
the old model or the new one, never a half-loaded state — and finally
notifies subscribers (the serving layer uses this to invalidate its result
cache).  A failed load therefore leaves the previously active model serving.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.recommender import InsightAlign
from repro.errors import RegistryError

ModelSource = Union[str, os.PathLike, InsightAlign]


class ModelRegistry:
    """Named, versioned recommenders with one active serving slot."""

    def __init__(self) -> None:
        self._sources: Dict[str, ModelSource] = {}
        self._active: Optional[Tuple[str, InsightAlign]] = None
        self._subscribers: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    def register(self, version: str, source: ModelSource) -> None:
        """Make ``version`` available for activation.

        ``source`` is an :class:`InsightAlign` instance or a path to a saved
        archive; paths are loaded lazily at activation so registering many
        versions stays cheap.
        """
        if not version:
            raise RegistryError("model version must be a non-empty string")
        if version in self._sources:
            raise RegistryError(f"model version {version!r} already registered")
        self._sources[version] = source

    def versions(self) -> List[str]:
        return sorted(self._sources)

    def sources(self) -> Dict[str, ModelSource]:
        """Every registered ``version -> source`` (a shallow copy).

        Used by the serving cluster to replicate this registry into
        replica processes: paths load lazily there, in-memory recommenders
        are pickled along.
        """
        return dict(self._sources)

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """``callback(version)`` fires after every successful activation."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    def activate(self, version: str) -> InsightAlign:
        """Atomically make ``version`` the serving model.

        The archive (if any) is fully loaded and validated first; only then
        is the active reference replaced, so activation either completes or
        leaves the previous model serving.
        """
        try:
            source = self._sources[version]
        except KeyError:
            raise RegistryError(
                f"unknown model version {version!r}; "
                f"registered: {self.versions()}"
            ) from None
        if isinstance(source, InsightAlign):
            recommender = source
        else:
            recommender = InsightAlign.load(source)
        # The swap is a single reference assignment: atomic under the GIL,
        # and readers grab (version, model) as one tuple.
        self._active = (version, recommender)
        for callback in self._subscribers:
            callback(version)
        return recommender

    def resolve(self, version: str) -> InsightAlign:
        """The recommender for ``version`` *without* activating it.

        This is the version-pinning hook behind canary/shadow serving: a
        request pinned to a registered-but-not-active version decodes on
        that model while the active slot keeps serving everyone else.
        Archive sources are loaded once and memoized (the loaded instance
        replaces the path), so pinned traffic does not reload per request.
        """
        if self._active is not None and self._active[0] == version:
            return self._active[1]
        try:
            source = self._sources[version]
        except KeyError:
            raise RegistryError(
                f"unknown model version {version!r}; "
                f"registered: {self.versions()}"
            ) from None
        if not isinstance(source, InsightAlign):
            source = InsightAlign.load(source)
            self._sources[version] = source
        return source

    # ------------------------------------------------------------------
    @property
    def active_version(self) -> str:
        return self._require_active()[0]

    @property
    def recommender(self) -> InsightAlign:
        return self._require_active()[1]

    def active(self) -> Tuple[str, InsightAlign]:
        """The (version, recommender) pair as one consistent read."""
        return self._require_active()

    def _require_active(self) -> Tuple[str, InsightAlign]:
        if self._active is None:
            raise RegistryError(
                "no active model: call activate() on a registered version"
            )
        return self._active
