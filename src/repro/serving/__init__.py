"""Serving layer: batched, hot-swappable recipe recommendation at scale.

The training stack produces one aligned policy; this package turns it into
a *service* able to absorb many concurrent recommendation requests:

- :mod:`repro.serving.engine` — a grad-free incremental inference engine
  (KV-cached self-attention, constant-folded cross attention) that decodes
  a step in O(dim^2) per row instead of a full-sequence autograd forward.
- :mod:`repro.serving.batch_decode` — vectorized beam search advancing all
  beams of all in-flight requests as one fused frontier per step (provably
  equivalent to the reference per-beam loop).
- :mod:`repro.serving.scheduler` — dynamic micro-batching: bounded request
  queue, max-batch-size / max-wait-latency knobs, per-request deadlines,
  and admission control with backpressure.
- :mod:`repro.serving.cache` — LRU result cache keyed on the quantized
  insight vector, k and the model version.
- :mod:`repro.serving.registry` — versioned model registry with atomic
  zero-downtime hot-swap that invalidates the cache.
- :mod:`repro.serving.metrics` — counters and latency/occupancy histograms
  behind :meth:`RecommendationService.stats`.
- :mod:`repro.serving.service` — :class:`RecommendationService`, the
  composition of all of the above.
- :mod:`repro.serving.cluster` — :class:`ServingCluster`, the multi-replica
  async gateway: pluggable routing (:mod:`repro.serving.router`), watermark
  admission control with typed load shedding
  (:mod:`repro.serving.admission`), a cluster-shared L2 result cache over
  the replicas' L1s, canary/shadow rollout, and self-healing replica
  membership.

See ``docs/serving.md`` for the architecture walkthrough and
``benchmarks/bench_serving_throughput.py`` for the speedup evidence.
"""

from repro.serving.admission import AdmissionController
from repro.serving.batch_decode import (
    batched_beam_search,
    batched_greedy_decode,
    batched_sample_decode,
)
from repro.serving.cache import ResultCache, quantize_insight
from repro.serving.cluster import ClusterConfig, ServingCluster
from repro.serving.engine import DecodeState, InferenceEngine
from repro.serving.metrics import Counter, Histogram, ServingMetrics
from repro.serving.registry import ModelRegistry
from repro.serving.router import (
    ROUTING_POLICIES,
    ConsistentHashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    router_for,
)
from repro.serving.scheduler import (
    MicroBatcher,
    RequestStatus,
    ServingConfig,
    Ticket,
)
from repro.serving.service import INITIAL_VERSION, RecommendationService

__all__ = [
    "INITIAL_VERSION",
    "ROUTING_POLICIES",
    "AdmissionController",
    "ClusterConfig",
    "ConsistentHashRouter",
    "Counter",
    "DecodeState",
    "Histogram",
    "InferenceEngine",
    "LeastLoadedRouter",
    "MicroBatcher",
    "ModelRegistry",
    "RecommendationService",
    "RequestStatus",
    "ResultCache",
    "RoundRobinRouter",
    "Router",
    "ServingCluster",
    "ServingConfig",
    "ServingMetrics",
    "Ticket",
    "batched_beam_search",
    "batched_greedy_decode",
    "batched_sample_decode",
    "quantize_insight",
    "router_for",
]
