"""The multi-replica serving cluster: an async gateway over N services.

One :class:`~repro.serving.service.RecommendationService` caps throughput
at a single process's decode rate and has no overload story beyond its
own bounded queue.  :class:`ServingCluster` is the scale-out layer:

- an **event-loop frontend** (``await cluster.submit(...)``) owning a
  pool of replicas, each a full ``RecommendationService`` — in a child
  process (``backend="process"``, true parallel decode) or in-process
  (``backend="inline"``, deterministic tests and the degrade target);
- **pluggable routing** (:mod:`repro.serving.router`): least-loaded,
  consistent-hash on the quantized insight key (cache-affine requests
  land on warm replicas), or round-robin;
- a **tiered result cache**: each replica keeps its private L1
  (:class:`~repro.serving.cache.ResultCache` inside its service), the
  gateway keeps a cluster-shared L2 consulted before routing and filled
  from every response, with versioned invalidation
  (:meth:`~repro.serving.cache.ResultCache.purge_version`) on hot-swap;
- **admission control** (:mod:`repro.serving.admission`): once accepted
  work crosses ``shed_watermark`` new arrivals are rejected immediately
  with the typed :class:`~repro.errors.OverloadedError` — load sheds at
  the edge in microseconds instead of burning deadlines in a queue;
- **canary / shadow rollout** through the shared
  :class:`~repro.serving.registry.ModelRegistry`: a deterministic
  fraction of traffic is pinned to a registered-but-inactive version
  (canary), or mirrored to it for comparison without affecting responses
  (shadow);
- **self-healing membership** (the PR-6/PR-7 IPC discipline): per-replica
  command ``SimpleQueue`` + private result ``Pipe`` with synchronous
  sends, death detection by pipe EOF, respawn under a restart budget, and
  re-dispatch of a dead replica's in-flight requests — an accepted
  request is never lost.

Correctness invariant: the gateway resolves every request's model version
at admission and pins the replica decode to it, so the L2 key, the L1 key
and the decoding model always agree — even mid-hot-swap — and cluster
responses are bit-identical to single-replica serving under any routing
policy at any replica count.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Union

import multiprocessing

import numpy as np

from repro.core.recommender import InsightAlign
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    QueueFullError,
    ServingError,
)
from repro.observability import get_registry, get_tracer
from repro.observability.trace import Tracer, set_tracer
from repro.runtime.parallel import _RemoteError
from repro.serving.admission import AdmissionController
from repro.serving.cache import ResultCache, quantize_insight
from repro.serving.registry import ModelRegistry, ModelSource
from repro.serving.router import ROUTING_POLICIES, _hash64, router_for
from repro.serving.scheduler import RequestStatus, ServingConfig
from repro.serving.service import INITIAL_VERSION, RecommendationService
from repro.utils.rng import derive_rng

#: Exit code of a chaos-killed replica (distinct from real crashes).
KILL_EXIT_CODE = 23

REPLICA_BACKENDS = ("process", "inline")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the serving cluster (frozen, validated).

    Attributes:
        replicas: Number of replica services in the pool.
        routing: Routing policy name (see
            :data:`~repro.serving.router.ROUTING_POLICIES`).
        backend: ``"process"`` decodes in child processes (true
            parallelism, chaos-killable); ``"inline"`` keeps replicas in
            the gateway process (deterministic, no IPC).
        shed_watermark: Most accepted-but-unfinished requests before
            admission sheds with :class:`OverloadedError`.
        l2_capacity: Entries in the cluster-shared L2 result cache
            (0 disables the L2 tier).
        canary_version: Registered model version receiving canary or
            shadow traffic (``None`` = no rollout in progress).
        canary_fraction: Deterministic fraction of traffic assigned to
            the canary (by hash of the quantized insight, so one design's
            queries are consistently canaried).
        shadow: Mirror the canary fraction to the canary version and
            count result mismatches, while every response still comes
            from the active version.
        kill_rate: Chaos rehearsal — per-request probability that the
            serving replica process dies mid-flight (process backend).
        kill_seed: Seed of the deterministic chaos-kill schedule.
        max_replica_restarts: Replica deaths absorbed (with respawn)
            before the cluster stops healing; with no replica left it
            degrades to in-gateway serving.
        start_method: Multiprocessing start method (default: fork when
            available).
    """

    replicas: int = 2
    routing: str = "least-loaded"
    backend: str = "process"
    shed_watermark: int = 256
    l2_capacity: int = 2048
    canary_version: Optional[str] = None
    canary_fraction: float = 0.0
    shadow: bool = False
    kill_rate: float = 0.0
    kill_seed: int = 0
    max_replica_restarts: int = 8
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {self.replicas}")
        if self.routing not in ROUTING_POLICIES:
            raise ServingError(
                f"unknown routing policy {self.routing!r}; "
                f"choose from {sorted(ROUTING_POLICIES)}"
            )
        if self.backend not in REPLICA_BACKENDS:
            raise ServingError(
                f"unknown backend {self.backend!r}; "
                f"choose from {sorted(REPLICA_BACKENDS)}"
            )
        if self.shed_watermark < 1:
            raise ServingError(
                f"shed_watermark must be >= 1, got {self.shed_watermark}"
            )
        if self.l2_capacity < 0:
            raise ServingError(
                f"l2_capacity must be >= 0, got {self.l2_capacity}"
            )
        if not 0.0 <= self.canary_fraction <= 1.0:
            raise ServingError(
                f"canary_fraction must be in [0, 1], "
                f"got {self.canary_fraction}"
            )
        if (self.canary_fraction > 0 or self.shadow) \
                and not self.canary_version:
            raise ServingError(
                "canary_fraction/shadow need a canary_version"
            )
        if not 0.0 <= self.kill_rate < 1.0:
            raise ServingError(
                f"kill_rate must be in [0, 1), got {self.kill_rate}"
            )
        if self.kill_rate > 0 and self.backend != "process":
            raise ServingError(
                "replica-kill chaos needs backend='process' "
                "(inline replicas share the gateway process)"
            )
        if self.max_replica_restarts < 0:
            raise ServingError(
                f"max_replica_restarts must be >= 0, "
                f"got {self.max_replica_restarts}"
            )


@dataclass(frozen=True)
class _ReplicaSpec:
    """Everything a replica process needs, all picklable."""

    sources: Dict[str, ModelSource]
    active_version: str
    serving: ServingConfig
    kill_rate: float = 0.0
    kill_seed: int = 0


@dataclass(eq=False)
class _ClusterRequest:
    """One accepted request's gateway-side state."""

    rid: int
    insight: np.ndarray
    k: int
    version: str                   # resolved at admission; pins the decode
    key: tuple                     # L2 cache key (version, k, quantized)
    route_key: bytes               # quantized insight bytes (affinity)
    deadline_s: Optional[float]
    future: "asyncio.Future"
    shadow: bool = False
    dispatch: int = 0
    _l1_hit: bool = field(default=False, repr=False)


def _replica_main(replica_id: int, spawn: int, spec: _ReplicaSpec,
                  cmd_queue, result_conn) -> None:
    """Main of one replica process.

    Greedily drains its command queue each wake-up, submits every pending
    request to its private :class:`RecommendationService` (one flush
    decodes them as micro-batches), then answers each with one
    synchronous pipe send — a replica killed mid-batch can neither lose a
    result it already sent nor wedge the gateway.  Requests arrive with
    their model version pinned by the gateway, so the decode can never
    disagree with the cache key the gateway stored.

    Chaos rehearsal: with ``kill_rate`` set, each serve command first
    draws from a ``(kill_seed, replica_id, spawn)`` stream and may
    ``os._exit`` — the hard mid-flight death the membership layer
    absorbs.  Runs trace-quiet (the gateway emits the cluster spans).
    """
    set_tracer(Tracer(exporter=None, enabled=False))
    kill_rng = derive_rng(spec.kill_seed, "replica-kill", replica_id, spawn)
    registry = ModelRegistry()
    for version, source in spec.sources.items():
        registry.register(version, source)
    registry.activate(spec.active_version)
    service = RecommendationService(
        registry, spec.serving, service_id=f"replica{replica_id}"
    )
    while True:
        commands = [cmd_queue.get()]
        while not cmd_queue.empty():
            commands.append(cmd_queue.get())
        tickets = []
        for command in commands:
            if command is None:
                return
            kind = command[0]
            if kind == "serve":
                if spec.kill_rate > 0 and \
                        float(kill_rng.random()) < spec.kill_rate:
                    os._exit(KILL_EXIT_CODE)
                _, rid, insight, k, version, deadline_s = command
                try:
                    try:
                        ticket = service.submit(
                            insight, k=k, deadline_s=deadline_s,
                            model_version=version,
                        )
                    except QueueFullError:
                        service.flush()     # drain, then re-admit
                        ticket = service.submit(
                            insight, k=k, deadline_s=deadline_s,
                            model_version=version,
                        )
                except BaseException as err:  # noqa: BLE001 - shipped back
                    result_conn.send(("error", rid, _RemoteError(err)))
                    continue
                tickets.append((rid, ticket))
            elif kind == "register":
                try:
                    service.register_model(command[1], command[2])
                except BaseException:  # noqa: BLE001 - respawn re-register
                    pass
            elif kind == "swap":
                try:
                    service.hot_swap(command[1])
                except BaseException as err:  # noqa: BLE001 - shipped back
                    result_conn.send(("error", -1, _RemoteError(err)))
        if tickets:
            service.flush()
            for rid, ticket in tickets:
                if ticket.status is RequestStatus.EXPIRED:
                    result_conn.send(("expired", rid))
                else:
                    result_conn.send(
                        ("ok", rid, ticket._result, ticket.cache_hit)
                    )


class _ProcessReplica:
    """Gateway handle of one replica child process + its reader thread."""

    backend = "process"

    def __init__(self, cluster: "ServingCluster", replica_id: int,
                 spawn: int) -> None:
        self.id = replica_id
        self.spawn = spawn
        self.load = 0
        self.inflight: Dict[int, _ClusterRequest] = {}
        self.dead = False
        ctx = cluster._ctx
        self._cmd_queue = ctx.SimpleQueue()
        self._result_recv, result_send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_replica_main,
            args=(replica_id, spawn, cluster._spec(), self._cmd_queue,
                  result_send),
            daemon=True,
        )
        self.process.start()
        # The replica holds the only writer: death surfaces as EOF.
        result_send.close()
        self._reader = threading.Thread(
            target=self._drain, args=(cluster,), daemon=True,
            name=f"replica-r{replica_id}s{spawn}-reader",
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def send(self, command: tuple) -> None:
        self._cmd_queue.put(command)

    def _drain(self, cluster: "ServingCluster") -> None:
        """Reader thread: pipe -> gateway event queue, EOF -> death."""
        while True:
            try:
                item = self._result_recv.recv()
            except (EOFError, OSError):
                cluster._post(("dead", self.id, self.spawn))
                return
            cluster._post(("msg", self.id, self.spawn, item))

    def shutdown(self) -> None:
        if self.process.is_alive():
            try:
                self._cmd_queue.put(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        try:
            self._result_recv.close()
        except OSError:
            pass


class _InlineReplica:
    """An in-gateway replica: same command surface, no IPC.

    Used for deterministic tests, single-process deployments, and as the
    degrade target when the process pool loses its restart budget.  The
    serve path is identical (a private :class:`RecommendationService`,
    version-pinned decode); results are delivered synchronously through
    the same event handler the process backend uses.
    """

    backend = "inline"

    def __init__(self, cluster: "ServingCluster", replica_id: int,
                 spawn: int) -> None:
        self.id = replica_id
        self.spawn = spawn
        self.load = 0
        self.inflight: Dict[int, _ClusterRequest] = {}
        self.dead = False
        self._cluster = cluster
        spec = cluster._spec()
        registry = ModelRegistry()
        for version, source in spec.sources.items():
            registry.register(version, source)
        registry.activate(spec.active_version)
        self.service = RecommendationService(registry, spec.serving)

    @property
    def alive(self) -> bool:
        return not self.dead

    def send(self, command: tuple) -> None:
        kind = command[0]
        if kind == "serve":
            _, rid, insight, k, version, deadline_s = command
            try:
                ticket = self.service.submit(
                    insight, k=k, deadline_s=deadline_s,
                    model_version=version,
                )
                self.service.flush()
            except BaseException as err:  # noqa: BLE001 - same surface
                self._cluster._handle_event(
                    ("msg", self.id, self.spawn,
                     ("error", rid, _RemoteError(err)))
                )
                return
            if ticket.status is RequestStatus.EXPIRED:
                item = ("expired", rid)
            else:
                item = ("ok", rid, ticket._result, ticket.cache_hit)
            self._cluster._handle_event(("msg", self.id, self.spawn, item))
        elif kind == "register":
            try:
                self.service.register_model(command[1], command[2])
            except BaseException:  # noqa: BLE001 - duplicate re-register
                pass
        elif kind == "swap":
            self.service.hot_swap(command[1])

    def shutdown(self) -> None:
        self.dead = True


class ServingCluster:
    """Async frontend gateway over a pool of recommendation replicas."""

    def __init__(
        self,
        model: Union[InsightAlign, ModelRegistry],
        config: ClusterConfig = ClusterConfig(),
        serving: ServingConfig = ServingConfig(),
        clock=time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        if isinstance(model, ModelRegistry):
            self.registry = model
        else:
            self.registry = ModelRegistry()
            self.registry.register(INITIAL_VERSION, model)
            self.registry.activate(INITIAL_VERSION)
        self._active_version = self.registry.active_version
        # Replicas must be able to hold every admitted request, whatever
        # the routing policy concentrates on one of them.
        self.serving = replace(
            serving,
            max_queue_depth=max(serving.max_queue_depth,
                                config.shed_watermark),
        )
        self.l2 = ResultCache(
            capacity=config.l2_capacity,
            insight_decimals=serving.insight_decimals,
        )
        self.router = router_for(config.routing, config.replicas)
        self.admission = AdmissionController(config.shed_watermark)
        if config.start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        else:
            start_method = config.start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._events: Deque[tuple] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight: Dict[int, _ClusterRequest] = {}
        self._next_rid = 0
        self._spawns = 0
        self._outstanding = 0
        self._restarts = 0
        self._redispatched = 0
        self._completed = 0
        self._l1_hits = 0
        # Per-cluster accounting for stats(): the serving_cluster_*
        # metric families are process-global (shared by every cluster in
        # the process), so the point-in-time snapshot keeps its own.
        self._routed_counts: Dict[str, int] = {}
        self._canary_requests = 0
        self._shadow_mirrors = 0
        self._shadow_mismatches = 0
        self._shadow_tasks: set = set()
        self.degraded = False
        self._closed = False
        self._fallback: Optional[_InlineReplica] = None
        self._init_metrics()
        replica_cls = (
            _ProcessReplica if config.backend == "process"
            else _InlineReplica
        )
        self._replicas: List[object] = []
        for replica_id in range(config.replicas):
            self._replicas.append(
                replica_cls(self, replica_id, self._next_spawn())
            )
        self._set_live_gauge()

    # -- construction helpers ------------------------------------------
    def _spec(self) -> _ReplicaSpec:
        return _ReplicaSpec(
            sources=self.registry.sources(),
            active_version=self._active_version,
            serving=self.serving,
            kill_rate=self.config.kill_rate,
            kill_seed=self.config.kill_seed,
        )

    def _next_spawn(self) -> int:
        spawn = self._spawns
        self._spawns += 1
        return spawn

    def _init_metrics(self) -> None:
        reg = get_registry()
        self._m_routed = reg.counter(
            "serving_cluster_requests_total",
            "requests routed to a replica",
        )
        self._m_shed = reg.counter(
            "serving_cluster_shed_total",
            "arrivals rejected by admission control",
        )
        self._m_l2_hits = reg.counter(
            "serving_cluster_l2_hits_total", "shared L2 cache hits"
        )
        self._m_l2_misses = reg.counter(
            "serving_cluster_l2_misses_total", "shared L2 cache misses"
        )
        self._m_restarts = reg.counter(
            "serving_cluster_replica_restarts_total",
            "replica processes respawned after death",
        )
        self._m_redispatched = reg.counter(
            "serving_cluster_redispatched_total",
            "in-flight requests re-routed off a dead replica",
        )
        self._m_canary = reg.counter(
            "serving_cluster_canary_requests_total",
            "requests served by the canary version",
        )
        self._m_shadow = reg.counter(
            "serving_cluster_shadow_mirrors_total",
            "requests mirrored to the shadow version",
        )
        self._m_shadow_mismatch = reg.counter(
            "serving_cluster_shadow_mismatch_total",
            "shadow responses disagreeing with the active version",
        )
        self._m_degraded = reg.counter(
            "serving_cluster_degraded_total",
            "clusters that degraded to in-gateway serving",
        )
        self._m_outstanding = reg.gauge(
            "serving_cluster_outstanding",
            "accepted-but-unfinished cluster requests",
        )
        self._m_live = reg.gauge(
            "serving_replicas_live", "live serving replicas"
        )

    def _set_live_gauge(self) -> None:
        self._m_live.set(sum(1 for h in self._replicas if h.alive))

    # -- event plumbing ------------------------------------------------
    def _post(self, event: tuple) -> None:
        """Thread-safe: enqueue an event and wake the loop if running."""
        self._events.append(event)
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._pump)
            except RuntimeError:
                pass            # loop gone; events drain at next entry

    def _pump(self) -> None:
        while True:
            try:
                event = self._events.popleft()
            except IndexError:
                return
            self._handle_event(event)

    def _handle_event(self, event: tuple) -> None:
        kind = event[0]
        if kind == "msg":
            _, replica_id, spawn, item = event
            self._on_message(replica_id, spawn, item)
        elif kind == "dead":
            _, replica_id, spawn = event
            self._on_death(replica_id, spawn)

    def _on_message(self, replica_id: int, spawn: int, item: tuple) -> None:
        handle = (
            self._fallback if replica_id < 0
            else self._replicas[replica_id]
        )
        what, rid = item[0], item[1]
        request = self._inflight.pop(rid, None)
        if handle.spawn == spawn:
            if handle.inflight.pop(rid, None) is not None:
                handle.load -= 1
        if request is None:
            return                  # duplicate answer after a re-dispatch
        if what == "ok":
            _, _, result, l1_hit = item
            if l1_hit:
                self._l1_hits += 1
                request._l1_hit = True
            self.l2.put(request.key, result)
            self._completed += 1
            if not request.future.done():
                request.future.set_result(result)
        elif what == "expired":
            if not request.future.done():
                request.future.set_exception(DeadlineExceededError(
                    f"request {rid} expired before the replica served it"
                ))
        elif what == "error":
            if not request.future.done():
                request.future.set_exception(item[2].error)
        self._m_outstanding.set(len(self._inflight))

    def _on_death(self, replica_id: int, spawn: int) -> None:
        handle = self._replicas[replica_id]
        if handle.spawn != spawn or self._closed:
            return                  # stale event for an already-replaced one
        handle.dead = True
        lost = list(handle.inflight.values())
        handle.inflight.clear()
        handle.load = 0
        if hasattr(handle, "process"):
            handle.process.join(timeout=1.0)
        if self._restarts < self.config.max_replica_restarts:
            self._restarts += 1
            self._m_restarts.inc()
            self._replicas[replica_id] = _ProcessReplica(
                self, replica_id, self._next_spawn()
            )
        elif not self.degraded:
            self.degraded = True
            self._m_degraded.inc()
        self._set_live_gauge()
        tracer = get_tracer()
        with tracer.span(
            "serve.replica_restart", replica=replica_id,
            lost=len(lost), degraded=self.degraded,
        ):
            for request in lost:
                if request.rid in self._inflight:
                    self._redispatched += 1
                    self._m_redispatched.inc()
                    self._dispatch(request)

    # -- admission + routing -------------------------------------------
    def _ensure_loop(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pump()

    def _assignment(self, route_key: bytes) -> tuple:
        """(pinned version, mirror?) for one arrival — deterministic."""
        cfg = self.config
        if cfg.canary_version is None or cfg.canary_fraction <= 0.0:
            return None, False
        draw = _hash64(
            route_key + b"|canary|" + str(cfg.kill_seed).encode()
        ) % 10_000
        if draw >= round(cfg.canary_fraction * 10_000):
            return None, False
        if cfg.shadow:
            return None, True
        return cfg.canary_version, False

    async def submit(
        self,
        insight: np.ndarray,
        k: int = 5,
        deadline_s: Optional[float] = None,
    ):
        """Serve one request; returns the recommendation list.

        Raises :class:`OverloadedError` when admission sheds the arrival,
        :class:`DeadlineExceededError` when the deadline passed before a
        replica could decode it.
        """
        self._ensure_loop()
        if self._closed:
            raise ServingError("cluster is closed")
        insight = np.asarray(insight, dtype=np.float64).copy()
        route_key = quantize_insight(insight, self.serving.insight_decimals)
        pinned, mirror = self._assignment(route_key)
        version = pinned or self._active_version
        key = self.l2.key(version, insight, int(k))
        cached = self.l2.get(key)
        if cached is not None:
            self._m_l2_hits.inc()
            return cached
        self._m_l2_misses.inc()
        tracer = get_tracer()
        try:
            self.admission.admit(self._outstanding)
        except OverloadedError:
            self._m_shed.inc()
            with tracer.span(
                "serve.shed", outstanding=self._outstanding,
                watermark=self.config.shed_watermark,
            ):
                pass
            raise
        if pinned is not None:
            self._m_canary.inc()
            self._canary_requests += 1
        request = self._make_request(
            insight, int(k), version, key, route_key, deadline_s
        )
        self._outstanding += 1
        self._dispatch(request)
        if mirror:
            self._mirror(request)
        try:
            return await request.future
        finally:
            self._outstanding -= 1

    def _make_request(self, insight, k, version, key, route_key,
                      deadline_s, shadow: bool = False) -> _ClusterRequest:
        rid = self._next_rid
        self._next_rid += 1
        request = _ClusterRequest(
            rid=rid, insight=insight, k=k, version=version, key=key,
            route_key=route_key, deadline_s=deadline_s,
            future=self._loop.create_future(), shadow=shadow,
        )
        self._inflight[rid] = request
        self._m_outstanding.set(len(self._inflight))
        return request

    def _dispatch(self, request: _ClusterRequest) -> None:
        alive = [h.alive for h in self._replicas]
        if not any(alive):
            self._serve_fallback(request)
            return
        loads = [h.load for h in self._replicas]
        tracer = get_tracer()
        with tracer.span(
            "serve.route", policy=self.router.name,
            dispatch=request.dispatch, shadow=request.shadow,
        ) as span:
            index = self.router.route(request.route_key, loads, alive)
            span.set_attribute("replica", index)
        handle = self._replicas[index]
        handle.load += 1
        handle.inflight[request.rid] = request
        request.dispatch += 1
        self._m_routed.inc(replica=f"r{index}")
        name = f"r{index}"
        self._routed_counts[name] = self._routed_counts.get(name, 0) + 1
        handle.send((
            "serve", request.rid, request.insight, request.k,
            request.version, request.deadline_s,
        ))

    def _serve_fallback(self, request: _ClusterRequest) -> None:
        """Degraded path: no live replica — decode in the gateway."""
        if self._fallback is None:
            self._fallback = _InlineReplica(self, -1, self._next_spawn())
        fallback = self._fallback
        fallback.inflight[request.rid] = request
        request.dispatch += 1
        fallback.send((
            "serve", request.rid, request.insight, request.k,
            request.version, request.deadline_s,
        ))

    # -- shadow rollout ------------------------------------------------
    def _mirror(self, primary: _ClusterRequest) -> None:
        """Fire the shadow copy of ``primary`` at the canary version.

        The mirror routes, decodes and fills the L2 under the canary's
        version key (warming it for a future promote), but bypasses
        admission and never touches the primary's response; disagreement
        is only counted.
        """
        canary = self.config.canary_version
        shadow = self._make_request(
            primary.insight, primary.k, canary,
            self.l2.key(canary, primary.insight, primary.k),
            primary.route_key, primary.deadline_s, shadow=True,
        )
        self._shadow_mirrors += 1
        self._m_shadow.inc()
        self._dispatch(shadow)
        task = self._loop.create_task(self._compare(primary, shadow))
        self._shadow_tasks.add(task)
        task.add_done_callback(self._shadow_tasks.discard)

    async def _compare(self, primary: _ClusterRequest,
                       shadow: _ClusterRequest) -> None:
        stable, candidate = await asyncio.gather(
            asyncio.shield(primary.future), shadow.future,
            return_exceptions=True,
        )
        if isinstance(stable, BaseException) or \
                isinstance(candidate, BaseException):
            return              # comparison is best-effort
        if [r.recipe_set for r in stable] != \
                [r.recipe_set for r in candidate]:
            self._shadow_mismatches += 1
            self._m_shadow_mismatch.inc()

    async def drain_shadows(self) -> None:
        """Wait out any in-flight shadow comparisons."""
        while self._shadow_tasks:
            await asyncio.gather(*list(self._shadow_tasks),
                                 return_exceptions=True)

    # -- model lifecycle -----------------------------------------------
    def register_model(self, version: str, source: ModelSource) -> None:
        """Register ``version`` on the gateway and broadcast to replicas."""
        self.registry.register(version, source)
        for handle in self._replicas:
            if handle.alive:
                handle.send(("register", version, source))
        if self._fallback is not None:
            self._fallback.send(("register", version, source))

    def hot_swap(self, version: str) -> str:
        """Activate ``version`` cluster-wide.

        The gateway resolves and validates first (a bad archive leaves
        the old version serving), flips the resolved version for every
        subsequent admission, broadcasts the swap, and purges the retired
        version's L2 entries — versioned invalidation, so a live canary's
        warm entries survive.  Requests admitted before the swap carry
        their pinned old version and stay coherent.
        """
        self.registry.activate(version)
        retired = self._active_version
        self._active_version = version
        for handle in self._replicas:
            if handle.alive:
                handle.send(("swap", version))
        if self._fallback is not None:
            self._fallback.send(("swap", version))
        if retired != version:
            self.l2.purge_version(retired)
        return version

    def set_canary(self, version: Optional[str], fraction: float = 0.1,
                   shadow: bool = False) -> None:
        """Start (or stop, with ``None``) a canary/shadow rollout."""
        if version is not None and version not in self.registry.versions():
            raise ServingError(
                f"canary version {version!r} is not registered; "
                "call register_model first"
            )
        self.config = replace(
            self.config,
            canary_version=version,
            canary_fraction=fraction if version is not None else 0.0,
            shadow=shadow,
        )

    # -- sync drivers ----------------------------------------------------
    def serve_all(
        self,
        insights: Sequence[np.ndarray],
        k: int = 5,
        concurrency: int = 32,
        deadline_s: Optional[float] = None,
    ) -> List:
        """Drive a whole workload from synchronous code.

        Submits every insight with at most ``concurrency`` requests in
        flight (keep it at or below the shed watermark for a shed-free
        run) and returns results in submission order.
        """
        async def driver():
            results: List = [None] * len(insights)
            gate = asyncio.Semaphore(concurrency)

            async def one(index: int, vector) -> None:
                async with gate:
                    results[index] = await self.submit(
                        vector, k=k, deadline_s=deadline_s
                    )

            await asyncio.gather(
                *(one(i, v) for i, v in enumerate(insights))
            )
            await self.drain_shadows()
            return results

        return asyncio.run(driver())

    # -- lifecycle / stats ---------------------------------------------
    def close(self) -> None:
        """Shut every replica down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pump()
        for handle in self._replicas:
            handle.shutdown()
        if self._fallback is not None:
            self._fallback.shutdown()
        self._loop = None
        self._m_live.set(0)

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """A point-in-time snapshot of the cluster's own accounting."""
        per_replica = {
            f"r{h.id}": self._routed_counts.get(f"r{h.id}", 0)
            for h in self._replicas
        }
        return {
            "replicas": self.config.replicas,
            "backend": self.config.backend,
            "routing": self.router.name,
            "model_version": self._active_version,
            "live": sum(1 for h in self._replicas if h.alive),
            "restarts": self._restarts,
            "redispatched": self._redispatched,
            "degraded": self.degraded,
            "completed": self._completed,
            "outstanding": self._outstanding,
            "routed": per_replica,
            "l1_hits": self._l1_hits,
            "admission": self.admission.stats(),
            "l2": self.l2.stats(),
            "canary": {
                "version": self.config.canary_version,
                "fraction": self.config.canary_fraction,
                "shadow": self.config.shadow,
                "requests": self._canary_requests,
                "mirrors": self._shadow_mirrors,
                "mismatches": self._shadow_mismatches,
            },
        }
