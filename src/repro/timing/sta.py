"""Block-based static timing analysis with setup and hold checks.

Definitions (all times in picoseconds):

- ``A_max[c]`` / ``A_min[c]``: latest / earliest signal arrival at the
  *output* of cell ``c``, measured from the launch clock edge at time 0.
  Register sources start at ``launch_latency + clk_to_q``.
- Setup check at register ``e``:
  ``slack = period + capture_latency(e) - setup - uncertainty - A_max(D pin)``
- Hold check at register ``e`` (same-edge):
  ``slack = A_min(D pin) - capture_latency(e) - hold - uncertainty``

Per-flop clock latencies come from CTS; intentional (useful) skew shifts a
flop's capture latency, relaxing setup at the cost of hold — exactly the
tradeoff the clock-tree recipe family plays with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cts.tree import ClockTree
from repro.netlist.netlist import Netlist
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph, build_timing_graph


@dataclass
class TimingReport:
    """STA results for one run.

    TNS values are reported as non-negative magnitudes (the paper's Table IV
    convention): ``tns_ps = sum(max(0, -slack))`` over endpoints.
    """

    wns_ps: float
    tns_ps: float
    hold_wns_ps: float
    hold_tns_ps: float
    violating_endpoints: int
    hold_violating_endpoints: int
    endpoint_count: int
    endpoint_slack_ps: Dict[str, float] = field(default_factory=dict)
    endpoint_hold_slack_ps: Dict[str, float] = field(default_factory=dict)
    critical_path: List[str] = field(default_factory=list)
    critical_launch_capture: List[Tuple[str, str]] = field(default_factory=list)
    weak_cell_pct: float = 0.0
    harmful_skew_paths: int = 0
    # Per-cell worst setup slack (arrival vs. required), for the optimizer.
    cell_slack_ps: Dict[str, float] = field(default_factory=dict)

    @property
    def setup_met(self) -> bool:
        return self.wns_ps >= 0.0

    @property
    def hold_met(self) -> bool:
        return self.hold_wns_ps >= 0.0

    def slack_histogram(self, bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        slacks = np.array(list(self.endpoint_slack_ps.values()))
        return np.histogram(slacks, bins=bins)


def run_sta(
    netlist: Netlist,
    constraints: TimingConstraints,
    clock_tree: Optional[ClockTree] = None,
    graph: Optional[TimingGraph] = None,
    trace_paths: int = 10,
    delay_scale: float = 1.0,
) -> TimingReport:
    """Run setup+hold STA; ``clock_tree=None`` assumes an ideal clock."""
    if graph is None:
        graph = build_timing_graph(netlist, delay_scale=delay_scale)

    latency = _latency_lookup(netlist, clock_tree)
    useful = clock_tree.useful_skew_ps if clock_tree is not None else {}

    a_max: Dict[str, float] = {}
    a_min: Dict[str, float] = {}
    pred_max: Dict[str, Optional[str]] = {}

    for reg in netlist.sequential_cells():
        clk2q = graph.cell_delay_ps[reg.name]
        launch = latency(reg.name)
        a_max[reg.name] = launch + clk2q
        a_min[reg.name] = launch + clk2q
        pred_max[reg.name] = None

    for name in graph.order:
        drivers = graph.fanin[name]
        own_delay = graph.cell_delay_ps[name]
        if not drivers:
            # Driven only by primary inputs (rare): arrive at input_delay.
            a_max[name] = constraints.input_delay_ps + own_delay
            a_min[name] = constraints.input_delay_ps + own_delay
            pred_max[name] = None
            continue
        best_arr = -np.inf
        best_driver = None
        min_arr = np.inf
        for driver, wire in drivers:
            arr = a_max[driver] + wire
            if arr > best_arr:
                best_arr = arr
                best_driver = driver
            min_arr = min(min_arr, a_min[driver] + wire)
        a_max[name] = best_arr + own_delay
        a_min[name] = min_arr + own_delay
        pred_max[name] = best_driver

    setup_slack: Dict[str, float] = {}
    hold_slack: Dict[str, float] = {}
    worst_driver_of: Dict[str, Optional[str]] = {}
    period = constraints.period_ps
    unc = constraints.clock_uncertainty_ps

    for endpoint, drivers in graph.endpoint_fanin.items():
        if not drivers:
            continue
        capture = latency(endpoint) + useful.get(endpoint, 0.0)
        arr_max, driver_max = max(
            ((a_max[d] + w, d) for d, w in drivers), key=lambda t: t[0]
        )
        arr_min = min(a_min[d] + w for d, w in drivers)
        setup_slack[endpoint] = (
            period + capture - constraints.setup_ps - unc - arr_max
        )
        hold_slack[endpoint] = arr_min - capture - constraints.hold_ps - unc
        worst_driver_of[endpoint] = driver_max

    # Primary outputs: required = period - output_delay (ideal capture).
    for net_name in netlist.primary_outputs:
        net = netlist.nets[net_name]
        if net.driver is None or net.driver not in a_max:
            continue
        key = f"PO:{net_name}"
        setup_slack[key] = period - constraints.output_delay_ps - a_max[net.driver]
        hold_slack[key] = a_min[net.driver] - constraints.hold_ps

    report = _summarize(setup_slack, hold_slack)
    _trace_critical(
        report, netlist, graph, pred_max, worst_driver_of, latency,
        useful, unc, trace_paths,
    )
    report.cell_slack_ps = _cell_slacks(
        netlist, graph, a_max, setup_slack, constraints, latency, useful
    )
    return report


def _cell_slacks(
    netlist: Netlist,
    graph: TimingGraph,
    a_max: Dict[str, float],
    setup_slack: Dict[str, float],
    constraints: TimingConstraints,
    latency,
    useful: Dict[str, float],
) -> Dict[str, float]:
    """Backward required-time propagation -> per-cell worst setup slack."""
    required: Dict[str, float] = {}
    period = constraints.period_ps
    unc = constraints.clock_uncertainty_ps
    for endpoint, drivers in graph.endpoint_fanin.items():
        capture = latency(endpoint) + useful.get(endpoint, 0.0)
        req_at_pin = period + capture - constraints.setup_ps - unc
        for driver, wire in drivers:
            bound = req_at_pin - wire
            if driver not in required or bound < required[driver]:
                required[driver] = bound
    for net_name in netlist.primary_outputs:
        net = netlist.nets[net_name]
        if net.driver is None:
            continue
        bound = period - constraints.output_delay_ps
        if net.driver not in required or bound < required[net.driver]:
            required[net.driver] = bound
    for name in reversed(graph.order):
        own_delay = graph.cell_delay_ps[name]
        req_here = required.get(name, np.inf)
        for driver, wire in graph.fanin[name]:
            bound = req_here - own_delay - wire
            if driver not in required or bound < required[driver]:
                required[driver] = bound
    slack: Dict[str, float] = {}
    for name, arrival in a_max.items():
        req = required.get(name)
        if req is not None and np.isfinite(req):
            slack[name] = req - arrival
    return slack


def _latency_lookup(netlist: Netlist, clock_tree: Optional[ClockTree]):
    if clock_tree is None:
        return lambda name: 0.0
    table = clock_tree.latency_ps
    return lambda name: table.get(name, 0.0)


def _summarize(
    setup_slack: Dict[str, float], hold_slack: Dict[str, float]
) -> TimingReport:
    s_values = np.array(list(setup_slack.values())) if setup_slack else np.zeros(1)
    h_values = np.array(list(hold_slack.values())) if hold_slack else np.zeros(1)
    return TimingReport(
        wns_ps=float(s_values.min()),
        tns_ps=float(np.maximum(0.0, -s_values).sum()),
        hold_wns_ps=float(h_values.min()),
        hold_tns_ps=float(np.maximum(0.0, -h_values).sum()),
        violating_endpoints=int((s_values < 0).sum()),
        hold_violating_endpoints=int((h_values < 0).sum()),
        endpoint_count=len(setup_slack),
        endpoint_slack_ps=setup_slack,
        endpoint_hold_slack_ps=hold_slack,
    )


def _trace_critical(
    report: TimingReport,
    netlist: Netlist,
    graph: TimingGraph,
    pred_max: Dict[str, Optional[str]],
    worst_driver_of: Dict[str, Optional[str]],
    latency,
    useful: Dict[str, float],
    uncertainty_ps: float,
    trace_paths: int,
) -> None:
    """Trace the worst ``trace_paths`` endpoints back to their launch flop.

    Populates the critical-path diagnostics the insight analyzers read:
    weak-cell percentage on critical paths and harmful-skew path count.
    """
    reg_endpoints = [
        (slack, name) for name, slack in report.endpoint_slack_ps.items()
        if not name.startswith("PO:")
    ]
    reg_endpoints.sort()
    path_cells: List[str] = []
    harmful = 0
    for slack, endpoint in reg_endpoints[:trace_paths]:
        cursor = worst_driver_of.get(endpoint)
        chain = [endpoint]
        while cursor is not None:
            chain.append(cursor)
            cursor = pred_max.get(cursor)
        launch = chain[-1]
        if netlist.cells.get(launch) is not None and netlist.cells[launch].is_sequential:
            report.critical_launch_capture.append((launch, endpoint))
            skew = (latency(endpoint) + useful.get(endpoint, 0.0)) - latency(launch)
            if skew < -uncertainty_ps:
                harmful += 1
        path_cells.extend(chain)
        if not report.critical_path:
            report.critical_path = list(reversed(chain))
    report.harmful_skew_paths = harmful
    if path_cells:
        weak = sum(
            1 for name in path_cells
            if name in netlist.cells and netlist.cells[name].cell_type.is_weak
        )
        report.weak_cell_pct = 100.0 * weak / len(path_cells)
