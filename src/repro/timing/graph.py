"""Timing-graph construction: per-cell loads, arc delays, topological order.

The graph is rebuilt cheaply after any sizing change; arc delay follows the
library's linear model (intrinsic + drive resistance x load) plus the net's
Elmore wire delay annotated by placement/routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netlist.netlist import Netlist


@dataclass
class TimingGraph:
    """Flattened timing graph over combinational cells.

    Attributes:
        order: Combinational cells in topological order.
        fanin: cell -> list of (driver_cell, wire_delay_ps); drivers may be
            sequential (launch points).  Arcs carry *wire* delay only; the
            driver's gate delay lives in its own arrival time and the sink's
            gate delay is added when computing the sink's arrival.
        output_load_ff: cell -> capacitive load on its output.
        cell_delay_ps: cell -> its own gate delay (intrinsic + R*C load).
        endpoint_fanin: register -> list of (driver_cell, wire_delay_ps)
            feeding its D pin.
    """

    order: List[str]
    fanin: Dict[str, List[Tuple[str, float]]]
    output_load_ff: Dict[str, float]
    cell_delay_ps: Dict[str, float]
    endpoint_fanin: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)


def output_load_ff(netlist: Netlist, cell_name: str) -> float:
    """Capacitive load on a cell's output: wire cap + sink pin caps."""
    net = netlist.net_of_output(cell_name)
    if net is None:
        return 0.0
    load = net.wire_cap_ff
    for sink, pin in net.sinks:
        if pin >= 0:
            load += netlist.cells[sink].cell_type.input_cap_ff
    return load


def build_timing_graph(netlist: Netlist, delay_scale: float = 1.0) -> TimingGraph:
    """Construct the timing graph from current sizes and parasitics.

    ``delay_scale`` uniformly scales gate delays — the Vt-mix lever (more
    low-Vt = faster and leakier, modeled as scale < 1 with a leakage bias
    applied by the power engine).
    """
    order = netlist.topological_order()
    loads: Dict[str, float] = {}
    delays: Dict[str, float] = {}
    for name, cell in netlist.cells.items():
        if cell.is_clock_cell:
            continue
        load = output_load_ff(netlist, name)
        loads[name] = load
        delays[name] = cell.cell_type.delay_ps(load) * delay_scale

    fanin: Dict[str, List[Tuple[str, float]]] = {name: [] for name in order}
    endpoint_fanin: Dict[str, List[Tuple[str, float]]] = {
        cell.name: [] for cell in netlist.sequential_cells()
    }
    for driver, net_name, sink in netlist.iter_timing_arcs():
        net = netlist.nets[net_name]
        driver_cell = netlist.cells[driver]
        if driver_cell.is_clock_cell:
            continue
        arc = net.wire_delay_ps
        sink_cell = netlist.cells[sink]
        if sink_cell.is_sequential:
            endpoint_fanin[sink].append((driver, arc))
        elif not sink_cell.is_clock_cell:
            fanin[sink].append((driver, arc))
    return TimingGraph(
        order=order,
        fanin=fanin,
        output_load_ff=loads,
        cell_delay_ps=delays,
        endpoint_fanin=endpoint_fanin,
    )
