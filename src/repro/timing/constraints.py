"""Timing constraints: clock period, I/O delays, flop setup/hold windows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FlowError
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class TimingConstraints:
    """Constraint set for one clock domain.

    Attributes:
        period_ps: Clock period.
        input_delay_ps: Arrival of primary inputs relative to clock edge.
        output_delay_ps: Required margin at primary outputs.
        setup_ps: Flop setup window (data stable before capture edge).
        hold_ps: Flop hold window (data stable after capture edge).
        clock_uncertainty_ps: Jitter/OCV guard band subtracted from the
            setup budget and added to the hold requirement.
    """

    period_ps: float
    input_delay_ps: float
    output_delay_ps: float
    setup_ps: float
    hold_ps: float
    clock_uncertainty_ps: float

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise FlowError(f"non-positive clock period {self.period_ps}")


def default_constraints(netlist: Netlist) -> TimingConstraints:
    """Derive constraints from the netlist's clock and technology node.

    Setup/hold windows scale with the node's gate delay (roughly 2 gate
    delays of setup, under one of hold), uncertainty is ~1.5% of the period —
    conventional signoff-ish proportions.
    """
    if netlist.clock is None:
        raise FlowError(f"{netlist.name}: no clock defined")
    node = netlist.library.node
    period = netlist.clock.period_ps
    return TimingConstraints(
        period_ps=period,
        input_delay_ps=0.15 * period,
        output_delay_ps=0.10 * period,
        setup_ps=2.0 * node.gate_delay_ps,
        hold_ps=0.7 * node.gate_delay_ps,
        clock_uncertainty_ps=0.015 * period,
    )
