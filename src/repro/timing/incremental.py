"""Incremental timing: re-propagate arrivals only where sizing changed.

Commercial optimizers never re-time the whole design after each sizing
move; they propagate from the changed cells' fanin (whose loads changed)
through the affected downstream cone until arrivals stabilize.  This class
does exactly that, with a test-enforced guarantee: after any sequence of
``update`` calls its slacks equal a from-scratch :func:`run_sta`.

Scope: setup *and* hold arrivals at register endpoints (the optimizer's
signals).  Path tracing / per-cell required times remain full-STA features.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.cts.tree import ClockTree
from repro.errors import FlowError
from repro.netlist.netlist import Netlist
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import build_timing_graph, output_load_ff


class IncrementalTimer:
    """Maintains arrivals/slacks across sizing changes.

    Structural changes (adding/removing cells or nets) require
    :meth:`rebuild`; pure ``cell_type`` swaps go through :meth:`update`.
    """

    def __init__(
        self,
        netlist: Netlist,
        constraints: TimingConstraints,
        clock_tree: Optional[ClockTree] = None,
        delay_scale: float = 1.0,
    ) -> None:
        self.netlist = netlist
        self.constraints = constraints
        self.clock_tree = clock_tree
        self.delay_scale = delay_scale
        self.rebuild()

    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Full rebuild: graph, orders, loads, arrivals, slacks."""
        self.graph = build_timing_graph(self.netlist, self.delay_scale)
        self._order_index = {
            name: index for index, name in enumerate(self.graph.order)
        }
        # Successor map over combinational cells + endpoint fanin.
        self._succ: Dict[str, List[str]] = {}
        for name, drivers in self.graph.fanin.items():
            for driver, _ in drivers:
                self._succ.setdefault(driver, []).append(name)
        self._endpoint_of: Dict[str, List[str]] = {}
        for endpoint, drivers in self.graph.endpoint_fanin.items():
            for driver, _ in drivers:
                self._endpoint_of.setdefault(driver, []).append(endpoint)
        self._latency = (
            self.clock_tree.latency_ps if self.clock_tree is not None else {}
        )
        self._useful = (
            self.clock_tree.useful_skew_ps if self.clock_tree is not None else {}
        )
        self.a_max: Dict[str, float] = {}
        self.a_min: Dict[str, float] = {}
        for reg in self.netlist.sequential_cells():
            base = self._latency.get(reg.name, 0.0) + \
                self.graph.cell_delay_ps[reg.name]
            self.a_max[reg.name] = base
            self.a_min[reg.name] = base
        for name in self.graph.order:
            self._recompute_arrival(name)
        self._affected_endpoints: Set[str] = set(self.graph.endpoint_fanin)
        self.setup_slack: Dict[str, float] = {}
        self.hold_slack: Dict[str, float] = {}
        self._refresh_endpoints(self._affected_endpoints)

    # ------------------------------------------------------------------
    def update(self, changed_cells: Iterable[str]) -> int:
        """Re-time after ``changed_cells`` swapped drive strength.

        Returns the number of cells whose arrival was recomputed.
        """
        changed = set(changed_cells)
        if not changed:
            return 0
        # A swapped cell changes (a) its own delay and (b) the load seen by
        # the drivers of its input nets -> their delays too.
        seeds: Set[str] = set()
        for name in changed:
            cell = self.netlist.cells.get(name)
            if cell is None:
                raise FlowError(f"unknown cell {name!r} in incremental update")
            seeds.add(name)
            for driver in self.netlist.fanin_cells(name):
                if driver in self.graph.cell_delay_ps:
                    seeds.add(driver)
        for name in seeds:
            load = output_load_ff(self.netlist, name)
            self.graph.output_load_ff[name] = load
            self.graph.cell_delay_ps[name] = (
                self.netlist.cells[name].cell_type.delay_ps(load)
                * self.delay_scale
            )

        # Worklist in topological order (registers propagate immediately).
        heap: List[Tuple[int, str]] = []
        queued: Set[str] = set()
        touched_endpoints: Set[str] = set()

        def enqueue(name: str) -> None:
            if name in queued:
                return
            if name in self._order_index:
                queued.add(name)
                heapq.heappush(heap, (self._order_index[name], name))

        for name in seeds:
            cell = self.netlist.cells[name]
            if cell.is_sequential:
                base = self._latency.get(name, 0.0) + \
                    self.graph.cell_delay_ps[name]
                if base != self.a_max.get(name):
                    self.a_max[name] = base
                    self.a_min[name] = base
                    for succ in self._succ.get(name, ()):
                        enqueue(succ)
                touched_endpoints.update(self._endpoint_of.get(name, ()))
                touched_endpoints.add(name)
            else:
                enqueue(name)
            touched_endpoints.update(self._endpoint_of.get(name, ()))

        recomputed = 0
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            old = (self.a_max.get(name), self.a_min.get(name))
            self._recompute_arrival(name)
            recomputed += 1
            touched_endpoints.update(self._endpoint_of.get(name, ()))
            if (self.a_max[name], self.a_min[name]) != old:
                for succ in self._succ.get(name, ()):
                    enqueue(succ)
        self._refresh_endpoints(touched_endpoints)
        return recomputed

    # ------------------------------------------------------------------
    @property
    def wns_ps(self) -> float:
        return min(self.setup_slack.values()) if self.setup_slack else 0.0

    @property
    def tns_ps(self) -> float:
        return float(sum(max(0.0, -s) for s in self.setup_slack.values()))

    @property
    def hold_wns_ps(self) -> float:
        return min(self.hold_slack.values()) if self.hold_slack else 0.0

    # ------------------------------------------------------------------
    def _recompute_arrival(self, name: str) -> None:
        drivers = self.graph.fanin[name]
        own = self.graph.cell_delay_ps[name]
        if not drivers:
            base = self.constraints.input_delay_ps
            self.a_max[name] = base + own
            self.a_min[name] = base + own
            return
        best = -np.inf
        low = np.inf
        for driver, wire in drivers:
            best = max(best, self.a_max[driver] + wire)
            low = min(low, self.a_min[driver] + wire)
        self.a_max[name] = best + own
        self.a_min[name] = low + own

    def _refresh_endpoints(self, endpoints: Iterable[str]) -> None:
        period = self.constraints.period_ps
        unc = self.constraints.clock_uncertainty_ps
        for endpoint in endpoints:
            drivers = self.graph.endpoint_fanin.get(endpoint)
            if not drivers:
                continue
            capture = self._latency.get(endpoint, 0.0) + \
                self._useful.get(endpoint, 0.0)
            arr_max = max(self.a_max[d] + w for d, w in drivers)
            arr_min = min(self.a_min[d] + w for d, w in drivers)
            self.setup_slack[endpoint] = (
                period + capture - self.constraints.setup_ps - unc - arr_max
            )
            self.hold_slack[endpoint] = (
                arr_min - capture - self.constraints.hold_ps - unc
            )
