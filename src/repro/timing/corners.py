"""Multi-corner timing analysis (SS / TT / FF signoff).

Real signoff checks setup at the slow corner and hold at the fast corner.
Corners are modeled as global (delay, leakage) scale pairs relative to the
typical library characterization — the standard first-order PVT treatment:
slow silicon + low voltage + high temperature stretches delays and tempers
leakage; fast silicon does the opposite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cts.tree import ClockTree
from repro.errors import FlowError
from repro.netlist.netlist import Netlist
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import TimingReport, run_sta


@dataclass(frozen=True)
class Corner:
    """One PVT corner: global derating factors vs. typical.

    Attributes:
        name: Corner label (``"ss"``, ``"tt"``, ``"ff"``).
        delay_scale: Gate-delay multiplier (> 1 = slower silicon).
        leakage_scale: Leakage multiplier (fast silicon leaks more).
        uncertainty_scale: Extra OCV guard band applied to the clock
            uncertainty at this corner.
    """

    name: str
    delay_scale: float
    leakage_scale: float
    uncertainty_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.delay_scale <= 0 or self.leakage_scale <= 0:
            raise FlowError(f"corner {self.name}: scales must be positive")


DEFAULT_CORNERS: Tuple[Corner, ...] = (
    Corner(name="ss", delay_scale=1.14, leakage_scale=0.55,
           uncertainty_scale=1.25),
    Corner(name="tt", delay_scale=1.00, leakage_scale=1.00),
    Corner(name="ff", delay_scale=0.87, leakage_scale=2.10,
           uncertainty_scale=1.25),
)


@dataclass
class MultiCornerReport:
    """Per-corner reports plus the signoff summary."""

    reports: Dict[str, TimingReport]

    @property
    def setup_corner(self) -> str:
        """Corner with the worst setup WNS."""
        return min(self.reports, key=lambda c: self.reports[c].wns_ps)

    @property
    def hold_corner(self) -> str:
        """Corner with the worst hold WNS."""
        return min(self.reports, key=lambda c: self.reports[c].hold_wns_ps)

    @property
    def signoff_wns_ps(self) -> float:
        return self.reports[self.setup_corner].wns_ps

    @property
    def signoff_hold_wns_ps(self) -> float:
        return self.reports[self.hold_corner].hold_wns_ps

    @property
    def signoff_tns_ps(self) -> float:
        return max(r.tns_ps for r in self.reports.values())

    def meets_all_corners(self) -> bool:
        return self.signoff_wns_ps >= 0.0 and self.signoff_hold_wns_ps >= 0.0


def run_multi_corner_sta(
    netlist: Netlist,
    constraints: TimingConstraints,
    clock_tree: Optional[ClockTree] = None,
    corners: Tuple[Corner, ...] = DEFAULT_CORNERS,
    base_delay_scale: float = 1.0,
) -> MultiCornerReport:
    """Run STA at every corner; clock-tree latencies scale with delay.

    ``base_delay_scale`` composes with each corner (e.g. a Vt-swap bias
    already applied to the typical corner).
    """
    if not corners:
        raise FlowError("need at least one corner")
    import dataclasses

    reports: Dict[str, TimingReport] = {}
    for corner in corners:
        corner_constraints = dataclasses.replace(
            constraints,
            clock_uncertainty_ps=(
                constraints.clock_uncertainty_ps * corner.uncertainty_scale
            ),
        )
        tree = clock_tree
        if clock_tree is not None and corner.delay_scale != 1.0:
            # Clock distribution slows down with the data path: scale the
            # insertion latencies (and useful skew) by the corner factor.
            tree = ClockTree(
                sink_names=list(clock_tree.sink_names),
                latency_ps={
                    name: value * corner.delay_scale
                    for name, value in clock_tree.latency_ps.items()
                },
                buffer_count=clock_tree.buffer_count,
                tree_depth=clock_tree.tree_depth,
                wirelength_um=clock_tree.wirelength_um,
                total_buffer_cap_ff=clock_tree.total_buffer_cap_ff,
                total_wire_cap_ff=clock_tree.total_wire_cap_ff,
                useful_skew_ps={
                    name: value * corner.delay_scale
                    for name, value in clock_tree.useful_skew_ps.items()
                },
            )
        reports[corner.name] = run_sta(
            netlist,
            corner_constraints,
            tree,
            delay_scale=base_delay_scale * corner.delay_scale,
        )
    return MultiCornerReport(reports=reports)
