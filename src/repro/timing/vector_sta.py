"""Array-vectorized multi-lane STA over a :class:`CompiledDesign`.

``run_sta_batch`` evaluates N lanes (jobs sharing one compiled topology) in
stacked ``(B, V)`` arrays and materializes per-lane :class:`TimingReport`
objects that are **bitwise identical** to :func:`repro.timing.sta.run_sta`
on the same netlist state.  The equivalence rests on three observations:

- Every scalar float expression is mirrored with the same operation order
  (``(intrinsic + R*C) * scale``, ``(((period + capture) - setup) - unc) -
  arr``), so elementwise array ops reproduce the exact bits.
- ``max``/``min`` reductions over the same float values are exact and
  associative, so ``np.maximum.reduceat`` over dst-grouped arc segments
  matches the scalar first-to-last scan *in value*; the scan's tie-break
  (first strict max) only matters for the traced critical paths, which are
  replayed lazily per endpoint in original arc order.
- The backward required-time pass is a pure min-accumulation, order-free,
  so per-level ``np.minimum.at`` sweeps in descending level order reproduce
  the scalar reversed-topological pass (a sink's level strictly exceeds its
  driver's, so each level's required times are final before they propagate).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cts.tree import ClockTree
from repro.netlist.compiled import CompiledDesign, LaneState
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import (
    TimingReport,
    _latency_lookup,
    _summarize,
    _trace_critical,
)


class _LazyPredMax:
    """Replays the scalar forward pass's first-strict-max driver choice.

    Only the <= ``trace_paths`` traced chains ever query this, so the scan
    runs over a handful of cells instead of the whole graph.
    """

    def __init__(self, design: CompiledDesign, a_max: np.ndarray, wire: np.ndarray):
        self._design = design
        self._a = a_max
        self._w = wire
        self._cache: Dict[str, Optional[str]] = {}

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        if name in self._cache:
            return self._cache[name]
        d = self._design
        i = d.index.get(name)
        result: Optional[str] = None
        if i is not None and i >= d.S:
            start = int(d.fanin_start[i])
            end = int(d.fanin_end[i])
            best = -np.inf
            for k in range(start, end):
                arr = self._a[d.fanin_src[k]] + self._w[d.fanin_net[k]]
                if arr > best:
                    best = arr
                    result = d.cell_names[d.fanin_src[k]]
        self._cache[name] = result
        return result


class _LazyWorstDriver:
    """Replays the scalar endpoint ``max(..., key=t[0])`` driver choice."""

    def __init__(
        self,
        design: CompiledDesign,
        seq_pos: Dict[str, int],
        a_max: np.ndarray,
        wire: np.ndarray,
    ):
        self._design = design
        self._seq_pos = seq_pos
        self._a = a_max
        self._w = wire

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        d = self._design
        j = self._seq_pos.get(name)
        if j is None:
            return default
        best = -np.inf
        result = default
        for k in range(int(d.ep_off[j]), int(d.ep_off[j + 1])):
            arr = self._a[d.ep_src[k]] + self._w[d.ep_net[k]]
            if arr > best:
                best = arr
                result = d.cell_names[d.ep_src[k]]
        return result


def _level_arc_dst(level: dict) -> np.ndarray:
    arc_dst = level.get("arc_dst")
    if arc_dst is None:
        counts = np.diff(np.r_[level["seg"], level["src"].shape[0]])
        arc_dst = np.repeat(level["dst"], counts)
        level["arc_dst"] = arc_dst
    return arc_dst


def run_sta_batch(
    design: CompiledDesign,
    lanes: Sequence[LaneState],
    constraints: TimingConstraints,
    clock_trees: Sequence[Optional[ClockTree]],
    delay_scales: Sequence[float],
    trace_paths: int = 10,
) -> List[TimingReport]:
    """Setup+hold STA for all lanes at once; one report per lane."""
    B = len(lanes)
    V = design.V
    S = design.S
    period = constraints.period_ps
    unc = constraints.clock_uncertainty_ps

    own = np.stack(
        [lane.gate_delays(delay_scales[b]) for b, lane in enumerate(lanes)]
    ) if B else np.zeros((0, V))
    wire = np.stack([lane.wire_delay for lane in lanes]) if B else np.zeros((0, 1))

    lat = np.zeros((B, S))
    useful_arr = np.zeros((B, S))
    for b, tree in enumerate(clock_trees):
        if tree is None:
            continue
        table = tree.latency_ps
        skews = tree.useful_skew_ps
        for j, name in enumerate(design.seq_names):
            lat[b, j] = table.get(name, 0.0)
            us = skews.get(name)
            if us is not None:
                useful_arr[b, j] = us

    # -- forward arrival propagation ------------------------------------
    a_max = np.zeros((B, V))
    a_min = np.zeros((B, V))
    if S:
        a_max[:, :S] = lat + own[:, :S]
        a_min[:, :S] = a_max[:, :S]
    if design.nodrv_idx.size:
        nd = design.nodrv_idx
        a_max[:, nd] = constraints.input_delay_ps + own[:, nd]
        a_min[:, nd] = a_max[:, nd]
    for level in design.levels:
        src = level["src"]
        net = level["net"]
        dst = level["dst"]
        seg = level["seg"]
        arr = a_max[:, src] + wire[:, net]
        amn = a_min[:, src] + wire[:, net]
        a_max[:, dst] = np.maximum.reduceat(arr, seg, axis=1) + own[:, dst]
        a_min[:, dst] = np.minimum.reduceat(amn, seg, axis=1) + own[:, dst]

    # -- endpoint and primary-output slacks -----------------------------
    act = design.ep_active_idx
    if design.ep_src.size:
        arr_ep = a_max[:, design.ep_src] + wire[:, design.ep_net]
        amn_ep = a_min[:, design.ep_src] + wire[:, design.ep_net]
        arr_max = np.maximum.reduceat(arr_ep, design.ep_seg, axis=1)
        arr_min = np.minimum.reduceat(amn_ep, design.ep_seg, axis=1)
        capture = lat[:, act] + useful_arr[:, act]
        setup_ep = (((period + capture) - constraints.setup_ps) - unc) - arr_max
        hold_ep = ((arr_min - capture) - constraints.hold_ps) - unc
    else:
        setup_ep = np.zeros((B, 0))
        hold_ep = np.zeros((B, 0))

    if design.po_driver.size:
        setup_po = (period - constraints.output_delay_ps) - a_max[:, design.po_driver]
        hold_po = a_min[:, design.po_driver] - constraints.hold_ps
    else:
        setup_po = np.zeros((B, 0))
        hold_po = np.zeros((B, 0))

    # -- backward required times -> per-cell worst setup slack ----------
    required = np.full((B, V), np.inf)
    if design.ep_src.size:
        cap_all = lat + useful_arr
        req_at_pin = ((period + cap_all) - constraints.setup_ps) - unc
        bounds = req_at_pin[:, design.ep_owner] - wire[:, design.ep_net]
        for b in range(B):
            np.minimum.at(required[b], design.ep_src, bounds[b])
    if design.po_req_driver.size:
        po_bound = period - constraints.output_delay_ps
        for b in range(B):
            np.minimum.at(required[b], design.po_req_driver, po_bound)
    for level in reversed(design.levels):
        arc_dst = _level_arc_dst(level)
        src = level["src"]
        net = level["net"]
        bounds = (required[:, arc_dst] - own[:, arc_dst]) - wire[:, net]
        for b in range(B):
            np.minimum.at(required[b], src, bounds[b])
    finite = np.isfinite(required)
    cell_slack = required - a_max

    # -- materialize per-lane reports -----------------------------------
    act_names = [design.seq_names[j] for j in act.tolist()]
    seq_pos = {name: j for j, name in enumerate(design.seq_names)}
    reports: List[TimingReport] = []
    for b in range(B):
        setup_slack: Dict[str, float] = {}
        hold_slack: Dict[str, float] = {}
        s_ep = setup_ep[b].tolist()
        h_ep = hold_ep[b].tolist()
        for k, name in enumerate(act_names):
            setup_slack[name] = s_ep[k]
            hold_slack[name] = h_ep[k]
        s_po = setup_po[b].tolist()
        h_po = hold_po[b].tolist()
        for k, key in enumerate(design.po_keys):
            setup_slack[key] = s_po[k]
            hold_slack[key] = h_po[k]
        report = _summarize(setup_slack, hold_slack)

        tree = clock_trees[b]
        latency_fn = _latency_lookup(lanes[b].netlist, tree)
        useful = tree.useful_skew_ps if tree is not None else {}
        pred = _LazyPredMax(design, a_max[b], wire[b])
        worst = _LazyWorstDriver(design, seq_pos, a_max[b], wire[b])
        _trace_critical(
            report, lanes[b].netlist, None, pred, worst, latency_fn,
            useful, unc, trace_paths,
        )

        slack_row = cell_slack[b].tolist()
        cs: Dict[str, float] = {}
        for i in np.flatnonzero(finite[b]).tolist():
            cs[design.cell_names[i]] = slack_row[i]
        report.cell_slack_ps = cs
        reports.append(report)
    return reports
