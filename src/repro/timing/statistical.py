"""Statistical timing: Monte-Carlo on-chip-variation analysis.

Corner analysis brackets global PVT shifts; *local* (within-die) variation
needs statistics: each gate's delay draws from a lognormal around its
nominal value, and the worst path changes sample to sample.  This module
runs vectorized Monte-Carlo STA — all samples propagate simultaneously as
arrival *vectors* — and reports WNS/TNS quantiles, the standard way to set
OCV derates empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cts.tree import ClockTree
from repro.errors import FlowError
from repro.netlist.netlist import Netlist
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import build_timing_graph
from repro.utils.rng import derive_rng


@dataclass
class StatisticalTimingReport:
    """Monte-Carlo STA outcome.

    Attributes:
        samples: Number of Monte-Carlo samples.
        wns_samples_ps: (samples,) worst negative slack per sample.
        tns_samples_ps: (samples,) total negative slack per sample.
        sigma: The per-gate lognormal sigma used.
    """

    samples: int
    wns_samples_ps: np.ndarray
    tns_samples_ps: np.ndarray
    sigma: float

    @property
    def mean_wns_ps(self) -> float:
        return float(self.wns_samples_ps.mean())

    def wns_quantile_ps(self, q: float) -> float:
        """q-quantile of WNS (q=0.001 ~ 3-sigma pessimism)."""
        return float(np.quantile(self.wns_samples_ps, q))

    @property
    def yield_fraction(self) -> float:
        """Fraction of samples meeting setup timing."""
        return float((self.wns_samples_ps >= 0.0).mean())

    def implied_derate(self, nominal_wns_ps: float, period_ps: float,
                       q: float = 0.01) -> float:
        """OCV guard band (fraction of the period) covering quantile ``q``."""
        gap = nominal_wns_ps - self.wns_quantile_ps(q)
        return max(0.0, gap / period_ps)


def run_statistical_sta(
    netlist: Netlist,
    constraints: TimingConstraints,
    clock_tree: Optional[ClockTree] = None,
    samples: int = 200,
    sigma: float = 0.05,
    seed: int = 0,
) -> StatisticalTimingReport:
    """Vectorized Monte-Carlo setup STA with per-gate lognormal variation.

    Args:
        samples: Monte-Carlo sample count (vectorized; 200 is cheap).
        sigma: Lognormal sigma of per-gate delay variation (~5% typical).
    """
    if samples < 1:
        raise FlowError(f"samples must be >= 1, got {samples}")
    if sigma < 0:
        raise FlowError(f"sigma must be non-negative, got {sigma}")
    rng = derive_rng(seed, "mc-sta", netlist.name)
    graph = build_timing_graph(netlist)
    latency = clock_tree.latency_ps if clock_tree is not None else {}
    useful = clock_tree.useful_skew_ps if clock_tree is not None else {}

    # Per-cell delay samples: nominal * lognormal(0, sigma), mean-corrected
    # so the *expected* delay matches nominal.
    correction = np.exp(-0.5 * sigma * sigma)
    delay_samples: Dict[str, np.ndarray] = {}
    for name, nominal in graph.cell_delay_ps.items():
        draws = rng.lognormal(mean=0.0, sigma=sigma, size=samples) if sigma > 0 \
            else np.ones(samples)
        delay_samples[name] = nominal * draws * correction

    a_max: Dict[str, np.ndarray] = {}
    for reg in netlist.sequential_cells():
        a_max[reg.name] = latency.get(reg.name, 0.0) + delay_samples[reg.name]
    for name in graph.order:
        drivers = graph.fanin[name]
        own = delay_samples[name]
        if not drivers:
            a_max[name] = constraints.input_delay_ps + own
            continue
        stacked = np.stack([a_max[d] + w for d, w in drivers])
        a_max[name] = stacked.max(axis=0) + own

    period = constraints.period_ps
    unc = constraints.clock_uncertainty_ps
    slack_rows = []
    for endpoint, drivers in graph.endpoint_fanin.items():
        if not drivers:
            continue
        capture = latency.get(endpoint, 0.0) + useful.get(endpoint, 0.0)
        arr = np.stack([a_max[d] + w for d, w in drivers]).max(axis=0)
        slack_rows.append(period + capture - constraints.setup_ps - unc - arr)
    if not slack_rows:
        raise FlowError(f"{netlist.name}: no register endpoints to analyze")
    slack_matrix = np.stack(slack_rows)  # (endpoints, samples)
    wns = slack_matrix.min(axis=0)
    tns = np.maximum(0.0, -slack_matrix).sum(axis=0)
    return StatisticalTimingReport(
        samples=samples,
        wns_samples_ps=wns,
        tns_samples_ps=tns,
        sigma=sigma,
    )
