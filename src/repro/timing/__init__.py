"""Static timing analysis: graph construction, setup/hold checks, WNS/TNS.

A classic block-based STA over the combinational DAG: max (setup) and min
(hold) arrival times propagate in topological order, endpoint slacks are
checked against the clock constraint with per-flop clock latencies from CTS,
and critical paths are traced back for diagnostics (weak-cell percentage,
harmful-skew detection — both Table I insights).
"""

from repro.timing.constraints import TimingConstraints, default_constraints
from repro.timing.corners import (
    Corner,
    DEFAULT_CORNERS,
    MultiCornerReport,
    run_multi_corner_sta,
)
from repro.timing.graph import TimingGraph, build_timing_graph
from repro.timing.sta import TimingReport, run_sta

__all__ = [
    "TimingConstraints",
    "default_constraints",
    "Corner",
    "DEFAULT_CORNERS",
    "MultiCornerReport",
    "run_multi_corner_sta",
    "TimingGraph",
    "build_timing_graph",
    "TimingReport",
    "run_sta",
]
